//! Runtime lock-rank enforcement for debug builds.
//!
//! The storage engine's deadlock freedom rests on a total acquisition
//! order over its internal locks (see `DESIGN.md`, "Lock discipline"):
//! a thread may only acquire a lock whose rank is *strictly greater*
//! than every rank it already holds. This module tracks the ranks each
//! thread currently holds and panics — in debug builds only — the
//! moment an acquisition would invert that order, turning a latent
//! deadlock into a deterministic, immediately-diagnosable failure in
//! tests and debug benchmark runs.
//!
//! In release builds every type here is a zero-sized no-op and the
//! whole mechanism compiles away; the static companion check
//! (`cargo xtask analyze`) enforces the same table at CI time.
//!
//! The rank table (shared with `xtask/src/ranks.rs` — keep in sync):
//!
//! | rank | lock                                   |
//! |------|----------------------------------------|
//! | 10   | `Engine::active` (txn table / quiesce) |
//! | 12   | `Engine::vis` (commit-visibility flip) |
//! | 14   | `Engine::snapshots` (snapshot registry)|
//! | 20   | `LockManager` shard `states`           |
//! | 25   | `LockManager::held`                    |
//! | 28   | `Heap::global` (quiesce / seg roster)  |
//! | 29   | `Heap` epoch state (readers/condemned) |
//! | 30   | `Heap` object-table shard              |
//! | 32   | `Heap` segment placement state         |
//! | 40   | `BufferPool::inner`                    |
//! | 45   | `PageFile::file`                       |
//! | 50   | `Wal::writer`                          |
//! | 55   | `Wal::queue` (log-writer request queue)|
//! | 60   | `SimVfs` state (simulated disk)        |
//! | 70   | server tenant registry                 |
//! | 72   | server connection table                |
//! | 74   | server drain latch                     |
//! | 76   | replication ack table (primary)        |
//! | 78   | replication follower state             |
//!
//! The three `SRV_*` ranks belong to the network front end
//! (`labflow-server`): its locks are short leaf sections that must never
//! be held across a database call, so they rank *above* every storage
//! lock — any accidental hold across an engine call then shows up as a
//! rank inversion instead of a latent deadlock. The two `REPL_*` ranks
//! extend the same rule to `labflow-repl`: ack bookkeeping and follower
//! buffers are leaf latches, never held across a storage or socket call.

use std::ops::{Deref, DerefMut};

/// A named rank in the storage lock order. Lower ranks must be acquired
/// first; acquiring a rank while holding an equal or greater one is a
/// discipline violation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockRank {
    /// Position in the total order (strictly increasing inward).
    pub rank: u16,
    /// Human-readable lock name for diagnostics.
    pub name: &'static str,
}

/// `Engine::active`: the active-transaction table and quiesce flag.
pub const ENGINE_ACTIVE: LockRank = LockRank { rank: 10, name: "engine.active" };
/// `Engine::vis`: serialises the commit-time version flip with the
/// visibility-watermark publish, so a snapshot never observes half of a
/// transaction's versions.
pub const ENGINE_COMMIT_VIS: LockRank = LockRank { rank: 12, name: "engine.visibility" };
/// `Engine::snapshots`: the registry of open snapshot read timestamps
/// that feeds the version-GC low-water mark.
pub const ENGINE_SNAPSHOTS: LockRank = LockRank { rank: 14, name: "engine.snapshots" };
/// One `LockManager` shard's lock-state map.
pub const LOCK_SHARD: LockRank = LockRank { rank: 20, name: "lock_manager.shard" };
/// The `LockManager` per-transaction held-locks map.
pub const LOCK_HELD: LockRank = LockRank { rank: 25, name: "lock_manager.held" };
/// The heap's global shard: shared-held by every heap operation for its
/// duration, exclusive-held only by the checkpoint quiesce
/// (`dump_meta`/`load_meta`) and segment-roster changes.
pub const HEAP_GLOBAL: LockRank = LockRank { rank: 28, name: "heap.global" };
/// The heap's epoch state: the reader-slot registry plus the condemned
/// version list awaiting an epoch-synchronised free. Readers never take
/// this on the hot path (slots are thread-cached); registration and GC do.
pub const HEAP_EPOCH: LockRank = LockRank { rank: 29, name: "heap.epoch" };
/// One of the heap's object-table shards (oid-hashed).
pub const HEAP_TABLE: LockRank = LockRank { rank: 30, name: "heap.object_table" };
/// One segment's placement state (open page, page list, free list,
/// chunk map).
pub const HEAP_SEGMENT: LockRank = LockRank { rank: 32, name: "heap.segment" };
/// The buffer pool's frame table.
pub const BUFFER_POOL: LockRank = LockRank { rank: 40, name: "buffer_pool.frames" };
/// The page file handle.
pub const PAGE_FILE: LockRank = LockRank { rank: 45, name: "page_file.file" };
/// The WAL append buffer / writer.
pub const WAL_WRITER: LockRank = LockRank { rank: 50, name: "wal.writer" };
/// The log-writer's request queue: group-commit tickets, durability
/// watermarks, and failure slots. Ranked *above* the writer mutex so
/// a committer parked on the queue can never be holding the append
/// buffer; the log-writer thread takes the two strictly in turn
/// (claim under the queue, then force under the writer), never nested.
pub const WAL_QUEUE: LockRank = LockRank { rank: 55, name: "wal.queue" };
/// The simulated-VFS state: the innermost lock of all — every simulated
/// disk operation ends here, under whichever file lock drives it.
pub const SIM_VFS: LockRank = LockRank { rank: 60, name: "sim_vfs.state" };
/// The network front end's tenant registry (quota accounting). Server
/// locks are leaf latches: they rank above every storage lock so that
/// holding one across any database call is itself a rank inversion.
pub const SRV_TENANTS: LockRank = LockRank { rank: 70, name: "server.tenants" };
/// The network front end's connection table (drain signalling, stats).
pub const SRV_CONNS: LockRank = LockRank { rank: 72, name: "server.connections" };
/// The network front end's drain latch: shutdown waits on it until the
/// last connection handler has deregistered.
pub const SRV_DRAIN: LockRank = LockRank { rank: 74, name: "server.drain" };
/// The replication primary's per-follower ack table (acked LSNs plus
/// the quorum condvar's state). A leaf latch: commit-side quorum waits
/// release it (condvar) before blocking, and the ship loop never holds
/// it across a storage or socket call.
pub const REPL_ACKS: LockRank = LockRank { rank: 76, name: "repl.acks" };
/// A replication follower's stream state (pending per-transaction
/// record buffers, applied/durable LSN bookkeeping, fence epoch).
/// A leaf latch, never held across the engine apply itself.
pub const REPL_FOLLOWER: LockRank = LockRank { rank: 78, name: "repl.follower" };

#[cfg(debug_assertions)]
mod imp {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
    }

    /// Debug-build token proving a rank was acquired in order. Dropping
    /// it releases the rank.
    #[must_use = "the rank is released as soon as the token is dropped"]
    pub struct RankToken {
        rank: LockRank,
    }

    /// Record the acquisition of `rank`, panicking on rank inversion.
    #[track_caller]
    pub fn acquire(rank: LockRank) -> RankToken {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(top) = held.iter().max_by_key(|r| r.rank) {
                if top.rank >= rank.rank {
                    // analyzer: allow(panic, "rank inversion is a programming error; fail fast in debug builds")
                    panic!(
                        "lock-rank inversion: acquiring {} (rank {}) while holding {} (rank {})",
                        rank.name, rank.rank, top.name, top.rank
                    );
                }
            }
            held.push(rank);
        });
        RankToken { rank }
    }

    impl Drop for RankToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Tokens usually die LIFO, but explicit `drop(guard)`
                // calls can release out of order; remove the newest
                // entry with this rank.
                if let Some(at) = held.iter().rposition(|r| r.rank == self.rank.rank) {
                    held.remove(at);
                }
            });
        }
    }

    /// Highest rank currently held by this thread (diagnostics/tests).
    pub fn current_max_rank() -> Option<u16> {
        HELD.with(|held| held.borrow().iter().map(|r| r.rank).max())
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::LockRank;

    /// Release-build token: zero-sized, no tracking, fully inlined away.
    pub struct RankToken;

    /// Release-build acquisition: a no-op.
    #[inline(always)]
    pub fn acquire(_rank: LockRank) -> RankToken {
        RankToken
    }

    /// Release builds track nothing.
    #[inline(always)]
    pub fn current_max_rank() -> Option<u16> {
        None
    }
}

pub use imp::{acquire, current_max_rank, RankToken};

/// A lock guard paired with its rank token. The token is checked (and
/// the rank recorded) *before* the guard is acquired, so a would-be
/// inversion panics instead of deadlocking; the guard drops before the
/// token (field order), so the rank is held exactly as long as the lock.
pub struct Ranked<G> {
    guard: G,
    _token: RankToken,
}

/// Acquire `rank`, then the guard produced by `acquire_guard`, pairing
/// their lifetimes.
#[track_caller]
pub fn ranked<G>(rank: LockRank, acquire_guard: impl FnOnce() -> G) -> Ranked<G> {
    let token = acquire(rank);
    Ranked { guard: acquire_guard(), _token: token }
}

impl<G: Deref> Deref for Ranked<G> {
    type Target = G::Target;
    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Ranked<G> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_clean() {
        let _a = acquire(LOCK_SHARD);
        let _b = acquire(HEAP_TABLE);
        let _c = acquire(WAL_WRITER);
        #[cfg(debug_assertions)]
        assert_eq!(current_max_rank(), Some(WAL_WRITER.rank));
    }

    #[test]
    fn tokens_release_on_drop() {
        {
            let _a = acquire(BUFFER_POOL);
        }
        // BUFFER_POOL released: a lower rank is acquirable again.
        let _b = acquire(HEAP_TABLE);
    }

    #[test]
    fn out_of_order_release_is_tolerated() {
        let a = acquire(LOCK_SHARD);
        let b = acquire(HEAP_TABLE);
        drop(a); // explicit early release of the outer rank
        drop(b);
        let _fresh = acquire(LOCK_SHARD);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn inversion_panics_in_debug() {
        let _wal = acquire(WAL_WRITER);
        let _heap = acquire(HEAP_TABLE); // inner rank while holding outer
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn same_rank_reacquisition_panics_in_debug() {
        let _a = acquire(BUFFER_POOL);
        let _b = acquire(BUFFER_POOL); // self-deadlock on a non-reentrant lock
    }
}
