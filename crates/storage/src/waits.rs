//! Per-thread wait attribution: where did a session's latency go?
//!
//! A handful of thread-local nanosecond counters, cheap enough to keep
//! on in release builds: time spent blocked in the lock manager, time
//! spent parked in `Wal::group_commit` waiting for the log-writer to
//! cover a ticket, time spent *performing* a physical log force on this
//! thread (the log-writer itself, or a buffer-pool steal guard forcing
//! on a client thread), and time spent blocked on heap metadata locks
//! (object-table shards, segment placement state). Worker threads —
//! which the multi-client driver maps 1:1 to clients — snapshot the
//! counters around a span of work and report the delta, so throughput
//! tables can say not just *how fast* but *what each client was
//! waiting on*.

use std::cell::Cell;

thread_local! {
    static LOCK_WAIT_NANOS: Cell<u64> = const { Cell::new(0) };
    static COMMIT_WAIT_NANOS: Cell<u64> = const { Cell::new(0) };
    static COMMIT_FORCE_NANOS: Cell<u64> = const { Cell::new(0) };
    static HEAP_WAIT_NANOS: Cell<u64> = const { Cell::new(0) };
    static LOCK_CONDVAR_WAITS: Cell<u64> = const { Cell::new(0) };
    static NAME_INDEX_WAIT_NANOS: Cell<u64> = const { Cell::new(0) };
}

/// A point-in-time copy of this thread's wait counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitSnapshot {
    /// Nanoseconds spent blocked waiting for object locks (including
    /// waits that ended in a lock timeout).
    pub lock_wait_nanos: u64,
    /// Nanoseconds spent parked in WAL group commit, waiting for the
    /// log-writer thread to cover this thread's ticket. Pure queue
    /// wait: the physical force runs elsewhere and is charged to
    /// `commit_force_nanos` on whichever thread performs it.
    pub commit_wait_nanos: u64,
    /// Nanoseconds this thread spent *inside* a physical log force
    /// (write-out or sync). Zero for ordinary clients — the log-writer
    /// does their forcing — and nonzero when a buffer-pool steal guard
    /// forces the log on a client thread mid-transaction.
    pub commit_force_nanos: u64,
    /// Nanoseconds spent blocked on contended heap metadata locks
    /// (object-table shards and segment placement state). Uncontended
    /// acquisitions cost nothing here.
    pub heap_wait_nanos: u64,
    /// Number of times a lock-manager acquisition actually parked on the
    /// shard condvar (a count, not a duration: paired with
    /// `lock_wait_nanos` it separates many short sleeps from few long
    /// ones — the shape of a convoy vs. a single hot object).
    pub lock_condvar_waits: u64,
    /// Nanoseconds spent waiting on (or rebuilding) the labbase
    /// material name index during `find_material`. Storage knows nothing
    /// about that index; labbase reports into this slot via
    /// [`add_name_index_wait`].
    pub name_index_wait_nanos: u64,
}

impl WaitSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &WaitSnapshot) -> WaitSnapshot {
        WaitSnapshot {
            lock_wait_nanos: self.lock_wait_nanos.saturating_sub(earlier.lock_wait_nanos),
            commit_wait_nanos: self.commit_wait_nanos.saturating_sub(earlier.commit_wait_nanos),
            commit_force_nanos: self.commit_force_nanos.saturating_sub(earlier.commit_force_nanos),
            heap_wait_nanos: self.heap_wait_nanos.saturating_sub(earlier.heap_wait_nanos),
            lock_condvar_waits: self.lock_condvar_waits.saturating_sub(earlier.lock_condvar_waits),
            name_index_wait_nanos: self
                .name_index_wait_nanos
                .saturating_sub(earlier.name_index_wait_nanos),
        }
    }
}

/// Snapshot the calling thread's accumulated wait counters.
pub fn snapshot() -> WaitSnapshot {
    WaitSnapshot {
        lock_wait_nanos: LOCK_WAIT_NANOS.with(|c| c.get()),
        commit_wait_nanos: COMMIT_WAIT_NANOS.with(|c| c.get()),
        commit_force_nanos: COMMIT_FORCE_NANOS.with(|c| c.get()),
        heap_wait_nanos: HEAP_WAIT_NANOS.with(|c| c.get()),
        lock_condvar_waits: LOCK_CONDVAR_WAITS.with(|c| c.get()),
        name_index_wait_nanos: NAME_INDEX_WAIT_NANOS.with(|c| c.get()),
    }
}

pub(crate) fn add_lock_wait(nanos: u64) {
    LOCK_WAIT_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
}

pub(crate) fn add_commit_wait(nanos: u64) {
    COMMIT_WAIT_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
}

pub(crate) fn add_commit_force(nanos: u64) {
    COMMIT_FORCE_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
}

pub(crate) fn add_heap_wait(nanos: u64) {
    HEAP_WAIT_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
}

pub(crate) fn add_lock_condvar_wait() {
    LOCK_CONDVAR_WAITS.with(|c| c.set(c.get().saturating_add(1)));
}

/// Attribute `nanos` of name-index wait to the calling thread. Public:
/// the name index lives in labbase, which owns no wait counters of its
/// own — it reports into the shared per-thread profile here.
pub fn add_name_index_wait(nanos: u64) {
    NAME_INDEX_WAIT_NANOS.with(|c| c.set(c.get().saturating_add(nanos)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_thread() {
        let before = snapshot();
        add_lock_wait(100);
        add_commit_wait(40);
        add_commit_force(13);
        add_heap_wait(9);
        add_lock_wait(1);
        add_lock_condvar_wait();
        add_lock_condvar_wait();
        add_name_index_wait(33);
        let d = snapshot().delta(&before);
        assert_eq!(d.lock_wait_nanos, 101);
        assert_eq!(d.commit_wait_nanos, 40);
        assert_eq!(d.commit_force_nanos, 13);
        assert_eq!(d.heap_wait_nanos, 9);
        assert_eq!(d.lock_condvar_waits, 2);
        assert_eq!(d.name_index_wait_nanos, 33);

        // Another thread's counters are independent.
        let handle = std::thread::spawn(|| {
            let t0 = snapshot();
            add_lock_wait(7);
            snapshot().delta(&t0)
        });
        let other = handle.join().unwrap_or_default();
        assert_eq!(other.lock_wait_nanos, 7);
        let here = snapshot().delta(&before);
        assert_eq!(here.lock_wait_nanos, 101, "other thread must not bleed in");
    }

    #[test]
    fn delta_saturates() {
        let a = WaitSnapshot {
            lock_wait_nanos: 10,
            commit_wait_nanos: 10,
            commit_force_nanos: 4,
            heap_wait_nanos: 10,
            lock_condvar_waits: 2,
            name_index_wait_nanos: 5,
        };
        let b = WaitSnapshot::default();
        assert_eq!(b.delta(&a), WaitSnapshot::default());
    }
}
