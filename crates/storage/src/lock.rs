//! A striped two-phase lock manager for the ObjectStore-like backend.
//!
//! ObjectStore mediated all access through a page server with lock-based
//! concurrency control; the Texas store was single-user. We reproduce the
//! distinction at object granularity: [`OStore`](crate::OStore)
//! transactions take shared/exclusive object locks held until
//! commit/abort, with a timeout as deadlock avoidance.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::ids::{Oid, TxnId};

/// Requested lock mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    /// Transactions holding the lock shared.
    shared: Vec<u64>,
    /// Transaction holding it exclusive, if any.
    exclusive: Option<u64>,
}

const SHARDS: usize = 32;

/// The lock manager.
pub struct LockManager {
    shards: Vec<Mutex<HashMap<u64, LockState>>>,
    /// Per-transaction set of held locks, for release-at-end.
    held: Mutex<HashMap<u64, Vec<Oid>>>,
    timeout: Duration,
}

impl LockManager {
    /// Create a lock manager with the given deadlock-avoidance timeout.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            held: Mutex::new(HashMap::new()),
            timeout,
        }
    }

    fn shard(&self, oid: Oid) -> &Mutex<HashMap<u64, LockState>> {
        &self.shards[(oid.raw() as usize) % SHARDS]
    }

    /// Acquire `mode` on `oid` for `txn`, blocking up to the timeout.
    /// Re-acquisition and shared→exclusive upgrade (as sole holder) are
    /// allowed.
    pub fn acquire(&self, txn: TxnId, oid: Oid, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let t = txn.raw();
        loop {
            {
                let mut shard = self.shard(oid).lock();
                let state = shard.entry(oid.raw()).or_default();
                let granted = match mode {
                    LockMode::Shared => match state.exclusive {
                        Some(holder) => holder == t,
                        None => {
                            if !state.shared.contains(&t) {
                                state.shared.push(t);
                                self.note_held(t, oid);
                            }
                            true
                        }
                    },
                    LockMode::Exclusive => {
                        let others_shared = state.shared.iter().any(|&h| h != t);
                        match state.exclusive {
                            Some(holder) if holder == t => true,
                            Some(_) => false,
                            None if others_shared => false,
                            None => {
                                // Possibly an upgrade: drop own shared mark.
                                state.shared.retain(|&h| h != t);
                                state.exclusive = Some(t);
                                self.note_held(t, oid);
                                true
                            }
                        }
                    }
                };
                if granted {
                    return Ok(());
                }
            }
            if Instant::now() >= deadline {
                return Err(StorageError::LockTimeout(oid));
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_micros(50));
        }
    }

    fn note_held(&self, txn: u64, oid: Oid) {
        let mut held = self.held.lock();
        let v = held.entry(txn).or_default();
        if !v.contains(&oid) {
            v.push(oid);
        }
    }

    /// Release every lock held by `txn` (commit or abort).
    pub fn release_all(&self, txn: TxnId) {
        let t = txn.raw();
        let oids = self.held.lock().remove(&t).unwrap_or_default();
        for oid in oids {
            let mut shard = self.shard(oid).lock();
            if let Some(state) = shard.get_mut(&oid.raw()) {
                state.shared.retain(|&h| h != t);
                if state.exclusive == Some(t) {
                    state.exclusive = None;
                }
                if state.shared.is_empty() && state.exclusive.is_none() {
                    shard.remove(&oid.raw());
                }
            }
        }
    }

    /// Number of objects currently locked (diagnostics).
    pub fn locked_objects(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mk() -> LockManager {
        LockManager::new(Duration::from_millis(200))
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = mk();
        let o = Oid::from_raw(1);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Shared).unwrap();
        lm.acquire(TxnId::from_raw(2), o, LockMode::Shared).unwrap();
        assert_eq!(lm.locked_objects(), 1);
        lm.release_all(TxnId::from_raw(1));
        lm.release_all(TxnId::from_raw(2));
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn exclusive_blocks_others_until_release() {
        let lm = Arc::new(mk());
        let o = Oid::from_raw(7);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap();
        // Second writer times out while txn 1 holds the lock.
        let err = lm.acquire(TxnId::from_raw(2), o, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, StorageError::LockTimeout(_)));
        lm.release_all(TxnId::from_raw(1));
        lm.acquire(TxnId::from_raw(2), o, LockMode::Exclusive).unwrap();
        lm.release_all(TxnId::from_raw(2));
    }

    #[test]
    fn reacquire_and_upgrade_as_sole_holder() {
        let lm = mk();
        let o = Oid::from_raw(3);
        let t = TxnId::from_raw(1);
        lm.acquire(t, o, LockMode::Shared).unwrap();
        lm.acquire(t, o, LockMode::Shared).unwrap();
        lm.acquire(t, o, LockMode::Exclusive).unwrap(); // upgrade
        lm.acquire(t, o, LockMode::Shared).unwrap(); // read under own X
        lm.release_all(t);
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = mk();
        let o = Oid::from_raw(4);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Shared).unwrap();
        lm.acquire(TxnId::from_raw(2), o, LockMode::Shared).unwrap();
        let err = lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, StorageError::LockTimeout(_)));
    }

    #[test]
    fn writer_released_from_another_thread_unblocks_waiter() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(2)));
        let o = Oid::from_raw(9);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let handle = std::thread::spawn(move || {
            lm2.acquire(TxnId::from_raw(2), o, LockMode::Shared).unwrap();
            lm2.release_all(TxnId::from_raw(2));
        });
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId::from_raw(1));
        handle.join().unwrap();
    }
}
