//! A striped two-phase lock manager for the ObjectStore-like backend.
//!
//! ObjectStore mediated all access through a page server with lock-based
//! concurrency control; the Texas store was single-user. We reproduce the
//! distinction at object granularity: [`OStore`](crate::OStore)
//! transactions take shared/exclusive object locks held until
//! commit/abort, with a timeout as deadlock avoidance.
//!
//! Waiters block on a per-shard condition variable and are woken when any
//! lock in the shard is released, so contended acquisition costs no
//! spinning; the timeout bounds the wait and doubles as deadlock
//! avoidance (a timed-out transaction aborts and retries, the classic
//! alternative to a waits-for graph).

use std::collections::HashMap;
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::ids::{Oid, TxnId};
use crate::lock_order::{self, Ranked};

/// Requested lock mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockMode {
    /// Shared (read) lock; compatible with other shared locks.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

#[derive(Default)]
struct LockState {
    /// Transactions holding the lock shared.
    shared: Vec<u64>,
    /// Transaction holding it exclusive, if any.
    exclusive: Option<u64>,
}

struct Shard {
    states: StdMutex<HashMap<u64, LockState>>,
    /// Signalled whenever a lock in this shard is released.
    released: Condvar,
}

impl Shard {
    /// Lock the shard with rank tracking, recovering from poisoning: a
    /// committer that panicked while holding the shard must not wedge
    /// every later transaction hashing to it.
    fn lock(&self) -> Ranked<MutexGuard<'_, HashMap<u64, LockState>>> {
        lock_order::ranked(lock_order::LOCK_SHARD, || self.raw_lock())
    }

    /// Poison-recovering lock without a rank token, for callers that
    /// must hand the bare guard to a condvar wait (the token is then
    /// managed explicitly alongside).
    fn raw_lock(&self) -> MutexGuard<'_, HashMap<u64, LockState>> {
        self.states.lock().unwrap_or_else(|e| e.into_inner())
    }
}

const SHARDS: usize = 32;

/// The lock manager.
pub struct LockManager {
    shards: Vec<Shard>,
    /// Per-transaction set of held locks, for release-at-end.
    held: Mutex<HashMap<u64, Vec<Oid>>>,
    timeout: Duration,
}

impl LockManager {
    /// Create a lock manager with the given deadlock-avoidance timeout.
    pub fn new(timeout: Duration) -> Self {
        LockManager {
            shards: (0..SHARDS)
                .map(|_| Shard { states: StdMutex::new(HashMap::new()), released: Condvar::new() })
                .collect(),
            held: Mutex::new(HashMap::new()),
            timeout,
        }
    }

    fn shard(&self, oid: Oid) -> &Shard {
        &self.shards[(oid.raw() as usize) % SHARDS]
    }

    /// Acquire `mode` on `oid` for `txn`, blocking up to the timeout.
    /// Re-acquisition and shared→exclusive upgrade (as sole holder) are
    /// allowed.
    pub fn acquire(&self, txn: TxnId, oid: Oid, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let t = txn.raw();
        let shard = self.shard(oid);
        // Explicit token: the guard below is consumed and re-produced by
        // the condvar wait, so it cannot carry the rank itself.
        let _rank = lock_order::acquire(lock_order::LOCK_SHARD);
        let mut states = shard.raw_lock();
        // Wait attribution: timing starts only when the request actually
        // blocks, so uncontended acquisitions stay free of clock reads.
        let mut waited: Option<Instant> = None;
        let result = loop {
            let state = states.entry(oid.raw()).or_default();
            let granted = match mode {
                LockMode::Shared => match state.exclusive {
                    Some(holder) => holder == t,
                    None => {
                        if !state.shared.contains(&t) {
                            state.shared.push(t);
                            self.note_held(t, oid);
                        }
                        true
                    }
                },
                LockMode::Exclusive => {
                    let others_shared = state.shared.iter().any(|&h| h != t);
                    match state.exclusive {
                        Some(holder) if holder == t => true,
                        Some(_) => false,
                        None if others_shared => false,
                        None => {
                            // Possibly an upgrade: drop own shared mark.
                            state.shared.retain(|&h| h != t);
                            state.exclusive = Some(t);
                            self.note_held(t, oid);
                            true
                        }
                    }
                }
            };
            if granted {
                break Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(StorageError::LockTimeout(oid));
            }
            waited.get_or_insert(now);
            crate::waits::add_lock_condvar_wait();
            let (guard, _) = shard
                .released
                .wait_timeout(states, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            states = guard;
        };
        if let Some(start) = waited {
            crate::waits::add_lock_wait(start.elapsed().as_nanos() as u64);
        }
        result
    }

    fn note_held(&self, txn: u64, oid: Oid) {
        let mut held = lock_order::ranked(lock_order::LOCK_HELD, || self.held.lock());
        let v = held.entry(txn).or_default();
        if !v.contains(&oid) {
            v.push(oid);
        }
    }

    /// Release every lock held by `txn` (commit or abort) and wake any
    /// waiters in the affected shards.
    pub fn release_all(&self, txn: TxnId) {
        let t = txn.raw();
        let oids = {
            let mut held = lock_order::ranked(lock_order::LOCK_HELD, || self.held.lock());
            held.remove(&t).unwrap_or_default()
        };
        for oid in oids {
            let shard = self.shard(oid);
            let mut states = shard.lock();
            if let Some(state) = states.get_mut(&oid.raw()) {
                state.shared.retain(|&h| h != t);
                if state.exclusive == Some(t) {
                    state.exclusive = None;
                }
                if state.shared.is_empty() && state.exclusive.is_none() {
                    states.remove(&oid.raw());
                }
            }
            drop(states);
            shard.released.notify_all();
        }
    }

    /// Number of objects currently locked (diagnostics).
    pub fn locked_objects(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn mk() -> LockManager {
        LockManager::new(Duration::from_millis(200))
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = mk();
        let o = Oid::from_raw(1);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Shared).unwrap();
        lm.acquire(TxnId::from_raw(2), o, LockMode::Shared).unwrap();
        assert_eq!(lm.locked_objects(), 1);
        lm.release_all(TxnId::from_raw(1));
        lm.release_all(TxnId::from_raw(2));
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn exclusive_blocks_others_until_release() {
        let lm = Arc::new(mk());
        let o = Oid::from_raw(7);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap();
        // Second writer times out while txn 1 holds the lock.
        let err = lm.acquire(TxnId::from_raw(2), o, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, StorageError::LockTimeout(_)));
        lm.release_all(TxnId::from_raw(1));
        lm.acquire(TxnId::from_raw(2), o, LockMode::Exclusive).unwrap();
        lm.release_all(TxnId::from_raw(2));
    }

    #[test]
    fn reacquire_and_upgrade_as_sole_holder() {
        let lm = mk();
        let o = Oid::from_raw(3);
        let t = TxnId::from_raw(1);
        lm.acquire(t, o, LockMode::Shared).unwrap();
        lm.acquire(t, o, LockMode::Shared).unwrap();
        lm.acquire(t, o, LockMode::Exclusive).unwrap(); // upgrade
        lm.acquire(t, o, LockMode::Shared).unwrap(); // read under own X
        lm.release_all(t);
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = mk();
        let o = Oid::from_raw(4);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Shared).unwrap();
        lm.acquire(TxnId::from_raw(2), o, LockMode::Shared).unwrap();
        let err = lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, StorageError::LockTimeout(_)));
    }

    #[test]
    fn writer_released_from_another_thread_unblocks_waiter() {
        let lm = Arc::new(LockManager::new(Duration::from_secs(2)));
        let o = Oid::from_raw(9);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let handle = std::thread::spawn(move || {
            lm2.acquire(TxnId::from_raw(2), o, LockMode::Shared).unwrap();
            lm2.release_all(TxnId::from_raw(2));
        });
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(TxnId::from_raw(1));
        handle.join().unwrap();
    }

    #[test]
    fn release_wakes_blocked_writer_promptly() {
        // With condvar-based waits, a blocked writer should acquire the
        // lock well before its timeout once the holder releases.
        let lm = Arc::new(LockManager::new(Duration::from_secs(10)));
        let o = Oid::from_raw(11);
        lm.acquire(TxnId::from_raw(1), o, LockMode::Exclusive).unwrap();
        let lm2 = lm.clone();
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            lm2.acquire(TxnId::from_raw(2), o, LockMode::Exclusive).unwrap();
            lm2.release_all(TxnId::from_raw(2));
        });
        std::thread::sleep(Duration::from_millis(50));
        lm.release_all(TxnId::from_raw(1));
        handle.join().unwrap();
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "waiter should wake on release, not ride out the timeout"
        );
    }

    #[test]
    fn opposite_order_acquisition_times_out_instead_of_deadlocking() {
        // Classic deadlock shape: txn 1 holds A and wants B, txn 2 holds
        // B and wants A. With timeout-based avoidance both cross
        // acquisitions must fail with LockTimeout rather than hang, and
        // after release the objects are free again.
        let lm = Arc::new(mk());
        let a = Oid::from_raw(100);
        let b = Oid::from_raw(101);
        let t1 = TxnId::from_raw(1);
        let t2 = TxnId::from_raw(2);
        lm.acquire(t1, a, LockMode::Exclusive).unwrap();
        lm.acquire(t2, b, LockMode::Exclusive).unwrap();
        let lm1 = lm.clone();
        let lm2 = lm.clone();
        let h1 = std::thread::spawn(move || lm1.acquire(t1, b, LockMode::Exclusive));
        let h2 = std::thread::spawn(move || lm2.acquire(t2, a, LockMode::Exclusive));
        let r1 = h1.join().unwrap();
        let r2 = h2.join().unwrap();
        assert!(matches!(r1, Err(StorageError::LockTimeout(o)) if o == b));
        assert!(matches!(r2, Err(StorageError::LockTimeout(o)) if o == a));
        lm.release_all(t1);
        lm.release_all(t2);
        lm.acquire(t1, b, LockMode::Exclusive).unwrap();
        lm.acquire(t2, a, LockMode::Exclusive).unwrap();
        lm.release_all(t1);
        lm.release_all(t2);
        assert_eq!(lm.locked_objects(), 0);
    }

    #[test]
    fn contended_counter_under_many_threads() {
        // N threads repeatedly lock the same object exclusively; every
        // acquisition must be serialized (no lost updates on a plain
        // non-atomic counter guarded only by the lock manager).
        let lm = Arc::new(LockManager::new(Duration::from_secs(30)));
        let o = Oid::from_raw(42);
        let counter = Arc::new(StdMutex::new(0u64));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let lm = lm.clone();
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let txn = TxnId::from_raw(1 + t * 1000 + i);
                    lm.acquire(txn, o, LockMode::Exclusive).unwrap();
                    {
                        let mut c = counter.lock().unwrap();
                        let v = *c;
                        std::thread::yield_now();
                        *c = v + 1;
                    }
                    lm.release_all(txn);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock().unwrap(), 8 * 50);
        assert_eq!(lm.locked_objects(), 0);
    }
}
