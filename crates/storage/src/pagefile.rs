//! A file of fixed-size pages with physical-I/O accounting and
//! end-to-end verification.
//!
//! Every physical page begins with a [`PAGE_HDR`]-byte self-describing
//! header stamped on write and verified on read:
//!
//! ```text
//! magic u32 | page id u32 | lsn u64 | fnv1a(pid ‖ lsn ‖ payload) u32 | reserved u32
//! ```
//!
//! The header answers three questions no raw read can: *is this the
//! page I asked for* (a misdirected write lands a perfectly valid image
//! at the wrong offset), *are the bytes intact* (bit rot flips bits at
//! rest or on the wire), and *is this the newest image* (a lost write
//! leaves a stale-but-valid page behind; the checkpoint records every
//! page's LSN in the meta file, and an image older than that floor is
//! damage, not history). Never-written pages are carved out explicitly:
//! an all-zero page — or a read beyond EOF — is reported as
//! [`PageRead::Fresh`] only when no written image is expected there;
//! with a recorded LSN floor it is truncation damage.
//!
//! Verification failures surface as [`StorageError::PageChecksum`] /
//! [`StorageError::MisdirectedPage`]. A failed read is retried once
//! immediately — transient read corruption (a bus glitch, `SimVfs`'s
//! seeded `flip_read_ops`) does not recur, and the re-read *is* the
//! read-repair for that fault class. Persistent damage is the caller's
//! problem; the engine quarantines such pages at recovery, and a full
//! page overwrite heals the quarantine (the new image replaces the bad
//! bytes entirely).

use std::collections::BTreeSet;
use std::path::Path;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::checksum::fnv1a_multi;
use crate::error::{Result, StorageError};
use crate::ids::PageId;
use crate::retry::with_retries;
use crate::stats::StorageStats;
use crate::vfs::{OpenMode, Vfs, VfsFile};
use crate::{PAGE_PAYLOAD, PAGE_SIZE};

/// Bytes of each physical page reserved for the verification header.
pub const PAGE_HDR: usize = 24;

const PAGE_MAGIC: u32 = 0x4C46_5047; // "LFPG"

/// What a successful [`PageFile::read_page`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageRead {
    /// A written, verified page image; the payload was copied out.
    Loaded,
    /// The page was allocated but never written (beyond EOF or all
    /// zero, with no recorded write): the payload is logically zero.
    /// Callers that expected data here should treat this as damage —
    /// the page file itself only does so when the checkpoint recorded
    /// a written image for the page.
    Fresh,
}

/// Everything guarded by the page-file lock: the handle, a scratch
/// buffer for header assembly, and the verification state.
struct FileState {
    handle: Box<dyn VfsFile>,
    scratch: Vec<u8>,
    /// Per-page LSN floor: the LSN each page carried at the last
    /// checkpoint (0 = no written image expected). A durable image
    /// below its floor is a lost write.
    versions: Vec<u64>,
    /// Pages with persistent damage: reads fail typed without touching
    /// the disk until a full overwrite heals them.
    quarantined: BTreeSet<u32>,
}

enum Verified {
    Ok,
    Fresh,
    Bad(StorageError),
}

/// A page-granular file. All physical reads and writes flow through here
/// and are counted in the shared [`StorageStats`].
pub struct PageFile {
    file: Mutex<FileState>,
    page_count: AtomicU32,
    lsn: AtomicU64,
    stats: Arc<StorageStats>,
}

fn split_u32(b: &[u8]) -> Option<(u32, &[u8])> {
    let (head, rest) = b.split_at_checked(4)?;
    let arr: [u8; 4] = head.try_into().ok()?;
    Some((u32::from_le_bytes(arr), rest))
}

fn split_u64(b: &[u8]) -> Option<(u64, &[u8])> {
    let (head, rest) = b.split_at_checked(8)?;
    let arr: [u8; 8] = head.try_into().ok()?;
    Some((u64::from_le_bytes(arr), rest))
}

/// Decoded page header fields paired with the payload slice.
struct DecodedPage<'a> {
    magic: u32,
    pid: u32,
    lsn: u64,
    crc: u32,
    reserved: u32,
    payload: &'a [u8],
}

/// Checked header decode.
fn decode_page(page: &[u8]) -> Option<DecodedPage<'_>> {
    let (magic, rest) = split_u32(page)?;
    let (pid, rest) = split_u32(rest)?;
    let (lsn, rest) = split_u64(rest)?;
    let (crc, rest) = split_u32(rest)?;
    let (reserved, payload) = split_u32(rest)?;
    Some(DecodedPage { magic, pid, lsn, crc, reserved, payload })
}

/// The page checksum covers every header field except the crc itself
/// (magic damage already has its own typed report) — including the
/// reserved word, so no byte of the page can rot unnoticed.
fn page_crc(pid: u32, lsn: u64, reserved: u32, payload: &[u8]) -> u32 {
    fnv1a_multi(&[
        &pid.to_le_bytes(),
        &lsn.to_le_bytes(),
        &reserved.to_le_bytes(),
        payload,
    ])
}

impl PageFile {
    /// Create a new, empty page file (truncating any existing file).
    pub fn create(vfs: &Arc<dyn Vfs>, path: &Path, stats: Arc<StorageStats>) -> Result<Self> {
        let file = vfs.open(path, OpenMode::Create)?;
        Ok(PageFile {
            file: Mutex::new(FileState {
                handle: file,
                scratch: vec![0u8; PAGE_SIZE],
                versions: Vec::new(),
                quarantined: BTreeSet::new(),
            }),
            page_count: AtomicU32::new(0),
            lsn: AtomicU64::new(0),
            stats,
        })
    }

    /// Open an existing page file.
    pub fn open(vfs: &Arc<dyn Vfs>, path: &Path, stats: Arc<StorageStats>) -> Result<Self> {
        let mut file = vfs.open(path, OpenMode::Open)?;
        let len = file.len()?;
        // Ceiling, not floor: a crash can leave the file ending
        // mid-page, and that torn tail is still page territory.
        let pages = len.div_ceil(PAGE_SIZE as u64) as u32;
        Ok(PageFile {
            file: Mutex::new(FileState {
                handle: file,
                scratch: vec![0u8; PAGE_SIZE],
                versions: Vec::new(),
                quarantined: BTreeSet::new(),
            }),
            page_count: AtomicU32::new(pages),
            lsn: AtomicU64::new(0),
            stats,
        })
    }

    /// Install the per-page LSN floors recorded by the last checkpoint.
    /// Future LSNs continue above the highest floor.
    pub fn set_version_floors(&self, versions: Vec<u64>) {
        let max = versions.iter().copied().max().unwrap_or(0);
        self.lsn.fetch_max(max, Ordering::AcqRel);
        self.file.lock().versions = versions;
    }

    /// Snapshot of the per-page LSNs, for the checkpoint to persist.
    pub fn version_table(&self) -> Vec<u64> {
        self.file.lock().versions.clone()
    }

    /// Install the quarantine set recorded by the last checkpoint.
    pub fn set_quarantined(&self, pids: &[u32]) {
        self.file.lock().quarantined = pids.iter().copied().collect();
    }

    /// Pages currently quarantined, for the checkpoint to persist.
    pub fn quarantined_pages(&self) -> Vec<u32> {
        self.file.lock().quarantined.iter().copied().collect()
    }

    /// Mark `pid` as persistently damaged: reads fail typed until a
    /// full overwrite replaces the image.
    pub fn quarantine(&self, pid: PageId) {
        if self.file.lock().quarantined.insert(pid.0) {
            StorageStats::bump(&self.stats.pages_quarantined, 1);
        }
    }

    /// True if `pid` is currently quarantined.
    pub fn is_quarantined(&self, pid: PageId) -> bool {
        self.file.lock().quarantined.contains(&pid.0)
    }

    /// Number of pages currently in the file (allocated pages may not yet
    /// have been physically written).
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    /// Reserve the next page id. The page is materialized on first write;
    /// reading an allocated-but-unwritten page yields zeroes.
    pub fn allocate_page(&self) -> PageId {
        PageId(self.page_count.fetch_add(1, Ordering::AcqRel))
    }

    /// Read and verify one page image. Infallible I/O-wise only in the
    /// sense that transient errors are retried; returns the verdict.
    fn load_and_verify(&self, st: &mut FileState, pid: PageId) -> Result<Verified> {
        let offset = pid.0 as u64 * PAGE_SIZE as u64;
        let FileState { handle, scratch, versions, .. } = st;
        let floor = versions.get(pid.0 as usize).copied().unwrap_or(0);
        let file_len =
            with_retries(|| handle.len(), || StorageStats::bump(&self.stats.io_retries, 1))?;
        if offset >= file_len {
            if floor > 0 {
                return Ok(Verified::Bad(StorageError::PageChecksum {
                    page: pid.0,
                    detail: format!(
                        "file truncated below a written page (expected lsn >= {floor})"
                    ),
                }));
            }
            return Ok(Verified::Fresh);
        }
        scratch.fill(0);
        let avail = ((file_len - offset) as usize).min(PAGE_SIZE);
        let dst = scratch.get_mut(..avail).unwrap_or_default();
        with_retries(
            || handle.read_at(offset, dst),
            || StorageStats::bump(&self.stats.io_retries, 1),
        )?;
        if scratch.iter().all(|&b| b == 0) {
            // Never-written carve-out: an all-zero page is "fresh", but
            // only where no written image is expected.
            if floor > 0 {
                return Ok(Verified::Bad(StorageError::PageChecksum {
                    page: pid.0,
                    detail: format!(
                        "all-zero page where a written image was expected (lsn >= {floor})"
                    ),
                }));
            }
            return Ok(Verified::Fresh);
        }
        let Some(DecodedPage { magic, pid: hdr_pid, lsn, crc, reserved, payload }) =
            decode_page(scratch)
        else {
            return Ok(Verified::Bad(StorageError::PageChecksum {
                page: pid.0,
                detail: "short page".into(),
            }));
        };
        if magic != PAGE_MAGIC {
            return Ok(Verified::Bad(StorageError::PageChecksum {
                page: pid.0,
                detail: format!("bad magic {magic:#010x}"),
            }));
        }
        if crc != page_crc(hdr_pid, lsn, reserved, payload) {
            return Ok(Verified::Bad(StorageError::PageChecksum {
                page: pid.0,
                detail: "checksum mismatch".into(),
            }));
        }
        if hdr_pid != pid.0 {
            return Ok(Verified::Bad(StorageError::MisdirectedPage {
                expected: pid.0,
                found: hdr_pid,
            }));
        }
        if lsn < floor {
            return Ok(Verified::Bad(StorageError::PageChecksum {
                page: pid.0,
                detail: format!("stale image (lost write): page lsn {lsn} < expected {floor}"),
            }));
        }
        Ok(Verified::Ok)
    }

    fn copy_payload(st: &FileState, buf: &mut [u8]) {
        if let Some(src) = st.scratch.get(PAGE_HDR..) {
            buf.copy_from_slice(src);
        }
    }

    /// Read page `pid` into `buf` (which must be [`PAGE_PAYLOAD`] long),
    /// verifying the page header and checksum.
    ///
    /// Returns [`PageRead::Fresh`] — with `buf` zeroed — for pages that
    /// were never written (beyond EOF or all-zero, with no recorded LSN
    /// floor). A verification failure is retried with one immediate
    /// re-read (repairing transient read corruption); persistent damage
    /// returns [`StorageError::PageChecksum`] or
    /// [`StorageError::MisdirectedPage`], and quarantined pages fail
    /// without touching the disk.
    pub fn read_page(&self, pid: PageId, buf: &mut [u8]) -> Result<PageRead> {
        debug_assert_eq!(buf.len(), PAGE_PAYLOAD);
        let mut st = self.file.lock();
        if st.quarantined.contains(&pid.0) {
            return Err(StorageError::PageChecksum {
                page: pid.0,
                detail: "page is quarantined (persistent damage; overwrite to heal)".into(),
            });
        }
        let verdict = self.load_and_verify(&mut st, pid)?;
        StorageStats::bump(&self.stats.page_reads, 1);
        match verdict {
            Verified::Ok => {
                Self::copy_payload(&st, buf);
                Ok(PageRead::Loaded)
            }
            Verified::Fresh => {
                buf.fill(0);
                Ok(PageRead::Fresh)
            }
            Verified::Bad(_) => {
                // One immediate re-read: transient corruption (a bit
                // flipped on the wire, not at rest) does not recur.
                match self.load_and_verify(&mut st, pid)? {
                    Verified::Ok => {
                        StorageStats::bump(&self.stats.read_repairs, 1);
                        Self::copy_payload(&st, buf);
                        Ok(PageRead::Loaded)
                    }
                    Verified::Fresh => {
                        StorageStats::bump(&self.stats.read_repairs, 1);
                        buf.fill(0);
                        Ok(PageRead::Fresh)
                    }
                    Verified::Bad(err) => Err(err),
                }
            }
        }
    }

    /// Write the [`PAGE_PAYLOAD`]-byte `buf` to page `pid` under a fresh
    /// header, extending the file if needed. A full overwrite heals a
    /// quarantined page: the damaged image is gone.
    pub fn write_page(&self, pid: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_PAYLOAD);
        let mut guard = self.file.lock();
        let st = &mut *guard;
        let offset = pid.0 as u64 * PAGE_SIZE as u64;
        let FileState { handle, scratch, versions, quarantined } = st;
        let file_len =
            with_retries(|| handle.len(), || StorageStats::bump(&self.stats.io_retries, 1))?;
        if offset > file_len {
            // Keep the file dense in whole pages so read_page's bounds
            // logic stays simple.
            with_retries(
                || handle.set_len(offset),
                || StorageStats::bump(&self.stats.io_retries, 1),
            )?;
        }
        let lsn = self.lsn.fetch_add(1, Ordering::AcqRel) + 1;
        let crc = page_crc(pid.0, lsn, 0, buf);
        let header = PAGE_MAGIC
            .to_le_bytes()
            .into_iter()
            .chain(pid.0.to_le_bytes())
            .chain(lsn.to_le_bytes())
            .chain(crc.to_le_bytes())
            .chain([0u8; 4]);
        for (dst, b) in scratch.iter_mut().zip(header) {
            *dst = b;
        }
        if let Some(dst) = scratch.get_mut(PAGE_HDR..) {
            dst.copy_from_slice(buf);
        }
        with_retries(
            || handle.write_at(offset, scratch),
            || StorageStats::bump(&self.stats.io_retries, 1),
        )?;
        if versions.len() <= pid.0 as usize {
            versions.resize(pid.0 as usize + 1, 0);
        }
        if let Some(v) = versions.get_mut(pid.0 as usize) {
            *v = lsn;
        }
        if quarantined.remove(&pid.0) {
            StorageStats::bump(&self.stats.pages_healed, 1);
        }
        StorageStats::bump(&self.stats.page_writes, 1);
        Ok(())
    }

    /// Flush file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        let mut st = self.file.lock();
        with_retries(
            || st.handle.sync(),
            || StorageStats::bump(&self.stats.io_retries, 1),
        )
    }

    /// Current physical size of the file in bytes.
    pub fn len_bytes(&self) -> Result<u64> {
        self.file.lock().handle.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{RealVfs, SimVfs};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lfs-pf-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("data.pg")
    }

    #[test]
    fn write_read_round_trip_counts_io() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("rt");
        let pf = PageFile::create(&vfs, &path, stats.clone()).unwrap();
        let p0 = pf.allocate_page();
        let p1 = pf.allocate_page();
        assert_eq!((p0.0, p1.0), (0, 1));

        let mut page = vec![0xABu8; PAGE_PAYLOAD];
        page[0] = 1;
        pf.write_page(p1, &page).unwrap();

        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert_eq!(pf.read_page(p1, &mut out).unwrap(), PageRead::Loaded);
        assert_eq!(out, page);

        // p0 was allocated but never written: a typed Fresh, zeroes.
        assert_eq!(pf.read_page(p0, &mut out).unwrap(), PageRead::Fresh);
        assert!(out.iter().all(|&b| b == 0));

        let snap = stats.snapshot();
        assert_eq!(snap.page_writes, 1);
        assert_eq!(snap.page_reads, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_pages() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("reopen");
        {
            let pf = PageFile::create(&vfs, &path, stats.clone()).unwrap();
            let p = pf.allocate_page();
            pf.write_page(p, &vec![7u8; PAGE_PAYLOAD]).unwrap();
            pf.sync().unwrap();
        }
        let pf = PageFile::open(&vfs, &path, stats).unwrap();
        assert_eq!(pf.page_count(), 1);
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert_eq!(pf.read_page(PageId(0), &mut out).unwrap(), PageRead::Loaded);
        assert!(out.iter().all(|&b| b == 7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sparse_write_extends_file() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("sparse");
        let pf = PageFile::create(&vfs, &path, stats).unwrap();
        for _ in 0..5 {
            pf.allocate_page();
        }
        // Write page 4 first; pages 0..4 must still read as zero.
        pf.write_page(PageId(4), &vec![9u8; PAGE_PAYLOAD]).unwrap();
        assert_eq!(pf.len_bytes().unwrap(), 5 * PAGE_SIZE as u64);
        let mut out = vec![1u8; PAGE_PAYLOAD];
        assert_eq!(pf.read_page(PageId(2), &mut out).unwrap(), PageRead::Fresh);
        assert!(out.iter().all(|&b| b == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn works_on_sim_vfs() {
        let stats = Arc::new(StorageStats::default());
        let sim = SimVfs::new(42);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = std::path::Path::new("/sim/data.pg");
        let pf = PageFile::create(&vfs, path, stats).unwrap();
        let p = pf.allocate_page();
        pf.write_page(p, &vec![3u8; PAGE_PAYLOAD]).unwrap();
        let mut out = vec![0u8; PAGE_PAYLOAD];
        pf.read_page(p, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 3));
        // Unsynced: the durable image is still empty.
        assert_eq!(sim.clone_durable().size(path).unwrap(), Some(0));
        pf.sync().unwrap();
        assert_eq!(sim.clone_durable().size(path).unwrap(), Some(PAGE_SIZE as u64));
    }

    #[test]
    fn bit_rot_is_a_typed_checksum_error() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("rot");
        let pf = PageFile::create(&vfs, &path, stats).unwrap();
        let p = pf.allocate_page();
        pf.write_page(p, &vec![5u8; PAGE_PAYLOAD]).unwrap();
        pf.sync().unwrap();
        // Flip one payload bit on disk, behind the page file's back.
        {
            let mut f = vfs.open(&path, OpenMode::Open).unwrap();
            let mut b = [0u8; 1];
            f.read_at(100, &mut b).unwrap();
            b[0] ^= 0x10;
            f.write_at(100, &b).unwrap();
            f.sync().unwrap();
        }
        let mut out = vec![0u8; PAGE_PAYLOAD];
        let err = pf.read_page(p, &mut out).unwrap_err();
        assert!(
            matches!(err, StorageError::PageChecksum { page, .. } if page == p.0),
            "want PageChecksum, got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn misdirected_image_is_detected() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("misdirect");
        let pf = PageFile::create(&vfs, &path, stats).unwrap();
        let p0 = pf.allocate_page();
        let p1 = pf.allocate_page();
        pf.write_page(p0, &vec![1u8; PAGE_PAYLOAD]).unwrap();
        pf.write_page(p1, &vec![2u8; PAGE_PAYLOAD]).unwrap();
        pf.sync().unwrap();
        // Replay page 0's image at page 1's offset: a misdirected write.
        {
            let mut f = vfs.open(&path, OpenMode::Open).unwrap();
            let mut img = vec![0u8; PAGE_SIZE];
            f.read_at(0, &mut img).unwrap();
            f.write_at(PAGE_SIZE as u64, &img).unwrap();
            f.sync().unwrap();
        }
        let mut out = vec![0u8; PAGE_PAYLOAD];
        let err = pf.read_page(p1, &mut out).unwrap_err();
        assert!(
            matches!(err, StorageError::MisdirectedPage { expected: 1, found: 0 }),
            "want MisdirectedPage, got {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn lsn_floor_catches_truncation_and_lost_writes() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("floor");
        let pf = PageFile::create(&vfs, &path, stats).unwrap();
        let p = pf.allocate_page();
        pf.write_page(p, &vec![4u8; PAGE_PAYLOAD]).unwrap();
        pf.sync().unwrap();
        let versions = pf.version_table();
        // Truncate the file to nothing, then reopen with the recorded
        // floors: the missing page must be damage, not Fresh.
        {
            let mut f = vfs.open(&path, OpenMode::Open).unwrap();
            f.set_len(0).unwrap();
            f.sync().unwrap();
        }
        let pf2 = PageFile::open(&vfs, &path, Arc::new(StorageStats::default())).unwrap();
        pf2.set_version_floors(versions);
        let mut out = vec![0u8; PAGE_PAYLOAD];
        let err = pf2.read_page(p, &mut out).unwrap_err();
        assert!(matches!(err, StorageError::PageChecksum { .. }), "got {err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantine_blocks_reads_and_overwrite_heals() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("quar");
        let pf = PageFile::create(&vfs, &path, stats.clone()).unwrap();
        let p = pf.allocate_page();
        pf.write_page(p, &vec![6u8; PAGE_PAYLOAD]).unwrap();
        pf.quarantine(p);
        assert!(pf.is_quarantined(p));
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert!(matches!(
            pf.read_page(p, &mut out),
            Err(StorageError::PageChecksum { .. })
        ));
        // A full overwrite replaces the image and lifts the quarantine.
        pf.write_page(p, &vec![8u8; PAGE_PAYLOAD]).unwrap();
        assert!(!pf.is_quarantined(p));
        assert_eq!(pf.read_page(p, &mut out).unwrap(), PageRead::Loaded);
        assert!(out.iter().all(|&b| b == 8));
        let snap = stats.snapshot();
        assert_eq!(snap.pages_quarantined, 1);
        assert_eq!(snap.pages_healed, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_read_corruption_is_repaired_by_reread() {
        let stats = Arc::new(StorageStats::default());
        let sim = SimVfs::new(7);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = std::path::Path::new("/sim/data.pg");
        let pf = PageFile::create(&vfs, path, stats.clone()).unwrap();
        let p = pf.allocate_page();
        pf.write_page(p, &vec![9u8; PAGE_PAYLOAD]).unwrap();
        pf.sync().unwrap();
        // Arm a one-shot bit flip on the next op — read_page's only
        // ticking operation is the read itself (len() is clock-free).
        let ops = sim.op_count();
        sim.set_plan(crate::vfs::FaultPlan {
            flip_read_ops: vec![ops],
            ..Default::default()
        });
        let mut out = vec![0u8; PAGE_PAYLOAD];
        assert_eq!(pf.read_page(p, &mut out).unwrap(), PageRead::Loaded);
        assert!(out.iter().all(|&b| b == 9));
        assert_eq!(stats.snapshot().read_repairs, 1);
    }
}
