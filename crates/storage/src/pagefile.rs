//! A file of fixed-size pages with physical-I/O accounting.

use std::path::Path;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::Result;
use crate::ids::PageId;
use crate::stats::StorageStats;
use crate::vfs::{OpenMode, Vfs, VfsFile};
use crate::PAGE_SIZE;

/// A page-granular file. All physical reads and writes flow through here
/// and are counted in the shared [`StorageStats`].
pub struct PageFile {
    file: Mutex<Box<dyn VfsFile>>,
    page_count: AtomicU32,
    stats: Arc<StorageStats>,
}

impl PageFile {
    /// Create a new, empty page file (truncating any existing file).
    pub fn create(vfs: &Arc<dyn Vfs>, path: &Path, stats: Arc<StorageStats>) -> Result<Self> {
        let file = vfs.open(path, OpenMode::Create)?;
        Ok(PageFile { file: Mutex::new(file), page_count: AtomicU32::new(0), stats })
    }

    /// Open an existing page file.
    pub fn open(vfs: &Arc<dyn Vfs>, path: &Path, stats: Arc<StorageStats>) -> Result<Self> {
        let mut file = vfs.open(path, OpenMode::Open)?;
        let len = file.len()?;
        let pages = (len / PAGE_SIZE as u64) as u32;
        Ok(PageFile { file: Mutex::new(file), page_count: AtomicU32::new(pages), stats })
    }

    /// Number of pages currently in the file (allocated pages may not yet
    /// have been physically written).
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    /// Reserve the next page id. The page is materialized on first write;
    /// reading an allocated-but-unwritten page yields zeroes.
    pub fn allocate_page(&self) -> PageId {
        PageId(self.page_count.fetch_add(1, Ordering::AcqRel))
    }

    /// Read page `pid` into `buf` (which must be `PAGE_SIZE` long).
    pub fn read_page(&self, pid: PageId, buf: &mut [u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut file = self.file.lock();
        let offset = pid.0 as u64 * PAGE_SIZE as u64;
        let file_len = file.len()?;
        if offset >= file_len {
            // Allocated but never written: logically all-zero.
            buf.fill(0);
        } else if offset + PAGE_SIZE as u64 > file_len {
            // A crash can leave the file ending mid-page (a set_len that
            // outran its page writes); the missing suffix is logically
            // zero, same as an unwritten page.
            let avail = (file_len - offset) as usize;
            file.read_at(offset, &mut buf[..avail])?;
            buf[avail..].fill(0);
        } else {
            file.read_at(offset, buf)?;
        }
        StorageStats::bump(&self.stats.page_reads, 1);
        Ok(())
    }

    /// Write `buf` to page `pid`, extending the file if needed.
    pub fn write_page(&self, pid: PageId, buf: &[u8]) -> Result<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        let mut file = self.file.lock();
        let offset = pid.0 as u64 * PAGE_SIZE as u64;
        let file_len = file.len()?;
        if offset > file_len {
            // Keep the file dense in whole pages so read_page's bounds
            // logic stays simple.
            file.set_len(offset)?;
        }
        file.write_at(offset, buf)?;
        StorageStats::bump(&self.stats.page_writes, 1);
        Ok(())
    }

    /// Flush file contents to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.lock().sync()?;
        Ok(())
    }

    /// Current physical size of the file in bytes.
    pub fn len_bytes(&self) -> Result<u64> {
        self.file.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{RealVfs, SimVfs};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lfs-pf-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("data.pg")
    }

    #[test]
    fn write_read_round_trip_counts_io() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("rt");
        let pf = PageFile::create(&vfs, &path, stats.clone()).unwrap();
        let p0 = pf.allocate_page();
        let p1 = pf.allocate_page();
        assert_eq!((p0.0, p1.0), (0, 1));

        let mut page = vec![0xABu8; PAGE_SIZE];
        page[0] = 1;
        pf.write_page(p1, &page).unwrap();

        let mut out = vec![0u8; PAGE_SIZE];
        pf.read_page(p1, &mut out).unwrap();
        assert_eq!(out, page);

        // p0 was allocated but never written: zeroes.
        pf.read_page(p0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        let snap = stats.snapshot();
        assert_eq!(snap.page_writes, 1);
        assert_eq!(snap.page_reads, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_preserves_pages() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("reopen");
        {
            let pf = PageFile::create(&vfs, &path, stats.clone()).unwrap();
            let p = pf.allocate_page();
            pf.write_page(p, &vec![7u8; PAGE_SIZE]).unwrap();
            pf.sync().unwrap();
        }
        let pf = PageFile::open(&vfs, &path, stats).unwrap();
        assert_eq!(pf.page_count(), 1);
        let mut out = vec![0u8; PAGE_SIZE];
        pf.read_page(PageId(0), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sparse_write_extends_file() {
        let stats = Arc::new(StorageStats::default());
        let vfs = RealVfs::arc();
        let path = tmp("sparse");
        let pf = PageFile::create(&vfs, &path, stats).unwrap();
        for _ in 0..5 {
            pf.allocate_page();
        }
        // Write page 4 first; pages 0..4 must still read as zero.
        pf.write_page(PageId(4), &vec![9u8; PAGE_SIZE]).unwrap();
        assert_eq!(pf.len_bytes().unwrap(), 5 * PAGE_SIZE as u64);
        let mut out = vec![1u8; PAGE_SIZE];
        pf.read_page(PageId(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn works_on_sim_vfs() {
        let stats = Arc::new(StorageStats::default());
        let sim = SimVfs::new(42);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = std::path::Path::new("/sim/data.pg");
        let pf = PageFile::create(&vfs, path, stats).unwrap();
        let p = pf.allocate_page();
        pf.write_page(p, &vec![3u8; PAGE_SIZE]).unwrap();
        let mut out = vec![0u8; PAGE_SIZE];
        pf.read_page(p, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 3));
        // Unsynced: the durable image is still empty.
        assert_eq!(sim.clone_durable().size(path).unwrap(), Some(0));
        pf.sync().unwrap();
        assert_eq!(sim.clone_durable().size(path).unwrap(), Some(PAGE_SIZE as u64));
    }
}
