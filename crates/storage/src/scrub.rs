//! Offline integrity scrub: read and verify every persistent artifact
//! of a store without opening an engine over it.
//!
//! The scrubber is the audit side of the corruption-detection story:
//! the page file verifies lazily (on read), the engine repairs at open,
//! and `scrub` walks the whole image eagerly — meta checksum, every
//! page header against the checkpoint's LSN floors, and the WAL's
//! position-bound frame checksums — and reports what it found. A clean
//! report means every byte that could be read back was proven to be the
//! byte that was written; quarantined pages are listed, not read (they
//! are known damage, fenced and typed, awaiting overwrite).

use std::path::Path;
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::ids::PageId;
use crate::meta::parse_meta_header;
use crate::pagefile::{PageFile, PageRead};
use crate::stats::StorageStats;
use crate::vfs::Vfs;
use crate::wal::Wal;
use crate::PAGE_PAYLOAD;

/// What a [`scrub_store`] pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Checkpoint epoch of the metadata the scrub ran against.
    pub epoch: u64,
    /// Total pages in the data file.
    pub pages: u32,
    /// Pages with a verified written image.
    pub ok: u32,
    /// Pages never written (no image expected, none found).
    pub fresh: u32,
    /// Pages fenced by the checkpoint's quarantine set (known damage,
    /// reads fail typed; skipped by the scrub).
    pub quarantined: u32,
    /// Damaged pages *outside* the quarantine set — each one is a page
    /// the engine would currently trust. A clean image has none.
    pub corrupt: Vec<u32>,
    /// Intact WAL frames verified against their offsets.
    pub wal_frames: u64,
}

impl ScrubReport {
    /// True when no unquarantined damage was found.
    pub fn clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Verify the store image at `dir`: the meta file's whole-file checksum,
/// every data page against its header and LSN floor, and every complete
/// WAL frame against its position-bound checksum.
///
/// Damage in the meta file or the WAL interior surfaces as a typed
/// error (there is nothing sensible to report *against* without a
/// trustworthy checkpoint); damaged data pages are collected into the
/// report instead, because the caller's next question is "which ones".
pub fn scrub_store(vfs: &Arc<dyn Vfs>, dir: &Path) -> Result<ScrubReport> {
    let meta_path = dir.join("store.meta");
    let data_path = dir.join("data.pg");
    let wal_path = dir.join("wal.log");

    let Some(meta_bytes) = vfs.read_all(&meta_path)? else {
        return Err(StorageError::BadPath(format!("no store at {}", dir.display())));
    };
    let (state, _heap_dump) = parse_meta_header(&meta_bytes)?;

    let mut report = ScrubReport { epoch: state.epoch, ..ScrubReport::default() };
    let stats = Arc::new(StorageStats::default());
    let file = PageFile::open(vfs, &data_path, stats)?;
    file.set_version_floors(state.versions);
    file.set_quarantined(&state.quarantined);
    report.pages = file.page_count();
    let mut buf = vec![0u8; PAGE_PAYLOAD];
    for raw in 0..report.pages {
        if file.is_quarantined(PageId(raw)) {
            report.quarantined += 1;
            continue;
        }
        match file.read_page(PageId(raw), &mut buf) {
            Ok(PageRead::Loaded) => report.ok += 1,
            Ok(PageRead::Fresh) => report.fresh += 1,
            Err(e) if e.is_corruption() => report.corrupt.push(raw),
            Err(e) => return Err(e),
        }
    }

    if vfs.exists(&wal_path) {
        report.wal_frames = Wal::replay(vfs, &wal_path)?.frames;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{OStore, Options};
    use crate::ids::{ClusterHint, SegmentId};
    use crate::traits::StorageManager;
    use crate::vfs::SimVfs;
    use std::path::PathBuf;

    fn built_store(seed: u64) -> (SimVfs, Arc<dyn Vfs>, PathBuf) {
        let sim = SimVfs::new(seed);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let dir = PathBuf::from("/sim/store");
        let store = OStore::create_with(vfs.clone(), &dir, Options::default()).unwrap();
        let t = store.begin().unwrap();
        for i in 0..300u32 {
            store
                .allocate(t, SegmentId(0), ClusterHint::NONE, &[(i % 251) as u8; 64])
                .unwrap();
        }
        store.commit(t).unwrap();
        store.checkpoint().unwrap();
        (sim, vfs, dir)
    }

    #[test]
    fn clean_store_scrubs_clean() {
        let (_sim, vfs, dir) = built_store(5);
        let report = scrub_store(&vfs, &dir).unwrap();
        assert!(report.clean());
        assert!(report.ok > 0, "written pages must verify");
        assert_eq!(report.quarantined, 0);
        assert!(report.epoch >= 1);
    }

    #[test]
    fn flipped_page_bit_is_localized() {
        let (sim, vfs, dir) = built_store(6);
        sim.flip_durable_bit(&dir.join("data.pg")).unwrap();
        let report = scrub_store(&vfs, &dir).unwrap();
        assert_eq!(report.corrupt.len(), 1, "one flipped bit damages exactly one page");
        assert!(!report.clean());
    }

    #[test]
    fn damaged_meta_is_a_typed_error() {
        let (sim, vfs, dir) = built_store(7);
        sim.flip_durable_bit(&dir.join("store.meta")).unwrap();
        let err = scrub_store(&vfs, &dir).unwrap_err();
        assert!(err.is_corruption(), "want typed corruption, got {err}");
    }

    #[test]
    fn missing_store_is_bad_path() {
        let sim = SimVfs::new(8);
        let vfs: Arc<dyn Vfs> = Arc::new(sim);
        assert!(matches!(
            scrub_store(&vfs, Path::new("/sim/nope")),
            Err(StorageError::BadPath(_))
        ));
    }
}
