//! Error type shared by every storage backend.

use std::fmt;
use std::io;

use crate::ids::{Oid, TxnId};

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Crash recovery found something it cannot explain as a torn tail.
///
/// A torn WAL *tail* is the expected signature of power loss mid-append
/// and is silently truncated; this error is reserved for damage replay
/// must not paper over — a bad checksum on an interior frame, an
/// undecodable record body, or a log whose epoch is newer than the
/// checkpoint that supposedly produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryError {
    /// Byte offset of the offending frame in the log.
    pub offset: u64,
    /// Zero-based index of the offending frame.
    pub frame: u64,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WAL frame {} at byte {}: {}", self.frame, self.offset, self.detail)
    }
}

/// Errors produced by storage managers.
#[derive(Debug)]
pub enum StorageError {
    /// An I/O error from the backing files.
    Io(io::Error),
    /// The object id is not present in the store.
    UnknownObject(Oid),
    /// The transaction id is not active.
    UnknownTxn(TxnId),
    /// The backend does not support the requested operation
    /// (e.g. `abort` on the Texas store, which has no undo log).
    Unsupported(&'static str),
    /// A second transaction was started on a single-user backend.
    SingleUser,
    /// A lock could not be acquired within the deadlock-avoidance timeout.
    LockTimeout(Oid),
    /// An object larger than the store can represent was allocated.
    ObjectTooLarge(usize),
    /// The on-disk metadata or log is corrupt.
    Corrupt(String),
    /// The store directory already exists (on `create`) or is missing
    /// (on `open`).
    BadPath(String),
    /// The requested segment id is outside the configured segment count.
    UnknownSegment(u8),
    /// Crash recovery hit interior log corruption (not a torn tail).
    Recovery(RecoveryError),
    /// A failed rollback left in-memory state unreliable; checkpoints
    /// are refused until the store is reopened (which re-runs recovery
    /// from the last durable state).
    Wounded(&'static str),
    /// A page failed checksum/header verification (bit rot, a lost
    /// write, truncation damage, or a quarantined page).
    PageChecksum {
        /// The page that failed verification.
        page: u32,
        /// What was wrong with it.
        detail: String,
    },
    /// A page carried a valid header and checksum — for a *different*
    /// page id: the signature of a misdirected write that landed at the
    /// wrong offset.
    MisdirectedPage {
        /// The page that was asked for.
        expected: u32,
        /// The page id the on-disk header claims.
        found: u32,
    },
    /// A WAL streaming read asked for an offset past the flushed tail:
    /// the log was truncated (by a checkpoint) since the reader's last
    /// chunk, so the stream cannot resume — the follower must re-seed
    /// from a fresh base copy of the store.
    WalRewound {
        /// The offset the stream reader asked to resume from.
        requested: u64,
        /// The current flushed tail of the (restarted) log.
        tail: u64,
    },
    /// A shipped replication chunk was refused because it carries an
    /// epoch older than the follower's fence — the signature of a
    /// deposed ("zombie") primary still shipping after a promotion.
    EpochFenced {
        /// The epoch the chunk claims.
        got: u64,
        /// The minimum epoch the receiver accepts.
        fence: u64,
    },
    /// The log-writer's force failed for the batch covering this
    /// commit. The underlying error is shared (`Arc`) by every
    /// committer the batch covered — one bounded-retry force produced
    /// it, not one retry storm per waiter.
    ForceFailed(std::sync::Arc<StorageError>),
    /// The dedicated log-writer thread is down (orderly shutdown or
    /// panic), so the enqueued commit can never be forced.
    WalWriterDown(&'static str),
}

impl StorageError {
    /// True for errors that mean "the bytes on disk are damaged" (as
    /// opposed to transient I/O, contention, or caller mistakes).
    /// The corruption harness uses this to distinguish *detected*
    /// damage from silent acceptance.
    pub fn is_corruption(&self) -> bool {
        match self {
            StorageError::Corrupt(_)
            | StorageError::Recovery(_)
            | StorageError::PageChecksum { .. }
            | StorageError::MisdirectedPage { .. } => true,
            // A failed force is as corrupt as whatever made it fail.
            StorageError::ForceFailed(inner) => inner.is_corruption(),
            _ => false,
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::UnknownObject(oid) => write!(f, "unknown object {oid}"),
            StorageError::UnknownTxn(t) => write!(f, "unknown or inactive transaction {t}"),
            StorageError::Unsupported(what) => write!(f, "operation not supported: {what}"),
            StorageError::SingleUser => {
                write!(f, "backend is single-user and a transaction is already active")
            }
            StorageError::LockTimeout(oid) => write!(f, "lock timeout on object {oid}"),
            StorageError::ObjectTooLarge(n) => write!(f, "object of {n} bytes is too large"),
            StorageError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StorageError::BadPath(msg) => write!(f, "bad store path: {msg}"),
            StorageError::UnknownSegment(s) => write!(f, "unknown segment {s}"),
            StorageError::Recovery(e) => write!(f, "unrecoverable log corruption: {e}"),
            StorageError::Wounded(what) => {
                write!(f, "store is wounded ({what}); reopen to recover")
            }
            StorageError::PageChecksum { page, detail } => {
                write!(f, "page {page} failed verification: {detail}")
            }
            StorageError::MisdirectedPage { expected, found } => {
                write!(f, "misdirected write: page {expected} holds a valid image of page {found}")
            }
            StorageError::WalRewound { requested, tail } => {
                write!(
                    f,
                    "wal stream rewound: offset {requested} requested but the log was \
                     truncated to {tail} bytes (follower must re-seed)"
                )
            }
            StorageError::EpochFenced { got, fence } => {
                write!(
                    f,
                    "replication chunk fenced: epoch {got} is older than the fence epoch \
                     {fence} (deposed primary)"
                )
            }
            StorageError::ForceFailed(inner) => {
                write!(f, "log force failed for this commit's batch: {inner}")
            }
            StorageError::WalWriterDown(why) => {
                write!(f, "log-writer thread is down ({why}); commit cannot be forced")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::ForceFailed(inner) => Some(inner.as_ref()),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<StorageError> = vec![
            StorageError::Io(io::Error::other("boom")),
            StorageError::UnknownObject(Oid::from_raw(7)),
            StorageError::UnknownTxn(TxnId::from_raw(3)),
            StorageError::Unsupported("abort"),
            StorageError::SingleUser,
            StorageError::LockTimeout(Oid::from_raw(1)),
            StorageError::ObjectTooLarge(1 << 30),
            StorageError::Corrupt("bad magic".into()),
            StorageError::BadPath("/nope".into()),
            StorageError::UnknownSegment(9),
            StorageError::Recovery(RecoveryError {
                offset: 4096,
                frame: 3,
                detail: "checksum mismatch".into(),
            }),
            StorageError::Wounded("abort undo failed"),
            StorageError::PageChecksum { page: 12, detail: "crc mismatch".into() },
            StorageError::MisdirectedPage { expected: 4, found: 9 },
            StorageError::WalRewound { requested: 512, tail: 17 },
            StorageError::EpochFenced { got: 3, fence: 5 },
            StorageError::ForceFailed(std::sync::Arc::new(StorageError::Io(io::Error::other(
                "disk gone",
            )))),
            StorageError::WalWriterDown("log shut down"),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn corruption_classifier_matches_damage_variants() {
        assert!(StorageError::Corrupt("x".into()).is_corruption());
        assert!(StorageError::PageChecksum { page: 1, detail: "x".into() }.is_corruption());
        assert!(StorageError::MisdirectedPage { expected: 1, found: 2 }.is_corruption());
        assert!(StorageError::Recovery(RecoveryError {
            offset: 0,
            frame: 0,
            detail: "x".into(),
        })
        .is_corruption());
        assert!(!StorageError::Io(io::Error::other("boom")).is_corruption());
        assert!(!StorageError::SingleUser.is_corruption());
        // ForceFailed classifies by its cause, not by itself.
        let io_force =
            StorageError::ForceFailed(std::sync::Arc::new(io::Error::other("boom").into()));
        assert!(!io_force.is_corruption());
        let corrupt_force =
            StorageError::ForceFailed(std::sync::Arc::new(StorageError::Corrupt("rot".into())));
        assert!(corrupt_force.is_corruption());
        assert!(!StorageError::WalWriterDown("down").is_corruption());
    }

    #[test]
    fn io_source_is_preserved() {
        let e = StorageError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(matches!(e, StorageError::Io(_)));
    }
}
