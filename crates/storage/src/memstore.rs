//! The `-mm` server versions: storage management compiled out.
//!
//! The paper's `OStore-mm` and `Texas-mm` run the same LabBase code with
//! everything in main memory and nothing persistent, isolating pure CPU
//! cost. [`MemStore`] provides both under the common trait; the only
//! behavioural differences preserved are the names and the Texas flavor's
//! single-user restriction and missing abort, so the workload driver can
//! treat all five versions identically.
//!
//! Like the page-based engine, objects are kept as newest-first version
//! chains: writes stay pending (visible only to their transaction) until
//! commit stamps them with one LSN, snapshots read a stable cut, and the
//! chain is trimmed against the open-snapshot low-water mark. One mutex
//! guards everything, which makes the commit flip trivially atomic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, SegmentId, TxnId};
use crate::lock::{LockManager, LockMode};
use crate::stats::{StatsSnapshot, StorageStats};
use crate::traits::{SegmentInfo, Snapshot, StorageManager};

/// Soft bound on committed versions kept per chain (matching the heap).
const MAX_CHAIN: usize = 8;

/// Deadlock-avoidance timeout for explicit object locks (matches the
/// page engine's default).
const LOCK_TIMEOUT: Duration = Duration::from_millis(500);

/// One version of an object: `data` of `None` is a tombstone, `txn != 0`
/// marks a pending (uncommitted) version — always at the chain head.
struct MemVersion {
    data: Option<Vec<u8>>,
    lsn: u64,
    txn: u64,
}

struct Inner {
    /// Object table: oid → newest-first version chain.
    chains: HashMap<u64, Vec<MemVersion>>,
    /// Active transactions: txn → oids it wrote (commit flips, abort discards).
    active: HashMap<u64, Vec<u64>>,
    next_oid: u64,
    /// Newest fully published commit LSN; snapshots read at this point.
    last_visible: u64,
    /// Open snapshots: token → pinned LSN (the GC low-water mark).
    snapshots: HashMap<u64, u64>,
    next_snap: u64,
}

impl Inner {
    fn committed_at(chain: &[MemVersion], lsn: u64) -> Option<&MemVersion> {
        chain.iter().find(|v| v.txn == 0 && v.lsn <= lsn)
    }

    fn seen_by(chain: &[MemVersion], txn: u64) -> Option<&MemVersion> {
        chain.iter().find(|v| v.txn == txn || v.txn == 0)
    }

    fn snapshot_floor(&self) -> u64 {
        self.snapshots.values().copied().min().unwrap_or(u64::MAX)
    }

    /// Drop every version older than the newest committed one at or
    /// below `floor`; returns how many were trimmed. A chain reduced to
    /// a single committed tombstone is equivalent to no chain at all.
    fn trim(chain: &mut Vec<MemVersion>, floor: u64) -> u64 {
        let Some(keep) = chain.iter().position(|v| v.txn == 0 && v.lsn <= floor) else {
            return 0;
        };
        let trimmed = (chain.len() - keep - 1) as u64;
        chain.truncate(keep + 1);
        if chain.len() == 1 && chain.first().is_some_and(|v| v.txn == 0 && v.data.is_none()) {
            chain.clear();
            return trimmed + 1;
        }
        trimmed
    }
}

/// A main-memory storage manager.
pub struct MemStore {
    name: &'static str,
    single_user: bool,
    can_abort: bool,
    inner: Mutex<Inner>,
    next_txn: AtomicU64,
    /// Explicit object locks (`lock_exclusive`), held to commit/abort.
    /// Versioning alone cannot serialize read-modify-write cycles on
    /// shared objects like the LabBase catalog: a transaction that read
    /// the head, lost the race, and committed anyway would chain onto an
    /// aborted sibling. The `-mm` stores honour the same lock-first
    /// discipline as the page engine.
    locks: LockManager,
    stats: StorageStats,
}

impl MemStore {
    /// The `OStore-mm` version: multi-user, abortable, in memory.
    pub fn ostore_mm() -> Self {
        MemStore {
            name: "OStore-mm",
            single_user: false,
            can_abort: true,
            inner: Mutex::new(Inner {
                chains: HashMap::new(),
                active: HashMap::new(),
                next_oid: 1,
                last_visible: 0,
                snapshots: HashMap::new(),
                next_snap: 1,
            }),
            next_txn: AtomicU64::new(1),
            locks: LockManager::new(LOCK_TIMEOUT),
            stats: StorageStats::default(),
        }
    }

    /// The `Texas-mm` version: single-user, no abort, in memory.
    pub fn texas_mm() -> Self {
        MemStore {
            name: "Texas-mm",
            single_user: true,
            can_abort: false,
            ..MemStore::ostore_mm()
        }
    }

    /// Total payload bytes held by latest-committed versions (the `-mm`
    /// analogue of database size; reported separately because the paper
    /// prints "—" in the size row).
    pub fn resident_bytes(&self) -> u64 {
        let inner = self.inner.lock();
        inner
            .chains
            .values()
            .filter_map(|c| Inner::committed_at(c, u64::MAX))
            .filter_map(|v| v.data.as_ref())
            .map(|d| d.len() as u64)
            .sum()
    }
}

impl StorageManager for MemStore {
    fn name(&self) -> &'static str {
        self.name
    }

    fn begin(&self) -> Result<TxnId> {
        let mut inner = self.inner.lock();
        if self.single_user && !inner.active.is_empty() {
            return Err(StorageError::SingleUser);
        }
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        inner.active.insert(id, Vec::new());
        Ok(TxnId::from_raw(id))
    }

    fn commit(&self, txn: TxnId) -> Result<()> {
        let mut inner = self.inner.lock();
        let touched =
            inner.active.remove(&txn.raw()).ok_or(StorageError::UnknownTxn(txn))?;
        if !touched.is_empty() {
            // The one mutex makes the flip atomic: no reader can observe
            // some of this transaction's versions committed and others
            // pending.
            let lsn = inner.last_visible + 1;
            let floor = inner.snapshot_floor();
            let mut trimmed = 0;
            for oid in touched {
                let Some(chain) = inner.chains.get_mut(&oid) else { continue };
                if let Some(head) = chain.first_mut() {
                    if head.txn == txn.raw() {
                        head.txn = 0;
                        head.lsn = lsn;
                    }
                }
                if chain.len() > MAX_CHAIN {
                    trimmed += Inner::trim(chain, floor);
                }
                if chain.is_empty() {
                    inner.chains.remove(&oid);
                }
            }
            inner.last_visible = lsn;
            StorageStats::bump(&self.stats.versions_gced, trimmed);
        }
        // Strict two-phase: locks release only after the flip is visible,
        // so a woken waiter reads this transaction's committed state.
        drop(inner);
        self.locks.release_all(txn);
        StorageStats::bump(&self.stats.commits, 1);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> Result<()> {
        if !self.can_abort {
            return Err(StorageError::Unsupported("abort: Texas-mm has no undo capability"));
        }
        let mut inner = self.inner.lock();
        let touched =
            inner.active.remove(&txn.raw()).ok_or(StorageError::UnknownTxn(txn))?;
        // Pending versions were never visible to anyone else; dropping
        // them is the whole rollback.
        for oid in touched.into_iter().rev() {
            let Some(chain) = inner.chains.get_mut(&oid) else { continue };
            if chain.first().is_some_and(|v| v.txn == txn.raw()) {
                chain.remove(0);
            }
            if chain.is_empty() {
                inner.chains.remove(&oid);
            }
        }
        drop(inner);
        self.locks.release_all(txn);
        StorageStats::bump(&self.stats.aborts, 1);
        Ok(())
    }

    fn lock_exclusive(&self, txn: TxnId, oid: Oid) -> Result<()> {
        if !self.inner.lock().active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        self.locks.acquire(txn, oid, LockMode::Exclusive)
    }

    fn allocate(
        &self,
        txn: TxnId,
        _seg: SegmentId,
        _hint: ClusterHint,
        data: &[u8],
    ) -> Result<Oid> {
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        let oid = Oid::from_raw(inner.next_oid);
        inner.next_oid += 1;
        inner
            .chains
            .insert(oid.raw(), vec![MemVersion { data: Some(data.to_vec()), lsn: 0, txn: txn.raw() }]);
        if let Some(touched) = inner.active.get_mut(&txn.raw()) {
            touched.push(oid.raw());
        }
        StorageStats::bump(&self.stats.allocs, 1);
        StorageStats::bump(&self.stats.bytes_allocated, data.len() as u64);
        Ok(oid)
    }

    fn read(&self, oid: Oid) -> Result<Vec<u8>> {
        StorageStats::bump(&self.stats.reads, 1);
        let inner = self.inner.lock();
        inner
            .chains
            .get(&oid.raw())
            .and_then(|c| Inner::committed_at(c, u64::MAX))
            .and_then(|v| v.data.clone())
            .ok_or(StorageError::UnknownObject(oid))
    }

    fn read_in(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        if !self.inner.lock().active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        self.read_for(txn, oid)
    }

    fn update(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        let chain = inner
            .chains
            .get_mut(&oid.raw())
            .filter(|c| Inner::seen_by(c, txn.raw()).is_some_and(|v| v.data.is_some()))
            .ok_or(StorageError::UnknownObject(oid))?;
        match chain.first_mut() {
            Some(head) if head.txn == txn.raw() => head.data = Some(data.to_vec()),
            _ => chain.insert(0, MemVersion { data: Some(data.to_vec()), lsn: 0, txn: txn.raw() }),
        }
        if let Some(touched) = inner.active.get_mut(&txn.raw()) {
            touched.push(oid.raw());
        }
        StorageStats::bump(&self.stats.updates, 1);
        Ok(())
    }

    fn free(&self, txn: TxnId, oid: Oid) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        let chain = inner
            .chains
            .get_mut(&oid.raw())
            .filter(|c| Inner::seen_by(c, txn.raw()).is_some_and(|v| v.data.is_some()))
            .ok_or(StorageError::UnknownObject(oid))?;
        match chain.first_mut() {
            Some(head) if head.txn == txn.raw() => head.data = None,
            _ => chain.insert(0, MemVersion { data: None, lsn: 0, txn: txn.raw() }),
        }
        // A freshly allocated-and-freed chain is a lone pending
        // tombstone; commit or abort resolves it either way.
        if let Some(touched) = inner.active.get_mut(&txn.raw()) {
            touched.push(oid.raw());
        }
        Ok(())
    }

    fn exists(&self, oid: Oid) -> bool {
        let inner = self.inner.lock();
        inner
            .chains
            .get(&oid.raw())
            .and_then(|c| Inner::committed_at(c, u64::MAX))
            .is_some_and(|v| v.data.is_some())
    }

    fn begin_snapshot(&self) -> Result<Snapshot> {
        let mut inner = self.inner.lock();
        let lsn = inner.last_visible;
        let token = inner.next_snap;
        inner.next_snap += 1;
        inner.snapshots.insert(token, lsn);
        StorageStats::bump(&self.stats.snapshots_opened, 1);
        Ok(Snapshot { lsn, token })
    }

    fn release_snapshot(&self, snap: Snapshot) {
        self.inner.lock().snapshots.remove(&snap.token);
    }

    fn open_snapshots(&self) -> usize {
        self.inner.lock().snapshots.len()
    }

    fn read_at(&self, snap: &Snapshot, oid: Oid) -> Result<Vec<u8>> {
        StorageStats::bump(&self.stats.snapshot_reads, 1);
        StorageStats::bump(&self.stats.reads, 1);
        let inner = self.inner.lock();
        inner
            .chains
            .get(&oid.raw())
            .and_then(|c| Inner::committed_at(c, snap.lsn))
            .and_then(|v| v.data.clone())
            .ok_or(StorageError::UnknownObject(oid))
    }

    fn exists_at(&self, snap: &Snapshot, oid: Oid) -> bool {
        let inner = self.inner.lock();
        inner
            .chains
            .get(&oid.raw())
            .and_then(|c| Inner::committed_at(c, snap.lsn))
            .is_some_and(|v| v.data.is_some())
    }

    fn read_for(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        StorageStats::bump(&self.stats.reads, 1);
        let inner = self.inner.lock();
        inner
            .chains
            .get(&oid.raw())
            .and_then(|c| Inner::seen_by(c, txn.raw()))
            .and_then(|v| v.data.clone())
            .ok_or(StorageError::UnknownObject(oid))
    }

    fn exists_for(&self, txn: TxnId, oid: Oid) -> bool {
        let inner = self.inner.lock();
        inner
            .chains
            .get(&oid.raw())
            .and_then(|c| Inner::seen_by(c, txn.raw()))
            .is_some_and(|v| v.data.is_some())
    }

    fn checkpoint(&self) -> Result<()> {
        // Nothing to persist, but version GC runs here like the engine's:
        // trim every chain against the open-snapshot low-water mark.
        let mut inner = self.inner.lock();
        let floor = inner.snapshot_floor();
        let mut trimmed = 0;
        inner.chains.retain(|_, chain| {
            trimmed += Inner::trim(chain, floor);
            !chain.is_empty()
        });
        StorageStats::bump(&self.stats.versions_gced, trimmed);
        StorageStats::bump(&self.stats.checkpoints, 1);
        Ok(())
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn db_size_bytes(&self) -> Result<Option<u64>> {
        Ok(None) // "—" in the paper's size row
    }

    fn object_count(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .chains
            .values()
            .filter_map(|c| Inner::committed_at(c, u64::MAX))
            .filter(|v| v.data.is_some())
            .count()
    }

    fn segments(&self) -> Vec<SegmentInfo> {
        Vec::new()
    }

    fn is_persistent(&self) -> bool {
        false
    }

    fn supports_concurrency(&self) -> bool {
        !self.single_user
    }

    fn drop_caches(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_capabilities() {
        let o = MemStore::ostore_mm();
        let t = MemStore::texas_mm();
        assert_eq!(o.name(), "OStore-mm");
        assert_eq!(t.name(), "Texas-mm");
        assert!(o.supports_concurrency());
        assert!(!t.supports_concurrency());
        assert!(!o.is_persistent());
        assert_eq!(o.db_size_bytes().unwrap(), None);
    }

    #[test]
    fn basic_cycle() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        let oid = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"data").unwrap();
        s.update(t, oid, b"data2").unwrap();
        s.commit(t).unwrap();
        assert_eq!(s.read(oid).unwrap(), b"data2");
        assert_eq!(s.object_count(), 1);
        assert!(s.resident_bytes() > 0);
        let t2 = s.begin().unwrap();
        s.free(t2, oid).unwrap();
        s.commit(t2).unwrap();
        assert!(!s.exists(oid));
    }

    #[test]
    fn writes_stay_pending_until_commit() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        let oid = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"pending").unwrap();
        assert!(!s.exists(oid), "pending alloc must not be committed-visible");
        assert!(s.exists_for(t, oid));
        assert_eq!(s.read_for(t, oid).unwrap(), b"pending");
        assert_eq!(s.read_in(t, oid).unwrap(), b"pending");
        s.commit(t).unwrap();
        assert_eq!(s.read(oid).unwrap(), b"pending");
    }

    #[test]
    fn abort_restores_state_on_ostore_mm() {
        let s = MemStore::ostore_mm();
        let t0 = s.begin().unwrap();
        let keep = s.allocate(t0, SegmentId(0), ClusterHint::NONE, b"keep").unwrap();
        s.commit(t0).unwrap();
        let t = s.begin().unwrap();
        let tmp = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"tmp").unwrap();
        s.update(t, keep, b"mutated").unwrap();
        s.free(t, keep).unwrap();
        s.abort(t).unwrap();
        assert!(!s.exists(tmp));
        assert_eq!(s.read(keep).unwrap(), b"keep");
    }

    #[test]
    fn snapshots_read_a_stable_cut() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        let a = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"a1").unwrap();
        let b = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"b1").unwrap();
        s.commit(t).unwrap();

        let snap = s.begin_snapshot().unwrap();
        let t2 = s.begin().unwrap();
        s.update(t2, a, b"a2").unwrap();
        s.free(t2, b).unwrap();
        let c = s.allocate(t2, SegmentId(0), ClusterHint::NONE, b"c1").unwrap();
        s.commit(t2).unwrap();

        // The snapshot still sees the pre-t2 world.
        assert_eq!(s.read_at(&snap, a).unwrap(), b"a1");
        assert_eq!(s.read_at(&snap, b).unwrap(), b"b1");
        assert!(!s.exists_at(&snap, c));
        // Latest-committed reads see t2 in full.
        assert_eq!(s.read(a).unwrap(), b"a2");
        assert!(!s.exists(b));
        assert_eq!(s.read(c).unwrap(), b"c1");

        // Checkpoint GC honours the pin, then reclaims after release.
        s.checkpoint().unwrap();
        assert_eq!(s.read_at(&snap, b).unwrap(), b"b1");
        s.release_snapshot(snap);
        s.checkpoint().unwrap();
        assert!(!s.exists(b));
        assert!(s.stats().versions_gced > 0);
    }

    #[test]
    fn texas_mm_single_user_and_no_abort() {
        let s = MemStore::texas_mm();
        let t = s.begin().unwrap();
        assert!(matches!(s.begin(), Err(StorageError::SingleUser)));
        assert!(matches!(s.abort(t), Err(StorageError::Unsupported(_))));
        s.commit(t).unwrap();
    }

    #[test]
    fn dead_txn_is_rejected() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        s.commit(t).unwrap();
        assert!(matches!(
            s.allocate(t, SegmentId(0), ClusterHint::NONE, b"x"),
            Err(StorageError::UnknownTxn(_))
        ));
        assert!(matches!(s.commit(t), Err(StorageError::UnknownTxn(_))));
    }

    #[test]
    fn lock_exclusive_serializes_and_releases_on_resolution() {
        let s = MemStore::ostore_mm();
        let t0 = s.begin().unwrap();
        let oid = s.allocate(t0, SegmentId(0), ClusterHint::NONE, b"hot").unwrap();
        s.commit(t0).unwrap();

        let holder = s.begin().unwrap();
        s.lock_exclusive(holder, oid).unwrap();
        s.lock_exclusive(holder, oid).unwrap(); // re-entrant
        let rival = s.begin().unwrap();
        assert!(matches!(
            s.lock_exclusive(rival, oid),
            Err(StorageError::LockTimeout(o)) if o == oid
        ));
        // Commit releases; the rival can now take the lock, and abort
        // releases too.
        s.commit(holder).unwrap();
        s.lock_exclusive(rival, oid).unwrap();
        s.abort(rival).unwrap();
        let t = s.begin().unwrap();
        s.lock_exclusive(t, oid).unwrap();
        s.commit(t).unwrap();

        // Dead transactions cannot lock.
        assert!(matches!(s.lock_exclusive(t, oid), Err(StorageError::UnknownTxn(_))));
    }

    /// Regression for the race `lock_exclusive` exists to prevent on the
    /// `-mm` stores: without a real lock, two read-modify-write
    /// transactions on a shared object can both read the same base
    /// version, and the one that chains onto an aborted sibling commits
    /// a lost (or dangling) update. With the lock-first discipline every
    /// increment must survive, aborts included.
    #[test]
    fn locked_read_modify_write_is_serialized_across_threads() {
        use std::sync::Arc;
        let s = Arc::new(MemStore::ostore_mm());
        let t0 = s.begin().unwrap();
        let oid = s.allocate(t0, SegmentId(0), ClusterHint::NONE, &0u64.to_le_bytes()).unwrap();
        s.commit(t0).unwrap();

        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        loop {
                            let t = s.begin().unwrap();
                            if s.lock_exclusive(t, oid).is_err() {
                                s.abort(t).unwrap();
                                continue;
                            }
                            let v = u64::from_le_bytes(
                                s.read_in(t, oid).unwrap().try_into().unwrap(),
                            );
                            s.update(t, oid, &(v + 1).to_le_bytes()).unwrap();
                            // A third of the attempts abort after writing;
                            // their increment must vanish cleanly.
                            if i % 3 == 0 {
                                s.abort(t).unwrap();
                                let t2 = s.begin().unwrap();
                                s.lock_exclusive(t2, oid).unwrap();
                                let w = u64::from_le_bytes(
                                    s.read_in(t2, oid).unwrap().try_into().unwrap(),
                                );
                                s.update(t2, oid, &(w + 1).to_le_bytes()).unwrap();
                                s.commit(t2).unwrap();
                            } else {
                                s.commit(t).unwrap();
                            }
                            break;
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        let v = u64::from_le_bytes(s.read(oid).unwrap().try_into().unwrap());
        assert_eq!(v, 4 * 50, "every committed increment must survive");
    }

    #[test]
    fn stats_never_report_faults() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        for i in 0..100u32 {
            let oid = s.allocate(t, SegmentId(0), ClusterHint::NONE, &i.to_le_bytes()).unwrap();
            s.read_for(t, oid).unwrap();
        }
        s.commit(t).unwrap();
        let snap = s.stats();
        assert_eq!(snap.faults, 0);
        assert_eq!(snap.allocs, 100);
        assert_eq!(snap.reads, 100);
    }
}
