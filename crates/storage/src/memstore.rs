//! The `-mm` server versions: storage management compiled out.
//!
//! The paper's `OStore-mm` and `Texas-mm` run the same LabBase code with
//! everything in main memory and nothing persistent, isolating pure CPU
//! cost. [`MemStore`] provides both under the common trait; the only
//! behavioural differences preserved are the names and the Texas flavor's
//! single-user restriction and missing abort, so the workload driver can
//! treat all five versions identically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, SegmentId, TxnId};
use crate::stats::{StatsSnapshot, StorageStats};
use crate::traits::{SegmentInfo, StorageManager};

enum Undo {
    UnAlloc(Oid),
    Restore(Oid, Vec<u8>),
    Realloc(Oid, Vec<u8>),
}

struct Inner {
    objects: HashMap<u64, Vec<u8>>,
    active: HashMap<u64, Vec<Undo>>,
    next_oid: u64,
}

/// A main-memory storage manager.
pub struct MemStore {
    name: &'static str,
    single_user: bool,
    can_abort: bool,
    inner: Mutex<Inner>,
    next_txn: AtomicU64,
    stats: StorageStats,
}

impl MemStore {
    /// The `OStore-mm` version: multi-user, abortable, in memory.
    pub fn ostore_mm() -> Self {
        MemStore {
            name: "OStore-mm",
            single_user: false,
            can_abort: true,
            inner: Mutex::new(Inner {
                objects: HashMap::new(),
                active: HashMap::new(),
                next_oid: 1,
            }),
            next_txn: AtomicU64::new(1),
            stats: StorageStats::default(),
        }
    }

    /// The `Texas-mm` version: single-user, no abort, in memory.
    pub fn texas_mm() -> Self {
        MemStore {
            name: "Texas-mm",
            single_user: true,
            can_abort: false,
            ..MemStore::ostore_mm()
        }
    }

    /// Total payload bytes held (the `-mm` analogue of database size;
    /// reported separately because the paper prints "—" in the size row).
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().objects.values().map(|v| v.len() as u64).sum()
    }
}

impl StorageManager for MemStore {
    fn name(&self) -> &'static str {
        self.name
    }

    fn begin(&self) -> Result<TxnId> {
        let mut inner = self.inner.lock();
        if self.single_user && !inner.active.is_empty() {
            return Err(StorageError::SingleUser);
        }
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        inner.active.insert(id, Vec::new());
        Ok(TxnId::from_raw(id))
    }

    fn commit(&self, txn: TxnId) -> Result<()> {
        self.inner
            .lock()
            .active
            .remove(&txn.raw())
            .ok_or(StorageError::UnknownTxn(txn))?;
        StorageStats::bump(&self.stats.commits, 1);
        Ok(())
    }

    fn abort(&self, txn: TxnId) -> Result<()> {
        if !self.can_abort {
            return Err(StorageError::Unsupported("abort: Texas-mm has no undo capability"));
        }
        let mut inner = self.inner.lock();
        let undo = inner.active.remove(&txn.raw()).ok_or(StorageError::UnknownTxn(txn))?;
        for u in undo.into_iter().rev() {
            match u {
                Undo::UnAlloc(oid) => {
                    inner.objects.remove(&oid.raw());
                }
                Undo::Restore(oid, data) | Undo::Realloc(oid, data) => {
                    inner.objects.insert(oid.raw(), data);
                }
            }
        }
        StorageStats::bump(&self.stats.aborts, 1);
        Ok(())
    }

    fn allocate(
        &self,
        txn: TxnId,
        _seg: SegmentId,
        _hint: ClusterHint,
        data: &[u8],
    ) -> Result<Oid> {
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        let oid = Oid::from_raw(inner.next_oid);
        inner.next_oid += 1;
        inner.objects.insert(oid.raw(), data.to_vec());
        if let Some(undo) = inner.active.get_mut(&txn.raw()) {
            undo.push(Undo::UnAlloc(oid));
        }
        StorageStats::bump(&self.stats.allocs, 1);
        StorageStats::bump(&self.stats.bytes_allocated, data.len() as u64);
        Ok(oid)
    }

    fn read(&self, oid: Oid) -> Result<Vec<u8>> {
        StorageStats::bump(&self.stats.reads, 1);
        self.inner
            .lock()
            .objects
            .get(&oid.raw())
            .cloned()
            .ok_or(StorageError::UnknownObject(oid))
    }

    fn read_in(&self, txn: TxnId, oid: Oid) -> Result<Vec<u8>> {
        if !self.inner.lock().active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        self.read(oid)
    }

    fn update(&self, txn: TxnId, oid: Oid, data: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        let slot = inner
            .objects
            .get_mut(&oid.raw())
            .ok_or(StorageError::UnknownObject(oid))?;
        let old = std::mem::replace(slot, data.to_vec());
        if self.can_abort {
            if let Some(undo) = inner.active.get_mut(&txn.raw()) {
                undo.push(Undo::Restore(oid, old));
            }
        }
        StorageStats::bump(&self.stats.updates, 1);
        Ok(())
    }

    fn free(&self, txn: TxnId, oid: Oid) -> Result<()> {
        let mut inner = self.inner.lock();
        if !inner.active.contains_key(&txn.raw()) {
            return Err(StorageError::UnknownTxn(txn));
        }
        let old = inner.objects.remove(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
        if self.can_abort {
            if let Some(undo) = inner.active.get_mut(&txn.raw()) {
                undo.push(Undo::Realloc(oid, old));
            }
        }
        Ok(())
    }

    fn exists(&self, oid: Oid) -> bool {
        self.inner.lock().objects.contains_key(&oid.raw())
    }

    fn checkpoint(&self) -> Result<()> {
        // Nothing to persist; counted so interval accounting stays uniform.
        StorageStats::bump(&self.stats.checkpoints, 1);
        Ok(())
    }

    fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn db_size_bytes(&self) -> Result<Option<u64>> {
        Ok(None) // "—" in the paper's size row
    }

    fn object_count(&self) -> usize {
        self.inner.lock().objects.len()
    }

    fn segments(&self) -> Vec<SegmentInfo> {
        Vec::new()
    }

    fn is_persistent(&self) -> bool {
        false
    }

    fn supports_concurrency(&self) -> bool {
        !self.single_user
    }

    fn drop_caches(&self) -> Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_capabilities() {
        let o = MemStore::ostore_mm();
        let t = MemStore::texas_mm();
        assert_eq!(o.name(), "OStore-mm");
        assert_eq!(t.name(), "Texas-mm");
        assert!(o.supports_concurrency());
        assert!(!t.supports_concurrency());
        assert!(!o.is_persistent());
        assert_eq!(o.db_size_bytes().unwrap(), None);
    }

    #[test]
    fn basic_cycle() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        let oid = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"data").unwrap();
        s.update(t, oid, b"data2").unwrap();
        s.commit(t).unwrap();
        assert_eq!(s.read(oid).unwrap(), b"data2");
        assert_eq!(s.object_count(), 1);
        assert!(s.resident_bytes() > 0);
        let t2 = s.begin().unwrap();
        s.free(t2, oid).unwrap();
        s.commit(t2).unwrap();
        assert!(!s.exists(oid));
    }

    #[test]
    fn abort_restores_state_on_ostore_mm() {
        let s = MemStore::ostore_mm();
        let t0 = s.begin().unwrap();
        let keep = s.allocate(t0, SegmentId(0), ClusterHint::NONE, b"keep").unwrap();
        s.commit(t0).unwrap();
        let t = s.begin().unwrap();
        let tmp = s.allocate(t, SegmentId(0), ClusterHint::NONE, b"tmp").unwrap();
        s.update(t, keep, b"mutated").unwrap();
        s.free(t, keep).unwrap();
        s.abort(t).unwrap();
        assert!(!s.exists(tmp));
        assert_eq!(s.read(keep).unwrap(), b"keep");
    }

    #[test]
    fn texas_mm_single_user_and_no_abort() {
        let s = MemStore::texas_mm();
        let t = s.begin().unwrap();
        assert!(matches!(s.begin(), Err(StorageError::SingleUser)));
        assert!(matches!(s.abort(t), Err(StorageError::Unsupported(_))));
        s.commit(t).unwrap();
    }

    #[test]
    fn dead_txn_is_rejected() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        s.commit(t).unwrap();
        assert!(matches!(
            s.allocate(t, SegmentId(0), ClusterHint::NONE, b"x"),
            Err(StorageError::UnknownTxn(_))
        ));
        assert!(matches!(s.commit(t), Err(StorageError::UnknownTxn(_))));
    }

    #[test]
    fn stats_never_report_faults() {
        let s = MemStore::ostore_mm();
        let t = s.begin().unwrap();
        for i in 0..100u32 {
            let oid = s.allocate(t, SegmentId(0), ClusterHint::NONE, &i.to_le_bytes()).unwrap();
            s.read(oid).unwrap();
        }
        s.commit(t).unwrap();
        let snap = s.stats();
        assert_eq!(snap.faults, 0);
        assert_eq!(snap.allocs, 100);
        assert_eq!(snap.reads, 100);
    }
}
