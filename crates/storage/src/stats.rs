//! Uniform operation counters reported by every backend.
//!
//! The benchmark's "(sim-)majflt" column is [`StorageStats::faults`]: the
//! number of object references that missed the buffer pool and had to
//! touch the backing file — the same event the paper observed as an OS
//! major page fault on memory-mapped stores.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, thread-safe counters. Cheap to bump from hot paths.
#[derive(Debug, Default)]
pub struct StorageStats {
    /// Buffer-pool misses that performed a read from the data file.
    pub faults: AtomicU64,
    /// Buffer-pool hits.
    pub hits: AtomicU64,
    /// Physical page reads from the data file.
    pub page_reads: AtomicU64,
    /// Physical page writes to the data file.
    pub page_writes: AtomicU64,
    /// Pages "swizzled": first-touch conversions charged by Texas-style
    /// backends when a non-resident page enters the resident set.
    pub swizzles: AtomicU64,
    /// Objects allocated.
    pub allocs: AtomicU64,
    /// Logical bytes allocated (payload only, before per-object overhead).
    pub bytes_allocated: AtomicU64,
    /// Object reads served.
    pub reads: AtomicU64,
    /// Object updates performed.
    pub updates: AtomicU64,
    /// Transactions committed.
    pub commits: AtomicU64,
    /// Transactions aborted.
    pub aborts: AtomicU64,
    /// Bytes appended to the write-ahead log.
    pub wal_bytes: AtomicU64,
    /// Physical log forces (group-commit batches): each force covers one
    /// or more commits, so under concurrency this stays below `commits`.
    pub wal_syncs: AtomicU64,
    /// Nanoseconds spent inside physical log forces (write-out plus
    /// sync), summed across all forcing threads — the log-writer's
    /// working time, distinct from committers' queue waits.
    pub wal_force_nanos: AtomicU64,
    /// Checkpoints taken.
    pub checkpoints: AtomicU64,
    /// WAL frames replayed during the most recent recovery.
    pub wal_frames_replayed: AtomicU64,
    /// Bytes discarded from a torn WAL tail during the most recent
    /// recovery (zero on a clean shutdown).
    pub wal_bytes_truncated: AtomicU64,
    /// Transient I/O errors absorbed by the bounded retry helper.
    pub io_retries: AtomicU64,
    /// Page reads whose first image failed verification but whose
    /// immediate re-read verified (transient read corruption repaired).
    pub read_repairs: AtomicU64,
    /// Pages quarantined for persistent damage.
    pub pages_quarantined: AtomicU64,
    /// Quarantined pages healed by a full overwrite.
    pub pages_healed: AtomicU64,
    /// Contended acquisitions of heap metadata locks (object-table
    /// shards and segment placement state): the acquiring thread found
    /// the lock held and had to block.
    pub heap_shard_waits: AtomicU64,
    /// Nanoseconds threads spent blocked on contended heap metadata
    /// locks, summed across all threads.
    pub heap_wait_nanos: AtomicU64,
    /// Snapshots opened via `begin_snapshot`.
    pub snapshots_opened: AtomicU64,
    /// Object reads served at a snapshot timestamp (a subset of `reads`).
    pub snapshot_reads: AtomicU64,
    /// Committed object versions reclaimed by version GC (chain trims at
    /// commit plus the checkpoint low-water sweep).
    pub versions_gced: AtomicU64,
}

impl StorageStats {
    /// Add `n` to a counter.
    #[inline]
    pub fn bump(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Take a point-in-time copy of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            faults: self.faults.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_writes: self.page_writes.load(Ordering::Relaxed),
            swizzles: self.swizzles.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            updates: self.updates.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            aborts: self.aborts.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            wal_force_nanos: self.wal_force_nanos.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            wal_frames_replayed: self.wal_frames_replayed.load(Ordering::Relaxed),
            wal_bytes_truncated: self.wal_bytes_truncated.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
            read_repairs: self.read_repairs.load(Ordering::Relaxed),
            pages_quarantined: self.pages_quarantined.load(Ordering::Relaxed),
            pages_healed: self.pages_healed.load(Ordering::Relaxed),
            heap_shard_waits: self.heap_shard_waits.load(Ordering::Relaxed),
            heap_wait_nanos: self.heap_wait_nanos.load(Ordering::Relaxed),
            snapshots_opened: self.snapshots_opened.load(Ordering::Relaxed),
            snapshot_reads: self.snapshot_reads.load(Ordering::Relaxed),
            versions_gced: self.versions_gced.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`StorageStats`], supporting interval deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`StorageStats::faults`].
    pub faults: u64,
    /// See [`StorageStats::hits`].
    pub hits: u64,
    /// See [`StorageStats::page_reads`].
    pub page_reads: u64,
    /// See [`StorageStats::page_writes`].
    pub page_writes: u64,
    /// See [`StorageStats::swizzles`].
    pub swizzles: u64,
    /// See [`StorageStats::allocs`].
    pub allocs: u64,
    /// See [`StorageStats::bytes_allocated`].
    pub bytes_allocated: u64,
    /// See [`StorageStats::reads`].
    pub reads: u64,
    /// See [`StorageStats::updates`].
    pub updates: u64,
    /// See [`StorageStats::commits`].
    pub commits: u64,
    /// See [`StorageStats::aborts`].
    pub aborts: u64,
    /// See [`StorageStats::wal_bytes`].
    pub wal_bytes: u64,
    /// See [`StorageStats::wal_syncs`].
    pub wal_syncs: u64,
    /// See [`StorageStats::wal_force_nanos`].
    pub wal_force_nanos: u64,
    /// See [`StorageStats::checkpoints`].
    pub checkpoints: u64,
    /// See [`StorageStats::wal_frames_replayed`].
    pub wal_frames_replayed: u64,
    /// See [`StorageStats::wal_bytes_truncated`].
    pub wal_bytes_truncated: u64,
    /// See [`StorageStats::io_retries`].
    pub io_retries: u64,
    /// See [`StorageStats::read_repairs`].
    pub read_repairs: u64,
    /// See [`StorageStats::pages_quarantined`].
    pub pages_quarantined: u64,
    /// See [`StorageStats::pages_healed`].
    pub pages_healed: u64,
    /// See [`StorageStats::heap_shard_waits`].
    pub heap_shard_waits: u64,
    /// See [`StorageStats::heap_wait_nanos`].
    pub heap_wait_nanos: u64,
    /// See [`StorageStats::snapshots_opened`].
    pub snapshots_opened: u64,
    /// See [`StorageStats::snapshot_reads`].
    pub snapshot_reads: u64,
    /// See [`StorageStats::versions_gced`].
    pub versions_gced: u64,
}

impl StatsSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn delta(&self, earlier: &StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            faults: self.faults.saturating_sub(earlier.faults),
            hits: self.hits.saturating_sub(earlier.hits),
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            page_writes: self.page_writes.saturating_sub(earlier.page_writes),
            swizzles: self.swizzles.saturating_sub(earlier.swizzles),
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
            reads: self.reads.saturating_sub(earlier.reads),
            updates: self.updates.saturating_sub(earlier.updates),
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
            wal_force_nanos: self.wal_force_nanos.saturating_sub(earlier.wal_force_nanos),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            wal_frames_replayed: self
                .wal_frames_replayed
                .saturating_sub(earlier.wal_frames_replayed),
            wal_bytes_truncated: self
                .wal_bytes_truncated
                .saturating_sub(earlier.wal_bytes_truncated),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
            read_repairs: self.read_repairs.saturating_sub(earlier.read_repairs),
            pages_quarantined: self.pages_quarantined.saturating_sub(earlier.pages_quarantined),
            pages_healed: self.pages_healed.saturating_sub(earlier.pages_healed),
            heap_shard_waits: self.heap_shard_waits.saturating_sub(earlier.heap_shard_waits),
            heap_wait_nanos: self.heap_wait_nanos.saturating_sub(earlier.heap_wait_nanos),
            snapshots_opened: self.snapshots_opened.saturating_sub(earlier.snapshots_opened),
            snapshot_reads: self.snapshot_reads.saturating_sub(earlier.snapshot_reads),
            versions_gced: self.versions_gced.saturating_sub(earlier.versions_gced),
        }
    }

    /// Hit ratio of the buffer pool over the interval, in `[0, 1]`.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.faults;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = StorageStats::default();
        StorageStats::bump(&s.faults, 5);
        StorageStats::bump(&s.hits, 15);
        let a = s.snapshot();
        StorageStats::bump(&s.faults, 2);
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.faults, 2);
        assert_eq!(d.hits, 0);
        assert_eq!(b.faults, 7);
    }

    #[test]
    fn hit_ratio_edges() {
        let empty = StatsSnapshot::default();
        assert_eq!(empty.hit_ratio(), 1.0);
        let s = StatsSnapshot { hits: 3, faults: 1, ..Default::default() };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn delta_saturates() {
        let a = StatsSnapshot { faults: 10, ..Default::default() };
        let b = StatsSnapshot { faults: 4, ..Default::default() };
        assert_eq!(b.delta(&a).faults, 0);
    }
}
