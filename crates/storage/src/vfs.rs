//! Virtual file system: the seam between the engine and the operating
//! system, so crash behavior can be simulated deterministically.
//!
//! Every byte the engine persists flows through a [`Vfs`] — the page
//! file, the write-ahead log, and the checkpoint metadata all do their
//! I/O through [`VfsFile`] handles. Two implementations:
//!
//! * [`RealVfs`] — a thin passthrough to `std::fs` (the default; the
//!   only cost over direct file I/O is one dynamic dispatch per call,
//!   and it *saves* the per-I/O `metadata()` syscalls the page file
//!   used to issue by caching file length in the handle).
//! * [`SimVfs`] — a seeded, deterministic in-memory file system that
//!   models an OS page cache: writes land in a shadow buffer, `sync`
//!   makes them durable, and a simulated power loss discards unsynced
//!   data — except that, like a real kernel, background writeback may
//!   have pushed a *prefix* of the unsynced writes to "disk" first, and
//!   the last such write may be torn. It can also fail chosen
//!   operations with transient I/O errors, kill the "machine" at a
//!   chosen operation count, *misdirect* chosen writes to a wrong
//!   sector, flip one bit of chosen reads in flight, rot a bit of a
//!   durable image at rest, and defer create/rename durability behind
//!   [`Vfs::sync_dir`]. See `DESIGN.md`, "Fault model".
//!
//! The simulated state sits behind one mutex at rank `SIM_VFS` (60),
//! strictly innermost: it is only ever acquired under the page-file or
//! WAL-writer locks, never the other way around.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use crate::error::Result;
use crate::lock_order::{self, Ranked};

/// How [`Vfs::open`] treats an existing (or missing) file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpenMode {
    /// Create the file, truncating any existing content.
    Create,
    /// Open an existing file; error if it does not exist.
    Open,
}

/// An open file handle. Methods take `&mut self`: callers serialize
/// access behind their own locks (the page-file handle mutex, the WAL
/// writer mutex), so the handle itself carries no synchronization.
// `len` is fallible and takes `&mut self`, so a clippy-style `is_empty`
// companion would not pull its weight.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Send {
    /// Read exactly `buf.len()` bytes at `offset`. Reading past the end
    /// of the file is an error; callers consult [`VfsFile::len`] first.
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Write all of `data` at `offset`, extending the file if needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()>;
    /// Truncate or extend the file to `len` bytes (extension zero-fills).
    fn set_len(&mut self, len: u64) -> Result<()>;
    /// Current length of the file in bytes.
    fn len(&mut self) -> Result<u64>;
    /// Make every write so far durable (survive power loss).
    fn sync(&mut self) -> Result<()>;
}

/// A file system. `Send + Sync` so one instance can back every file of
/// an engine across threads.
pub trait Vfs: Send + Sync {
    /// Open a file handle.
    fn open(&self, path: &Path, mode: OpenMode) -> Result<Box<dyn VfsFile>>;
    /// Read a whole file, or `None` if it does not exist.
    fn read_all(&self, path: &Path) -> Result<Option<Vec<u8>>>;
    /// Atomically rename `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Size of the file at `path`, or `None` if it does not exist.
    fn size(&self, path: &Path) -> Result<Option<u64>>;
    /// Create a directory and any missing parents.
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// Make directory entries (creates and renames under `dir`) durable.
    /// On a real kernel a rename is atomic but *not* durable until the
    /// containing directory is fsynced; callers that rely on a rename
    /// surviving power loss (the checkpoint's meta flip) must call this
    /// before depending on it.
    fn sync_dir(&self, dir: &Path) -> Result<()> {
        let _ = dir;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// RealVfs
// ---------------------------------------------------------------------------

/// The real file system: `std::fs` with a cached length per handle.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealVfs;

impl RealVfs {
    /// Convenience: a shareable `Arc<dyn Vfs>` of the real file system.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(RealVfs)
    }
}

struct RealFile {
    file: std::fs::File,
    /// Cached file length; kept in step with writes and truncations so
    /// page-granular callers avoid a `metadata()` syscall per I/O.
    len: u64,
}

impl VfsFile for RealFile {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        use std::io::{Seek, SeekFrom, Write};
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(data)?;
        self.len = self.len.max(offset + data.len() as u64);
        Ok(())
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        self.len = len;
        Ok(())
    }

    fn len(&mut self) -> Result<u64> {
        Ok(self.len)
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

impl Vfs for RealVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> Result<Box<dyn VfsFile>> {
        let mut opts = std::fs::OpenOptions::new();
        opts.read(true).write(true);
        match mode {
            OpenMode::Create => {
                opts.create(true).truncate(true);
            }
            OpenMode::Open => {}
        }
        let file = opts.open(path)?;
        let len = file.metadata()?.len();
        Ok(Box::new(RealFile { file, len }))
    }

    fn read_all(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        match std::fs::read(path) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn size(&self, path: &Path) -> Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        std::fs::create_dir_all(path)?;
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> Result<()> {
        // fsync the directory fd: flushes the entry table, making
        // completed renames/creates durable (POSIX semantics).
        std::fs::File::open(dir)?.sync_all()?;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// SimVfs
// ---------------------------------------------------------------------------

/// Planned faults for a [`SimVfs`] run. All fields default to "no
/// faults"; the harness arms a plan after building a clean baseline.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Kill the machine when the file-operation counter reaches this
    /// value: the triggering operation fails (a write applies only a
    /// seeded prefix — a torn/short write — to the shadow cache first),
    /// and every subsequent operation fails until [`SimVfs::power_loss`].
    pub crash_at_op: Option<u64>,
    /// Operation counts at which to fail once with a transient I/O
    /// error (mutating operations only; the caller may retry).
    pub fail_ops: Vec<u64>,
    /// Whether simulated background writeback may make a prefix of the
    /// unsynced writes durable at power loss (the last one possibly
    /// torn). When `false`, power loss is "clean": exactly the synced
    /// image survives.
    pub writeback: bool,
    /// Operation counts at which a write is *misdirected*: it succeeds,
    /// but lands at a seeded wrong sector-aligned offset in the same
    /// file — a firmware/driver addressing bug. The caller sees success;
    /// only page/frame self-description can catch it later.
    pub misdirect_ops: Vec<u64>,
    /// Operation counts at which a read returns its data with one seeded
    /// bit flipped (transient read corruption: a bus/DMA glitch, not
    /// at-rest damage — a re-read returns clean bytes).
    pub flip_read_ops: Vec<u64>,
    /// When set, file creates and renames are *not* immediately durable:
    /// they journal as namespace operations, made durable by
    /// [`Vfs::sync_dir`] — and at power loss only a seeded prefix of the
    /// un-flushed namespace journal survives, so a rename can be lost
    /// (or survive) independently of data writes around it.
    pub volatile_namespace: bool,
}

/// One unsynced mutation in a file's journal.
#[derive(Clone, Debug)]
enum JournalOp {
    Write { at: u64, data: Vec<u8> },
    SetLen(u64),
}

/// One namespace mutation (create or rename) not yet flushed by
/// [`Vfs::sync_dir`]. Only journaled under
/// [`FaultPlan::volatile_namespace`]; otherwise namespace changes are
/// immediately durable, as on a journaling file system.
#[derive(Clone, Debug)]
enum NsOp {
    Create { path: PathBuf, id: usize },
    Rename { from: PathBuf, to: PathBuf },
}

/// Apply one namespace op to the on-disk name table. A rename whose
/// source never became durable drops silently — which is exactly why
/// the journal is applied strictly in prefix order: a rename can never
/// survive power loss without the create it depends on.
fn apply_ns(durable: &mut BTreeMap<PathBuf, usize>, op: &NsOp) {
    match op {
        NsOp::Create { path, id } => {
            durable.insert(path.clone(), *id);
        }
        NsOp::Rename { from, to } => {
            if let Some(id) = durable.remove(from) {
                durable.insert(to.clone(), id);
            }
        }
    }
}

#[derive(Clone, Debug, Default)]
struct SimFile {
    /// The bytes that survive power loss (last synced image, plus any
    /// writeback applied at the loss itself).
    durable: Vec<u8>,
    /// The OS-cache view: durable plus every unsynced write.
    cache: Vec<u8>,
    /// Unsynced mutations in order, for writeback simulation.
    journal: Vec<JournalOp>,
}

/// Simulated device-sector size: writes are atomic at this granularity
/// (the "powersafe overwrite" assumption). A torn write keeps a whole
/// number of sectors measured from the absolute file offset, so a
/// single aligned page write is all-or-nothing while a multi-sector WAL
/// batch can tear mid-frame — where the frame CRCs catch it.
const SECTOR: u64 = crate::PAGE_SIZE as u64;

/// Round a raw torn-write cut down to the containing sector boundary.
fn sector_cut(at: u64, raw_cut: usize) -> usize {
    let end = at + raw_cut as u64;
    let floor = end / SECTOR * SECTOR;
    floor.saturating_sub(at).min(raw_cut as u64) as usize
}

fn apply_op(buf: &mut Vec<u8>, op: &JournalOp) {
    match op {
        JournalOp::Write { at, data } => {
            let at = *at as usize;
            let end = at + data.len();
            if buf.len() < end {
                buf.resize(end, 0);
            }
            if let Some(dst) = buf.get_mut(at..end) {
                dst.copy_from_slice(data);
            }
        }
        JournalOp::SetLen(n) => buf.resize(*n as usize, 0),
    }
}

struct SimState {
    /// File bodies, indexed by id. Handles address files by id, so a
    /// rename never invalidates an open handle (fd semantics).
    store: Vec<SimFile>,
    /// The in-memory (OS cache) view of the namespace: name → file id.
    names: BTreeMap<PathBuf, usize>,
    /// The on-disk namespace: what survives power loss (before any
    /// seeded namespace writeback chosen at the loss itself).
    durable_names: BTreeMap<PathBuf, usize>,
    /// Namespace operations awaiting `sync_dir`, in order. Empty unless
    /// [`FaultPlan::volatile_namespace`] is armed.
    ns_journal: Vec<NsOp>,
    plan: FaultPlan,
    /// Monotone count of file operations (the crash clock).
    ops: u64,
    /// xorshift64* state for torn-write and writeback decisions.
    rng: u64,
    /// Power has been lost; every operation fails until `power_loss`
    /// resolves the durable image.
    crashed: bool,
}

impl SimState {
    fn next_rand(&mut self) -> u64 {
        // xorshift64*: tiny, deterministic, good enough for fault choice.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn io_err(what: &str) -> crate::StorageError {
        crate::StorageError::Io(io::Error::other(format!("simulated fault: {what}")))
    }

    /// Advance the crash clock; returns an error if this operation is
    /// chosen to fail. `file` names the target when the operation is a
    /// mutation, so a dying write can record a torn prefix.
    fn tick(&mut self, file: Option<(usize, &JournalOp)>) -> Result<()> {
        if self.crashed {
            return Err(Self::io_err("power is off"));
        }
        let op = self.ops;
        self.ops += 1;
        if self.plan.fail_ops.contains(&op) {
            return Err(Self::io_err("transient I/O error"));
        }
        if self.plan.crash_at_op == Some(op) {
            // The dying operation: a write may land a torn prefix in the
            // cache/journal before the machine goes dark.
            if let Some((id, JournalOp::Write { at, data })) = file {
                let keep = sector_cut(*at, (self.next_rand() as usize) % (data.len() + 1));
                if keep > 0 {
                    let torn = JournalOp::Write {
                        at: *at,
                        data: data.get(..keep).unwrap_or_default().to_vec(),
                    };
                    if let Some(f) = self.store.get_mut(id) {
                        apply_op(&mut f.cache, &torn);
                        f.journal.push(torn);
                    }
                }
            }
            self.crashed = true;
            return Err(Self::io_err("power loss"));
        }
        Ok(())
    }
}

/// The simulated file system. Cheap to clone (shared state); keep one
/// handle in the test/harness to arm faults and pull the plug.
#[derive(Clone)]
pub struct SimVfs {
    state: Arc<Mutex<SimState>>,
}

impl SimVfs {
    /// A fresh, empty simulated file system with the given fault seed.
    pub fn new(seed: u64) -> Self {
        SimVfs {
            state: Arc::new(Mutex::new(SimState {
                store: Vec::new(),
                names: BTreeMap::new(),
                durable_names: BTreeMap::new(),
                ns_journal: Vec::new(),
                plan: FaultPlan::default(),
                ops: 0,
                // xorshift must not start at 0.
                rng: seed | 1,
                crashed: false,
            })),
        }
    }

    /// Lock the simulator state (rank `SIM_VFS`, strictly innermost).
    fn sim_lock(&self) -> Ranked<MutexGuard<'_, SimState>> {
        lock_order::ranked(lock_order::SIM_VFS, || self.state.lock())
    }

    /// Arm a fault plan. Replaces any previous plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        self.sim_lock().plan = plan;
    }

    /// File operations performed so far (the crash clock).
    pub fn op_count(&self) -> u64 {
        self.sim_lock().ops
    }

    /// Whether the simulated machine has lost power.
    pub fn crashed(&self) -> bool {
        self.sim_lock().crashed
    }

    /// Pull the plug (or resolve a planned crash): for each file, decide
    /// what survives — the synced image always does; with
    /// [`FaultPlan::writeback`], a seeded prefix of the unsynced journal
    /// may survive too, the last write possibly torn. Afterwards the
    /// machine is "rebooted": operations work again, the fault plan is
    /// disarmed, and the cache equals the durable image.
    pub fn power_loss(&self) {
        let mut st = self.sim_lock();
        let writeback = st.plan.writeback;
        // Namespace writeback first: a seeded *prefix* of the un-flushed
        // directory operations reaches disk (prefix order guarantees a
        // rename never survives without the create it depends on).
        // Without `volatile_namespace` the journal is always empty.
        let ns_keep = if st.plan.volatile_namespace && !st.ns_journal.is_empty() {
            (st.next_rand() as usize) % (st.ns_journal.len() + 1)
        } else {
            st.ns_journal.len()
        };
        let flushed: Vec<NsOp> = st.ns_journal.iter().take(ns_keep).cloned().collect();
        for op in &flushed {
            apply_ns(&mut st.durable_names, op);
        }
        st.ns_journal.clear();
        st.names = st.durable_names.clone();
        for id in 0..st.store.len() {
            let keep = {
                let journal_len = st.store.get(id).map(|f| f.journal.len()).unwrap_or(0);
                if writeback && journal_len > 0 {
                    (st.next_rand() as usize) % (journal_len + 1)
                } else {
                    0
                }
            };
            let tear = if keep > 0 { st.next_rand() as usize } else { 0 };
            if let Some(f) = st.store.get_mut(id) {
                for (i, op) in f.journal.iter().take(keep).enumerate() {
                    if i + 1 == keep {
                        // The frontier write may itself be torn — to a
                        // whole number of device sectors.
                        if let JournalOp::Write { at, data } = op {
                            let cut = sector_cut(*at, tear % (data.len() + 1));
                            if cut < data.len() {
                                let torn = JournalOp::Write {
                                    at: *at,
                                    data: data.get(..cut).unwrap_or_default().to_vec(),
                                };
                                if cut > 0 {
                                    apply_op(&mut f.durable, &torn);
                                }
                                continue;
                            }
                        }
                    }
                    apply_op(&mut f.durable, op);
                }
                f.journal.clear();
                f.cache = f.durable.clone();
            }
        }
        st.plan = FaultPlan::default();
        st.crashed = false;
    }

    /// Flip one seeded bit in the durable image of `path` — at-rest
    /// media rot, injected from outside the crash clock. The cache view
    /// is damaged identically (as after `power_loss` the two coincide).
    /// Returns the absolute bit index flipped, or `None` if the file is
    /// missing or empty.
    pub fn flip_durable_bit(&self, path: &Path) -> Option<u64> {
        let mut st = self.sim_lock();
        let id = st.names.get(path).copied()?;
        let nbits = (st.store.get(id)?.durable.len() as u64).saturating_mul(8);
        if nbits == 0 {
            return None;
        }
        let bit = st.next_rand() % nbits;
        let f = st.store.get_mut(id)?;
        let (byte, mask) = ((bit / 8) as usize, 1u8 << (bit % 8));
        if let Some(b) = f.durable.get_mut(byte) {
            *b ^= mask;
        }
        if let Some(b) = f.cache.get_mut(byte) {
            *b ^= mask;
        }
        Some(bit)
    }

    /// A deep copy of the durable (post-power-loss) image as a fresh,
    /// fault-free `SimVfs` — for checking that recovery is deterministic
    /// and idempotent from the same disk state. Only files reachable
    /// from the durable namespace are carried over.
    pub fn clone_durable(&self) -> SimVfs {
        let st = self.sim_lock();
        let mut store = Vec::new();
        let mut names = BTreeMap::new();
        for (path, &id) in &st.durable_names {
            if let Some(f) = st.store.get(id) {
                names.insert(path.clone(), store.len());
                store.push(SimFile {
                    durable: f.durable.clone(),
                    cache: f.durable.clone(),
                    journal: Vec::new(),
                });
            }
        }
        let durable_names = names.clone();
        SimVfs {
            state: Arc::new(Mutex::new(SimState {
                store,
                names,
                durable_names,
                ns_journal: Vec::new(),
                plan: FaultPlan::default(),
                ops: 0,
                rng: st.rng | 1,
                crashed: false,
            })),
        }
    }
}

struct SimHandle {
    vfs: SimVfs,
    id: usize,
}

impl SimHandle {
    fn mutate(&mut self, op: JournalOp) -> Result<()> {
        let mut st = self.vfs.sim_lock();
        let opnum = st.ops;
        st.tick(Some((self.id, &op)))?;
        let op = if st.plan.misdirect_ops.contains(&opnum) {
            // Misdirected write: the device acks success but puts the
            // data at a seeded wrong sector-aligned offset in the same
            // file. The intended location keeps its previous content.
            match op {
                JournalOp::Write { at, data } => {
                    let len =
                        st.store.get(self.id).map(|f| f.cache.len() as u64).unwrap_or(0);
                    let sectors = (len / SECTOR).max(1);
                    let candidate = (st.next_rand() % sectors) * SECTOR;
                    let wrong = if candidate == at { candidate + SECTOR } else { candidate };
                    JournalOp::Write { at: wrong, data }
                }
                other => other,
            }
        } else {
            op
        };
        match st.store.get_mut(self.id) {
            Some(f) => {
                apply_op(&mut f.cache, &op);
                f.journal.push(op);
                Ok(())
            }
            None => Err(SimState::io_err("file vanished")),
        }
    }
}

impl VfsFile for SimHandle {
    fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut st = self.vfs.sim_lock();
        let opnum = st.ops;
        st.tick(None)?;
        let f = st
            .store
            .get(self.id)
            .ok_or_else(|| SimState::io_err("file vanished"))?;
        let at = offset as usize;
        let src = f
            .cache
            .get(at..at + buf.len())
            .ok_or_else(|| SimState::io_err("read past end of file"))?;
        buf.copy_from_slice(src);
        if st.plan.flip_read_ops.contains(&opnum) && !buf.is_empty() {
            // Transient read corruption: one seeded bit arrives flipped.
            // The stored bytes are untouched; a re-read comes back clean.
            let bit = (st.next_rand() as usize) % (buf.len() * 8);
            if let Some(byte) = buf.get_mut(bit / 8) {
                *byte ^= 1 << (bit % 8);
            }
        }
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> Result<()> {
        self.mutate(JournalOp::Write { at: offset, data: data.to_vec() })
    }

    fn set_len(&mut self, len: u64) -> Result<()> {
        self.mutate(JournalOp::SetLen(len))
    }

    fn len(&mut self) -> Result<u64> {
        let st = self.vfs.sim_lock();
        st.store
            .get(self.id)
            .map(|f| f.cache.len() as u64)
            .ok_or_else(|| SimState::io_err("file vanished"))
    }

    fn sync(&mut self) -> Result<()> {
        let mut st = self.vfs.sim_lock();
        st.tick(None)?;
        if let Some(f) = st.store.get_mut(self.id) {
            f.durable = f.cache.clone();
            f.journal.clear();
        }
        Ok(())
    }
}

impl Vfs for SimVfs {
    fn open(&self, path: &Path, mode: OpenMode) -> Result<Box<dyn VfsFile>> {
        let mut st = self.sim_lock();
        if st.crashed {
            return Err(SimState::io_err("power is off"));
        }
        let id = match mode {
            OpenMode::Create => match st.names.get(path).copied() {
                Some(id) => {
                    // Truncate in place; open handles keep addressing
                    // the same file, as with O_TRUNC on a real fd.
                    if let Some(f) = st.store.get_mut(id) {
                        *f = SimFile::default();
                    }
                    id
                }
                None => {
                    let id = st.store.len();
                    st.store.push(SimFile::default());
                    st.names.insert(path.to_path_buf(), id);
                    if st.plan.volatile_namespace {
                        st.ns_journal.push(NsOp::Create { path: path.to_path_buf(), id });
                    } else {
                        st.durable_names.insert(path.to_path_buf(), id);
                    }
                    id
                }
            },
            OpenMode::Open => match st.names.get(path).copied() {
                Some(id) => id,
                None => {
                    return Err(crate::StorageError::Io(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no such simulated file: {}", path.display()),
                    )))
                }
            },
        };
        drop(st);
        Ok(Box::new(SimHandle { vfs: self.clone(), id }))
    }

    fn read_all(&self, path: &Path) -> Result<Option<Vec<u8>>> {
        let st = self.sim_lock();
        if st.crashed {
            return Err(SimState::io_err("power is off"));
        }
        Ok(st
            .names
            .get(path)
            .and_then(|&id| st.store.get(id))
            .map(|f| f.cache.clone()))
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut st = self.sim_lock();
        if st.crashed {
            return Err(SimState::io_err("power is off"));
        }
        // Atomic in the cache view. Durable immediately unless
        // `volatile_namespace` is armed, in which case durability waits
        // for `sync_dir` (or a lucky namespace writeback at power loss).
        match st.names.remove(from) {
            Some(id) => {
                st.names.insert(to.to_path_buf(), id);
                if st.plan.volatile_namespace {
                    st.ns_journal
                        .push(NsOp::Rename { from: from.to_path_buf(), to: to.to_path_buf() });
                } else if let Some(did) = st.durable_names.remove(from) {
                    st.durable_names.insert(to.to_path_buf(), did);
                }
                Ok(())
            }
            None => Err(crate::StorageError::Io(io::Error::new(
                io::ErrorKind::NotFound,
                format!("rename source missing: {}", from.display()),
            ))),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.sim_lock().names.contains_key(path)
    }

    fn size(&self, path: &Path) -> Result<Option<u64>> {
        let st = self.sim_lock();
        Ok(st
            .names
            .get(path)
            .and_then(|&id| st.store.get(id))
            .map(|f| f.cache.len() as u64))
    }

    fn create_dir_all(&self, _path: &Path) -> Result<()> {
        // Directories are implicit in the simulated namespace.
        Ok(())
    }

    fn sync_dir(&self, _dir: &Path) -> Result<()> {
        // The simulated namespace is flat: one directory fsync flushes
        // the whole namespace journal, in order.
        let mut st = self.sim_lock();
        st.tick(None)?;
        let flushed: Vec<NsOp> = st.ns_journal.drain(..).collect();
        for op in &flushed {
            apply_ns(&mut st.durable_names, op);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn real_vfs_round_trip_and_cached_len() {
        let dir = std::env::temp_dir().join(format!("lfs-vfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("real.bin");
        let vfs = RealVfs;
        let mut f = vfs.open(&path, OpenMode::Create).unwrap();
        assert_eq!(f.len().unwrap(), 0);
        f.write_at(4, b"abcd").unwrap();
        assert_eq!(f.len().unwrap(), 8);
        let mut buf = [0u8; 4];
        f.read_at(4, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        f.set_len(6).unwrap();
        assert_eq!(f.len().unwrap(), 6);
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.size(&path).unwrap(), Some(6));
        assert!(vfs.exists(&path));
        let got = vfs.read_all(&path).unwrap().unwrap();
        assert_eq!(got.len(), 6);
        assert!(vfs.read_all(&dir.join("nope.bin")).unwrap().is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sim_unsynced_writes_vanish_at_power_loss() {
        let sim = SimVfs::new(42);
        let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
        f.write_at(0, b"durable!").unwrap();
        f.sync().unwrap();
        f.write_at(8, b" gone").unwrap();
        assert_eq!(sim.read_all(&p("/a")).unwrap().unwrap(), b"durable! gone");
        sim.power_loss();
        assert_eq!(sim.read_all(&p("/a")).unwrap().unwrap(), b"durable!");
    }

    #[test]
    fn sim_crash_at_op_kills_everything_until_power_loss() {
        let sim = SimVfs::new(7);
        let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
        f.write_at(0, b"one").unwrap();
        f.sync().unwrap();
        let now = sim.op_count();
        sim.set_plan(FaultPlan { crash_at_op: Some(now + 1), ..FaultPlan::default() });
        f.write_at(3, b"two").unwrap(); // op `now`: survives in cache
        assert!(f.write_at(6, b"three").is_err()); // the dying op
        assert!(sim.crashed());
        assert!(f.sync().is_err());
        assert!(f.write_at(0, b"x").is_err());
        sim.power_loss();
        assert!(!sim.crashed());
        // Only the synced prefix survived (writeback disarmed).
        assert_eq!(sim.read_all(&p("/a")).unwrap().unwrap(), b"one");
    }

    #[test]
    fn sim_writeback_preserves_ordered_prefix() {
        // With writeback armed, what survives must always be the synced
        // image plus a *prefix* of the journal — never a later write
        // without an earlier one.
        for seed in 0..50u64 {
            let sim = SimVfs::new(seed);
            let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
            f.write_at(0, b"AAAA").unwrap();
            f.sync().unwrap();
            f.write_at(0, b"BBBB").unwrap();
            f.write_at(0, b"CCCC").unwrap();
            sim.set_plan(FaultPlan { writeback: true, ..FaultPlan::default() });
            sim.power_loss();
            let got = sim.read_all(&p("/a")).unwrap().unwrap();
            assert_eq!(got.len(), 4, "seed {seed}: length must be stable");
            // Sub-sector writes are atomic, so the only legal images are
            // prefixes of the journal: AAAA, BBBB, CCCC — never a C
            // write surviving without the B write beneath it.
            let s = String::from_utf8_lossy(&got).to_string();
            let legal = ["AAAA", "BBBB", "CCCC"];
            assert!(legal.contains(&s.as_str()), "seed {seed}: illegal image {s}");
        }
    }

    #[test]
    fn sim_torn_writes_respect_sector_atomicity() {
        // A large unsynced write may tear at power loss, but only at
        // sector (PAGE_SIZE) boundaries relative to the file start.
        let mut saw_tear = false;
        for seed in 0..200u64 {
            let sim = SimVfs::new(seed);
            let mut f = sim.open(&p("/wal"), OpenMode::Create).unwrap();
            f.write_at(0, &vec![1u8; 3 * crate::PAGE_SIZE]).unwrap();
            sim.set_plan(FaultPlan { writeback: true, ..FaultPlan::default() });
            sim.power_loss();
            let got = sim.read_all(&p("/wal")).unwrap().unwrap();
            assert_eq!(
                got.len() % crate::PAGE_SIZE,
                0,
                "seed {seed}: torn length {} is not sector-aligned",
                got.len()
            );
            assert!(got.iter().all(|&b| b == 1));
            if !got.is_empty() && got.len() < 3 * crate::PAGE_SIZE {
                saw_tear = true;
            }
        }
        assert!(saw_tear, "200 seeds should produce at least one mid-write tear");
    }

    #[test]
    fn sim_transient_error_is_transient() {
        let sim = SimVfs::new(9);
        let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
        let now = sim.op_count();
        sim.set_plan(FaultPlan { fail_ops: vec![now], ..FaultPlan::default() });
        assert!(f.write_at(0, b"x").is_err());
        // Retry succeeds; the machine did not die.
        f.write_at(0, b"x").unwrap();
        assert!(!sim.crashed());
    }

    #[test]
    fn sim_rename_is_atomic_and_durable() {
        let sim = SimVfs::new(3);
        let mut f = sim.open(&p("/tmp.meta"), OpenMode::Create).unwrap();
        f.write_at(0, b"meta").unwrap();
        f.sync().unwrap();
        drop(f);
        sim.rename(&p("/tmp.meta"), &p("/store.meta")).unwrap();
        sim.power_loss();
        assert!(!sim.exists(&p("/tmp.meta")));
        assert_eq!(sim.read_all(&p("/store.meta")).unwrap().unwrap(), b"meta");
    }

    #[test]
    fn sim_clone_durable_detaches_state() {
        let sim = SimVfs::new(5);
        let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
        f.write_at(0, b"base").unwrap();
        f.sync().unwrap();
        let copy = sim.clone_durable();
        f.write_at(0, b"more").unwrap();
        f.sync().unwrap();
        assert_eq!(sim.read_all(&p("/a")).unwrap().unwrap(), b"more");
        assert_eq!(copy.read_all(&p("/a")).unwrap().unwrap(), b"base");
    }

    #[test]
    fn sim_open_missing_fails_create_truncates() {
        let sim = SimVfs::new(1);
        assert!(sim.open(&p("/nope"), OpenMode::Open).is_err());
        let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
        f.write_at(0, b"junk").unwrap();
        drop(f);
        let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
        assert_eq!(f.len().unwrap(), 0);
    }

    #[test]
    fn sim_misdirected_write_lands_at_wrong_sector() {
        let sim = SimVfs::new(11);
        let mut f = sim.open(&p("/data"), OpenMode::Create).unwrap();
        f.write_at(0, &vec![0u8; 2 * crate::PAGE_SIZE]).unwrap();
        f.sync().unwrap();
        let now = sim.op_count();
        sim.set_plan(FaultPlan { misdirect_ops: vec![now], ..FaultPlan::default() });
        // The write reports success...
        f.write_at(0, &vec![7u8; crate::PAGE_SIZE]).unwrap();
        let img = sim.read_all(&p("/data")).unwrap().unwrap();
        // ...but the intended sector is untouched, and the payload sits
        // whole at some other sector-aligned offset.
        assert!(img.get(..crate::PAGE_SIZE).unwrap().iter().all(|&b| b == 0));
        let landed = img
            .chunks(crate::PAGE_SIZE)
            .skip(1)
            .any(|c| c.len() == crate::PAGE_SIZE && c.iter().all(|&b| b == 7));
        assert!(landed, "misdirected payload must land intact elsewhere");
    }

    #[test]
    fn sim_read_bit_flip_is_transient() {
        let sim = SimVfs::new(13);
        let mut f = sim.open(&p("/data"), OpenMode::Create).unwrap();
        let clean = vec![0xA5u8; 64];
        f.write_at(0, &clean).unwrap();
        f.sync().unwrap();
        let now = sim.op_count();
        sim.set_plan(FaultPlan { flip_read_ops: vec![now], ..FaultPlan::default() });
        let mut buf = [0u8; 64];
        f.read_at(0, &mut buf).unwrap();
        let diff: u32 = buf.iter().zip(&clean).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1, "exactly one bit arrives flipped");
        // The damage was in flight, not at rest: a re-read is clean.
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf[..], &clean[..]);
    }

    #[test]
    fn sim_flip_durable_bit_rots_at_rest() {
        let sim = SimVfs::new(17);
        let mut f = sim.open(&p("/data"), OpenMode::Create).unwrap();
        let clean = vec![0x5Au8; 32];
        f.write_at(0, &clean).unwrap();
        f.sync().unwrap();
        assert!(sim.flip_durable_bit(&p("/data")).is_some());
        let got = sim.read_all(&p("/data")).unwrap().unwrap();
        let diff: u32 = got.iter().zip(&clean).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(diff, 1, "at-rest rot flips exactly one stored bit");
        assert!(sim.flip_durable_bit(&p("/missing")).is_none());
    }

    #[test]
    fn sim_volatile_namespace_loses_a_seeded_prefix() {
        // With a volatile namespace, the tmp-write/sync/rename dance can
        // land in any prefix state at power loss — but never an illegal
        // one (a rename surviving without its create, or a destination
        // file with unsynced content).
        let mut outcomes = std::collections::BTreeSet::new();
        for seed in 0..60u64 {
            let sim = SimVfs::new(seed);
            sim.set_plan(FaultPlan { volatile_namespace: true, ..FaultPlan::default() });
            let mut f = sim.open(&p("/tmp.meta"), OpenMode::Create).unwrap();
            f.write_at(0, b"meta").unwrap();
            f.sync().unwrap();
            drop(f);
            sim.rename(&p("/tmp.meta"), &p("/store.meta")).unwrap();
            sim.power_loss();
            let tmp = sim.exists(&p("/tmp.meta"));
            let dst = sim.exists(&p("/store.meta"));
            assert!(!(tmp && dst), "seed {seed}: rename must stay atomic");
            if dst {
                assert_eq!(
                    sim.read_all(&p("/store.meta")).unwrap().unwrap(),
                    b"meta",
                    "seed {seed}: surviving destination must carry synced content"
                );
            }
            outcomes.insert((tmp, dst));
        }
        assert!(outcomes.len() >= 2, "60 seeds should produce divergent prefixes");
    }

    #[test]
    fn sim_sync_dir_makes_namespace_durable() {
        let sim = SimVfs::new(23);
        sim.set_plan(FaultPlan { volatile_namespace: true, ..FaultPlan::default() });
        let mut f = sim.open(&p("/tmp.meta"), OpenMode::Create).unwrap();
        f.write_at(0, b"meta").unwrap();
        f.sync().unwrap();
        drop(f);
        sim.rename(&p("/tmp.meta"), &p("/store.meta")).unwrap();
        sim.sync_dir(&p("/")).unwrap();
        // Re-arm: power_loss disarms nothing before this point.
        sim.set_plan(FaultPlan { volatile_namespace: true, ..FaultPlan::default() });
        sim.power_loss();
        assert!(!sim.exists(&p("/tmp.meta")));
        assert_eq!(sim.read_all(&p("/store.meta")).unwrap().unwrap(), b"meta");
    }

    #[test]
    fn sim_determinism_same_seed_same_outcome() {
        let run = |seed: u64| -> Vec<u8> {
            let sim = SimVfs::new(seed);
            let mut f = sim.open(&p("/a"), OpenMode::Create).unwrap();
            f.write_at(0, b"sync").unwrap();
            f.sync().unwrap();
            for i in 0..10u8 {
                f.write_at(4 + i as u64, &[i]).unwrap();
            }
            sim.set_plan(FaultPlan { writeback: true, ..FaultPlan::default() });
            sim.power_loss();
            sim.read_all(&p("/a")).unwrap().unwrap()
        };
        assert_eq!(run(1234), run(1234));
    }
}
