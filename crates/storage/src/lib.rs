//! # labflow-storage
//!
//! Object storage manager substrates for the LabFlow-1 benchmark.
//!
//! The LabFlow-1 paper (Bonner, Shrufi & Rozen, EDBT 1996) evaluates the
//! benchmark through LabBase, a workflow DBMS implemented on top of an
//! *object storage manager*. The paper compares five storage-manager
//! configurations; this crate reproduces all five behind a single
//! [`StorageManager`] trait:
//!
//! * [`OStore`] — modelled on ObjectStore v3.0: a page-based store with a
//!   buffer pool, a page-level lock manager (concurrent access allowed),
//!   write-ahead logging with checkpoints, and — critically for the paper's
//!   conclusions — **placement segments** that let the client control
//!   locality of reference (three small hot segments plus one large cold
//!   segment, per the paper's Section 5.1).
//! * [`Texas`] — modelled on the Texas persistent store v0.3: a persistent
//!   heap with pointer swizzling at page-fault time. Allocation proceeds
//!   strictly in address order, so the client has **no control over
//!   locality**; the store is single-user and accesses its file directly
//!   (no log, durability at explicit checkpoints only).
//! * [`TexasTc`] — the same Texas storage manager plus *client-implemented*
//!   object clustering: allocations carrying the same [`ClusterHint`] are
//!   grouped into shared chunks, approximating what the paper calls the
//!   "Texas+TC" server version.
//! * [`MemStore`] (×2, via [`MemStore::ostore_mm`] / [`MemStore::texas_mm`])
//!   — the `-mm` versions: the same API with storage management compiled
//!   out; everything lives in main memory and nothing is persistent.
//!
//! All backends report uniform [`StorageStats`], including the number of
//! buffer-pool misses that had to touch the backing file. On the paper's
//! mid-90s hardware these were literal major page faults (`majflt`); on
//! modern machines the identical phenomenon — an object reference leaving
//! the resident set — is observed at the buffer pool, which the benchmark
//! sizes deliberately small.
//!
//! ## Example
//!
//! ```
//! use labflow_storage::{OStore, Options, StorageManager, SegmentId, ClusterHint};
//!
//! let dir = std::env::temp_dir().join(format!("lfs-doc-{}", std::process::id()));
//! let store = OStore::create(&dir, Options::default()).unwrap();
//! let txn = store.begin().unwrap();
//! let oid = store
//!     .allocate(txn, SegmentId::DEFAULT, ClusterHint::NONE, b"hello workflow")
//!     .unwrap();
//! store.commit(txn).unwrap();
//! assert_eq!(store.read(oid).unwrap(), b"hello workflow");
//! # drop(store); std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod checksum;
mod engine;
mod error;
mod heap;
mod ids;
mod lock;
pub mod lock_order;
mod memstore;
mod meta;
mod page;
mod pagefile;
pub mod retry;
pub mod scrub;
mod stats;
mod traits;
pub mod vfs;
mod waits;
mod wal;

pub use checksum::{fnv1a, fnv1a_multi};
pub use engine::{Engine, OStore, Options, Profile, Texas, TexasTc};
pub use heap::HeapContention;
pub use error::{RecoveryError, Result, StorageError};
pub use ids::{ClusterHint, Oid, PageId, SegmentId, Slot, TxnId};
pub use memstore::MemStore;
pub use pagefile::{PageRead, PAGE_HDR};
pub use scrub::{scrub_store, ScrubReport};
pub use stats::{StatsSnapshot, StorageStats};
pub use traits::{SegmentInfo, Snapshot, StorageManager};
pub use vfs::{FaultPlan, OpenMode, RealVfs, SimVfs, Vfs, VfsFile};
pub use wal::{decode_shipped, WalChunk, WalRecord};
pub use waits::{add_name_index_wait, snapshot as wait_snapshot, WaitSnapshot};

/// The page size used by all page-based backends, in bytes. This is the
/// *physical* unit of I/O; every page begins with a [`PAGE_HDR`]-byte
/// verification header, leaving [`PAGE_PAYLOAD`] bytes to the layers
/// above the page file.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of each page available to the slotted-page/heap layers: the
/// physical page minus the verification header the page file owns.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HDR;

/// Test-only access to WAL replay, so the crash harness can print log
/// diagnostics when a durability invariant fails. Not part of the
/// supported API.
#[doc(hidden)]
pub mod wal_testing {
    pub use crate::wal::{Wal, WalRecord, WalReplay};
}

/// Test-only access to the slotted-page primitives, so external
/// property suites can drive the layout directly. Not part of the
/// supported API.
#[doc(hidden)]
pub mod page_testing {
    pub use crate::page::{
        compact, dead_bytes, free_space, init, insert, live_bytes, read, remove, update,
    };

    /// Construct a slot id from its raw index.
    pub fn slot(raw: u16) -> crate::Slot {
        crate::Slot(raw)
    }
}
