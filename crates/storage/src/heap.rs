//! The object heap: variable-size objects on slotted pages, with an
//! object table, placement segments, client-clustering chunks, and
//! overflow chains for objects larger than a page.
//!
//! The heap is policy-parameterized so one implementation serves both
//! storage-manager personalities:
//!
//! * **segment placement** (ObjectStore-like): each [`SegmentId`] appends
//!   to its own run of pages, so co-segment objects share pages;
//! * **address-order placement** (Texas-like): a single segment, every
//!   allocation appended to the current end of the heap — interleaving
//!   whatever the client happens to allocate next, which is exactly the
//!   locality problem the paper measures;
//! * **client chunks** (Texas+TC): the client-code clustering of the
//!   paper's "Texas+TC" version — the client routes each allocation to a
//!   per-type chunk (keyed on the segment id the storage manager itself
//!   ignores), recovering most of the locality control ObjectStore's
//!   segments provide natively.
//!
//! Per-object overhead (`extra_header` + `align`) models the handle /
//! swizzle-entry / alignment cost that made the paper's Texas databases
//! ~48% larger than ObjectStore's.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, PageId, SegmentId, Slot};
use crate::lock_order::{self, Ranked};
use crate::page;
use crate::pagefile::PageFile;
use crate::stats::StorageStats;
use crate::PAGE_PAYLOAD;

/// Marker in the stored length word that flags an overflow header record.
const OVERFLOW_MARKER: u32 = 0xFFFF_FFFF;
/// Payload capacity of one overflow page: next-pointer + chunk length.
const OVERFLOW_CAP: usize = PAGE_PAYLOAD - 8;
/// "No next page" sentinel in overflow chains.
const NO_PAGE: u32 = 0xFFFF_FFFF;

/// Physical location of an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loc {
    /// Page holding the object's record (or overflow header).
    pub page: PageId,
    /// Slot within the page.
    pub slot: Slot,
    /// Segment the object was placed in.
    pub seg: SegmentId,
}

/// How allocations are placed onto pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// One open page per segment; the client controls locality by
    /// choosing segments (ObjectStore-style).
    Segments,
    /// Strict address order in a single heap; segment ids and hints are
    /// accepted but ignored (Texas-style).
    AddressOrder,
    /// Client-side chunk clustering (Texas+TC-style): allocations are
    /// grouped into chunks keyed on the segment id, which the underlying
    /// Texas store ignores — i.e. the client reimplements type-level
    /// placement above an uncooperative store. Unlike
    /// [`Placement::Segments`], any segment id is accepted (the "schema"
    /// of chunks lives in client code, not the store).
    ClientChunks,
}

struct SegState {
    open_page: Option<PageId>,
    pages: Vec<PageId>,
}

struct HeapInner {
    table: HashMap<u64, Loc>,
    segs: Vec<SegState>,
    chunks: HashMap<u64, PageId>,
    free_pages: Vec<PageId>,
    next_oid: u64,
}

/// The object heap. Thread-safe; all metadata behind one reader-writer
/// lock, page contents behind the buffer pool's own lock. Readers hold
/// the shared guard across the page access so a concurrent update cannot
/// relocate an object (freeing its old slot, or recycling its overflow
/// pages) out from under them.
pub struct Heap {
    pool: Arc<BufferPool>,
    file: Arc<PageFile>,
    stats: Arc<StorageStats>,
    inner: RwLock<HeapInner>,
    placement: Placement,
    extra_header: usize,
    align: usize,
}

impl Heap {
    /// Create an empty heap with `segments` placement segments.
    pub fn new(
        pool: Arc<BufferPool>,
        file: Arc<PageFile>,
        stats: Arc<StorageStats>,
        placement: Placement,
        segments: u8,
        extra_header: usize,
        align: usize,
    ) -> Self {
        let segs = (0..segments.max(1))
            .map(|_| SegState { open_page: None, pages: Vec::new() })
            .collect();
        Heap {
            pool,
            file,
            stats,
            inner: RwLock::new(HeapInner {
                table: HashMap::new(),
                segs,
                chunks: HashMap::new(),
                free_pages: Vec::new(),
                next_oid: 1,
            }),
            placement,
            extra_header,
            align: align.max(1),
        }
    }


    /// Shared access to the object table, rank-checked: the guard may be
    /// held across buffer-pool and page-file acquisitions (higher ranks)
    /// but never the other way around.
    fn table_read(&self) -> Ranked<RwLockReadGuard<'_, HeapInner>> {
        lock_order::ranked(lock_order::HEAP_TABLE, || self.inner.read())
    }

    /// Exclusive access to the object table, rank-checked.
    fn table_write(&self) -> Ranked<RwLockWriteGuard<'_, HeapInner>> {
        lock_order::ranked(lock_order::HEAP_TABLE, || self.inner.write())
    }

    /// Stored size (including simulated per-object overhead) of a payload.
    fn stored_len(&self, payload: usize) -> usize {
        let raw = 4 + self.extra_header + payload;
        raw.div_ceil(self.align) * self.align
    }

    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.stored_len(payload.len())];
        out[0..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let start = 4 + self.extra_header;
        out[start..start + payload.len()].copy_from_slice(payload);
        out
    }

    fn decode(&self, stored: &[u8]) -> Result<Vec<u8>> {
        if stored.len() < 4 {
            return Err(StorageError::Corrupt("record shorter than header".into()));
        }
        let len = u32::from_le_bytes([stored[0], stored[1], stored[2], stored[3]]) as usize;
        let start = 4 + self.extra_header;
        if len == OVERFLOW_MARKER as usize || start + len > stored.len() {
            return Err(StorageError::Corrupt(format!(
                "record length {len} exceeds stored bytes {}",
                stored.len()
            )));
        }
        Ok(stored[start..start + len].to_vec())
    }

    fn take_page(&self, inner: &mut HeapInner) -> PageId {
        inner.free_pages.pop().unwrap_or_else(|| self.file.allocate_page())
    }

    /// Pick the page an allocation of `need` stored bytes should go to,
    /// opening a new page if necessary. Returns `(page, fresh)`.
    fn placement_page(
        &self,
        inner: &mut HeapInner,
        seg: SegmentId,
        hint: ClusterHint,
        need: usize,
    ) -> Result<(PageId, bool)> {
        let seg_idx = match self.placement {
            Placement::Segments => {
                if (seg.0 as usize) >= inner.segs.len() {
                    return Err(StorageError::UnknownSegment(seg.0));
                }
                seg.0 as usize
            }
            // Texas ignores the client's segments entirely.
            Placement::AddressOrder | Placement::ClientChunks => 0,
        };

        if self.placement == Placement::ClientChunks {
            let _ = hint; // advisory only; the TC policy clusters by type
            let key = 1 + seg.0 as u64;
            if let Some(&pid) = inner.chunks.get(&key) {
                let fits =
                    self.pool.with_page(pid, |buf| page::free_space(buf) >= need)?;
                if fits {
                    return Ok((pid, false));
                }
            }
            let pid = self.take_page(inner);
            inner.chunks.insert(key, pid);
            inner.segs[0].pages.push(pid);
            return Ok((pid, true));
        }

        if let Some(pid) = inner.segs[seg_idx].open_page {
            let fits = self.pool.with_page(pid, |buf| page::free_space(buf) >= need)?;
            if fits {
                return Ok((pid, false));
            }
        }
        let pid = self.take_page(inner);
        inner.segs[seg_idx].open_page = Some(pid);
        inner.segs[seg_idx].pages.push(pid);
        Ok((pid, true))
    }

    fn write_record(
        &self,
        inner: &mut HeapInner,
        seg: SegmentId,
        hint: ClusterHint,
        stored: &[u8],
    ) -> Result<(PageId, Slot)> {
        let (pid, fresh) = self.placement_page(inner, seg, hint, stored.len())?;
        let slot = if fresh {
            self.pool.with_new_page(pid, |buf| {
                page::init(buf);
                page::insert(buf, stored)
            })?
        } else {
            self.pool.with_page_mut(pid, |buf| page::insert(buf, stored))?
        };
        match slot {
            Some(s) => Ok((pid, s)),
            None => Err(StorageError::Corrupt(format!(
                "placement chose page {pid} without room for {} bytes",
                stored.len()
            ))),
        }
    }

    /// Write an overflow chain for `payload`, returning the 16-byte header
    /// record to store in the object's slot.
    fn write_overflow(&self, inner: &mut HeapInner, payload: &[u8]) -> Result<Vec<u8>> {
        let mut chunk_pages: Vec<PageId> = Vec::new();
        let n = payload.len().div_ceil(OVERFLOW_CAP).max(1);
        for _ in 0..n {
            chunk_pages.push(self.take_page(inner));
        }
        for (i, chunk) in payload.chunks(OVERFLOW_CAP).enumerate() {
            let next = chunk_pages.get(i + 1).map_or(NO_PAGE, |p| p.0);
            let pid = chunk_pages[i];
            self.pool.with_new_page(pid, |buf| {
                buf[0..4].copy_from_slice(&next.to_le_bytes());
                buf[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                buf[8..8 + chunk.len()].copy_from_slice(chunk);
            })?;
        }
        if payload.is_empty() {
            // n was forced to 1; write an empty chunk page.
            let pid = chunk_pages[0];
            self.pool.with_new_page(pid, |buf| {
                buf[0..4].copy_from_slice(&NO_PAGE.to_le_bytes());
                buf[4..8].copy_from_slice(&0u32.to_le_bytes());
            })?;
        }
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(&OVERFLOW_MARKER.to_le_bytes());
        header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        header.extend_from_slice(&chunk_pages[0].0.to_le_bytes());
        header.extend_from_slice(&(chunk_pages.len() as u32).to_le_bytes());
        Ok(header)
    }

    fn read_overflow(&self, header: &[u8]) -> Result<Vec<u8>> {
        if header.len() < 16 {
            return Err(StorageError::Corrupt("short overflow header".into()));
        }
        let total = le_u32_at(header, 4)? as usize;
        let mut pid = le_u32_at(header, 8)?;
        // The header records the chain length; a corrupt next-pointer
        // that slipped past page verification must not walk (or loop)
        // beyond it.
        let chunk_count = le_u32_at(header, 12)?;
        let mut hops = 0u32;
        let mut out = Vec::with_capacity(total.min(64 * 1024 * 1024));
        while pid != NO_PAGE {
            if hops >= chunk_count {
                return Err(StorageError::Corrupt(format!(
                    "overflow chain exceeds its recorded {chunk_count} chunk pages"
                )));
            }
            hops += 1;
            let (next, chunk) = self.pool.with_page(PageId(pid), |buf| {
                let next = le_u32_at(buf, 0)?;
                let len = le_u32_at(buf, 4)? as usize;
                Ok::<_, StorageError>((next, buf[8..8 + len.min(OVERFLOW_CAP)].to_vec()))
            })??;
            out.extend_from_slice(&chunk);
            pid = next;
        }
        if out.len() != total {
            return Err(StorageError::Corrupt(format!(
                "overflow chain yielded {} bytes, expected {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn free_overflow(&self, inner: &mut HeapInner, header: &[u8]) -> Result<()> {
        let mut pid = le_u32_at(header, 8)?;
        let chunk_count = le_u32_at(header, 12)?;
        let mut hops = 0u32;
        while pid != NO_PAGE {
            if hops >= chunk_count {
                return Err(StorageError::Corrupt(format!(
                    "overflow chain exceeds its recorded {chunk_count} chunk pages"
                )));
            }
            hops += 1;
            let next = self.pool.with_page(PageId(pid), |buf| le_u32_at(buf, 0))??;
            inner.free_pages.push(PageId(pid));
            pid = next;
        }
        Ok(())
    }

    fn is_overflow(stored: &[u8]) -> bool {
        stored.len() >= 4
            && u32::from_le_bytes([stored[0], stored[1], stored[2], stored[3]]) == OVERFLOW_MARKER
    }

    /// Allocate a new object. `hint` matters only under
    /// [`Placement::ClientChunks`]; `seg` only under [`Placement::Segments`].
    pub fn alloc(&self, seg: SegmentId, hint: ClusterHint, payload: &[u8]) -> Result<Oid> {
        let mut inner = self.table_write();
        let stored_len = self.stored_len(payload.len());
        let stored = if stored_len > page::MAX_RECORD {
            self.write_overflow(&mut inner, payload)?
        } else {
            self.encode(payload)
        };
        let (pid, slot) = self.write_record(&mut inner, seg, hint, &stored)?;
        let oid = Oid::from_raw(inner.next_oid);
        inner.next_oid += 1;
        inner.table.insert(oid.raw(), Loc { page: pid, slot, seg });
        StorageStats::bump(&self.stats.allocs, 1);
        StorageStats::bump(&self.stats.bytes_allocated, payload.len() as u64);
        Ok(oid)
    }

    /// Re-create an object under a specific oid (WAL recovery path).
    pub fn alloc_with_oid(
        &self,
        oid: Oid,
        seg: SegmentId,
        hint: ClusterHint,
        payload: &[u8],
    ) -> Result<()> {
        let mut inner = self.table_write();
        let stored_len = self.stored_len(payload.len());
        let stored = if stored_len > page::MAX_RECORD {
            self.write_overflow(&mut inner, payload)?
        } else {
            self.encode(payload)
        };
        let (pid, slot) = self.write_record(&mut inner, seg, hint, &stored)?;
        inner.table.insert(oid.raw(), Loc { page: pid, slot, seg });
        if oid.raw() >= inner.next_oid {
            inner.next_oid = oid.raw() + 1;
        }
        Ok(())
    }

    /// Crash-recovery write: (re)bind `oid` to `payload` at a freshly
    /// chosen location, never touching the location the table currently
    /// maps it to.
    ///
    /// Replay runs against page images of unknown vintage — any page may
    /// hold its checkpoint-era bytes or a later flush from the crashed
    /// run — so the old slot may already be dead, or reused by an object
    /// replay itself just placed. `page::remove` there (as
    /// [`Heap::update`] does) could destroy live data. Instead the old
    /// slot and any overflow chain are deliberately leaked: the next
    /// checkpoint's metadata simply stops referencing them.
    ///
    /// `seg` of `None` keeps the object's current segment (falling back
    /// to [`SegmentId::DEFAULT`] if the table has no entry).
    pub fn recover_upsert(
        &self,
        oid: Oid,
        seg: Option<SegmentId>,
        hint: ClusterHint,
        payload: &[u8],
    ) -> Result<()> {
        let mut inner = self.table_write();
        let seg = seg
            .or_else(|| inner.table.get(&oid.raw()).map(|l| l.seg))
            .unwrap_or(SegmentId::DEFAULT);
        inner.table.remove(&oid.raw());
        let stored_len = self.stored_len(payload.len());
        let stored = if stored_len > page::MAX_RECORD {
            self.write_overflow(&mut inner, payload)?
        } else {
            self.encode(payload)
        };
        let (pid, slot) = self.write_record(&mut inner, seg, hint, &stored)?;
        inner.table.insert(oid.raw(), Loc { page: pid, slot, seg });
        if oid.raw() >= inner.next_oid {
            inner.next_oid = oid.raw() + 1;
        }
        Ok(())
    }

    /// Crash-recovery delete: drop the table entry without touching the
    /// page image (see [`Heap::recover_upsert`] for why the slot and any
    /// overflow chain must be leaked rather than reclaimed).
    pub fn recover_free(&self, oid: Oid) {
        self.table_write().table.remove(&oid.raw());
    }

    /// Raise the oid allocator so no future allocation hands out an id
    /// below `next`. Recovery calls this with one past the highest oid
    /// seen in the log — including oids of transactions that did *not*
    /// commit — so a recovered store can never recycle an oid the crashed
    /// run already reported to a client.
    pub fn reserve_oid_floor(&self, next: u64) {
        let mut inner = self.table_write();
        if next > inner.next_oid {
            inner.next_oid = next;
        }
    }

    /// Read an object's payload. The shared guard is held across the page
    /// (and overflow-chain) access: a concurrent relocating update would
    /// otherwise free the slot — or recycle the chain pages — between the
    /// table lookup and the read.
    pub fn read(&self, oid: Oid) -> Result<Vec<u8>> {
        let inner = self.table_read();
        let loc = *inner.table.get(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
        StorageStats::bump(&self.stats.reads, 1);
        let stored = self.pool.with_page(loc.page, |buf| {
            page::read(buf, loc.slot).map(|s| s.to_vec())
        })?;
        let stored = stored.ok_or_else(|| {
            StorageError::Corrupt(format!("object table points at dead slot for {oid}"))
        })?;
        if Self::is_overflow(&stored) {
            self.read_overflow(&stored)
        } else {
            self.decode(&stored)
        }
    }

    /// Overwrite an object's payload. The oid is stable even if the object
    /// moves to another page.
    pub fn update(&self, oid: Oid, payload: &[u8]) -> Result<()> {
        let mut inner = self.table_write();
        let loc = *inner.table.get(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
        StorageStats::bump(&self.stats.updates, 1);

        let old_stored = self
            .pool
            .with_page(loc.page, |buf| page::read(buf, loc.slot).map(|s| s.to_vec()))?
            .ok_or_else(|| {
                StorageError::Corrupt(format!("object table points at dead slot for {oid}"))
            })?;
        let was_overflow = Self::is_overflow(&old_stored);

        let stored_len = self.stored_len(payload.len());
        let new_stored = if stored_len > page::MAX_RECORD {
            self.write_overflow(&mut inner, payload)?
        } else {
            self.encode(payload)
        };
        if was_overflow {
            self.free_overflow(&mut inner, &old_stored)?;
        }

        // Try in place (page::update relocates within the page if needed).
        let ok = self.pool.with_page_mut(loc.page, |buf| page::update(buf, loc.slot, &new_stored))?;
        if ok {
            return Ok(());
        }
        // Move to a fresh location in the object's original segment.
        self.pool.with_page_mut(loc.page, |buf| page::remove(buf, loc.slot))?;
        let (pid, slot) = self.write_record(&mut inner, loc.seg, ClusterHint::NONE, &new_stored)?;
        inner.table.insert(oid.raw(), Loc { page: pid, slot, seg: loc.seg });
        Ok(())
    }

    /// Delete an object.
    pub fn free(&self, oid: Oid) -> Result<()> {
        let mut inner = self.table_write();
        let loc = inner
            .table
            .remove(&oid.raw())
            .ok_or(StorageError::UnknownObject(oid))?;
        let stored = self
            .pool
            .with_page(loc.page, |buf| page::read(buf, loc.slot).map(|s| s.to_vec()))?;
        if let Some(stored) = stored {
            if Self::is_overflow(&stored) {
                self.free_overflow(&mut inner, &stored)?;
            }
        }
        self.pool.with_page_mut(loc.page, |buf| page::remove(buf, loc.slot))?;
        Ok(())
    }

    /// Segment the object currently lives in, if it exists.
    pub fn segment_of(&self, oid: Oid) -> Option<SegmentId> {
        self.table_read().table.get(&oid.raw()).map(|l| l.seg)
    }

    /// Whether an object exists.
    pub fn exists(&self, oid: Oid) -> bool {
        self.table_read().table.contains_key(&oid.raw())
    }

    /// Number of live objects.
    pub fn object_count(&self) -> usize {
        self.table_read().table.len()
    }

    /// Snapshot of all live oids (diagnostics / scans).
    pub fn oids(&self) -> Vec<Oid> {
        let inner = self.table_read();
        let mut v: Vec<Oid> = inner.table.keys().map(|&k| Oid::from_raw(k)).collect();
        v.sort_unstable();
        v
    }

    /// Pages owned by each segment (for size reporting).
    pub fn segment_pages(&self) -> Vec<usize> {
        self.table_read().segs.iter().map(|s| s.pages.len()).collect()
    }

    /// Stop routing placement through any of `bad` pages: clear them
    /// from segment open pages and chunk targets. The recovery verify
    /// pass calls this for quarantined pages so allocation never faults
    /// on a damaged image (quarantined pages on the free list are fine —
    /// reuse rewrites them wholesale without a read, which heals them).
    pub fn demote_pages(&self, bad: &[PageId]) {
        if bad.is_empty() {
            return;
        }
        let mut inner = self.table_write();
        for seg in inner.segs.iter_mut() {
            if seg.open_page.is_some_and(|p| bad.contains(&p)) {
                seg.open_page = None;
            }
        }
        inner.chunks.retain(|_, p| !bad.contains(p));
    }

    /// Oids whose record (or overflow header) lives on one of `pages`.
    /// The recovery verify pass uses this to report which objects a
    /// quarantined page takes down with it.
    pub fn oids_on_pages(&self, pages: &[PageId]) -> Vec<Oid> {
        let inner = self.table_read();
        let mut v: Vec<Oid> = inner
            .table
            .iter()
            .filter(|(_, loc)| pages.contains(&loc.page))
            .map(|(&k, _)| Oid::from_raw(k))
            .collect();
        v.sort_unstable();
        v
    }

    // ---- metadata (de)hydration for checkpointing -------------------------

    /// Serialize the heap metadata (object table, segment page lists,
    /// free list, oid counter) for the meta file.
    pub fn dump_meta(&self, out: &mut Vec<u8>) {
        let inner = self.table_read();
        out.extend_from_slice(&inner.next_oid.to_le_bytes());
        out.extend_from_slice(&(inner.table.len() as u64).to_le_bytes());
        let mut entries: Vec<(&u64, &Loc)> = inner.table.iter().collect();
        entries.sort_by_key(|(k, _)| **k);
        for (oid, loc) in entries {
            out.extend_from_slice(&oid.to_le_bytes());
            out.extend_from_slice(&loc.page.0.to_le_bytes());
            out.extend_from_slice(&loc.slot.0.to_le_bytes());
            out.push(loc.seg.0);
        }
        out.extend_from_slice(&(inner.segs.len() as u32).to_le_bytes());
        for seg in &inner.segs {
            let open = seg.open_page.map_or(NO_PAGE, |p| p.0);
            out.extend_from_slice(&open.to_le_bytes());
            out.extend_from_slice(&(seg.pages.len() as u32).to_le_bytes());
            for p in &seg.pages {
                out.extend_from_slice(&p.0.to_le_bytes());
            }
        }
        out.extend_from_slice(&(inner.free_pages.len() as u32).to_le_bytes());
        for p in &inner.free_pages {
            out.extend_from_slice(&p.0.to_le_bytes());
        }
    }

    /// Restore heap metadata from [`Heap::dump_meta`] output. Returns the
    /// number of bytes consumed.
    pub fn load_meta(&self, data: &[u8]) -> Result<usize> {
        let mut cur = Cursor { data, at: 0 };
        let next_oid = cur.u64()?;
        let n = cur.u64()? as usize;
        let mut table = HashMap::with_capacity(n);
        for _ in 0..n {
            let oid = cur.u64()?;
            let page = PageId(cur.u32()?);
            let slot = Slot(cur.u16()?);
            let seg = SegmentId(cur.u8()?);
            table.insert(oid, Loc { page, slot, seg });
        }
        let nsegs = cur.u32()? as usize;
        let mut segs = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            let open = cur.u32()?;
            let open_page = if open == NO_PAGE { None } else { Some(PageId(open)) };
            let npages = cur.u32()? as usize;
            let mut pages = Vec::with_capacity(npages);
            for _ in 0..npages {
                pages.push(PageId(cur.u32()?));
            }
            segs.push(SegState { open_page, pages });
        }
        let nfree = cur.u32()? as usize;
        let mut free_pages = Vec::with_capacity(nfree);
        for _ in 0..nfree {
            free_pages.push(PageId(cur.u32()?));
        }
        let mut inner = self.table_write();
        inner.next_oid = next_oid;
        inner.table = table;
        inner.segs = segs;
        inner.free_pages = free_pages;
        inner.chunks.clear(); // chunks are a placement cache; safe to drop
        Ok(cur.at)
    }
}

/// Read a little-endian `u32` at `at`, with a typed error on short input.
fn le_u32_at(buf: &[u8], at: usize) -> Result<u32> {
    buf.get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| StorageError::Corrupt("truncated binary field".into()))
}

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.data.len() {
            return Err(StorageError::Corrupt("truncated heap metadata".into()));
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| StorageError::Corrupt("truncated heap metadata".into()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.arr()?))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.arr()?))
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.arr()?))
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.arr::<1>()?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(name: &str, placement: Placement, segs: u8, cap: usize) -> (Heap, Arc<StorageStats>) {
        let dir = std::env::temp_dir().join(format!("lfs-heap-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = crate::vfs::RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), cap, false));
        (Heap::new(pool, file, stats.clone(), placement, segs, 0, 1), stats)
    }

    #[test]
    fn alloc_read_update_free_cycle() {
        let (h, _) = heap("cycle", Placement::Segments, 2, 16);
        let a = h.alloc(SegmentId(0), ClusterHint::NONE, b"first").unwrap();
        let b = h.alloc(SegmentId(1), ClusterHint::NONE, b"second").unwrap();
        assert_eq!(h.read(a).unwrap(), b"first");
        assert_eq!(h.read(b).unwrap(), b"second");
        h.update(a, b"first, updated to a longer value").unwrap();
        assert_eq!(h.read(a).unwrap(), b"first, updated to a longer value");
        h.free(a).unwrap();
        assert!(matches!(h.read(a), Err(StorageError::UnknownObject(_))));
        assert!(h.exists(b));
        assert_eq!(h.object_count(), 1);
    }

    #[test]
    fn unknown_segment_rejected_under_segment_placement() {
        let (h, _) = heap("badseg", Placement::Segments, 2, 8);
        let err = h.alloc(SegmentId(5), ClusterHint::NONE, b"x").unwrap_err();
        assert!(matches!(err, StorageError::UnknownSegment(5)));
        // Address-order placement ignores the segment id entirely.
        let (h2, _) = heap("badseg2", Placement::AddressOrder, 1, 8);
        assert!(h2.alloc(SegmentId(5), ClusterHint::NONE, b"x").is_ok());
    }

    #[test]
    fn segments_separate_pages_address_order_interleaves() {
        let (h, _) = heap("segsep", Placement::Segments, 2, 64);
        for i in 0..50u32 {
            let seg = SegmentId((i % 2) as u8);
            h.alloc(seg, ClusterHint::NONE, &i.to_le_bytes()).unwrap();
        }
        let seg_pages = h.segment_pages();
        assert_eq!(seg_pages.len(), 2);
        assert!(seg_pages[0] >= 1 && seg_pages[1] >= 1);

        let (h2, _) = heap("addr", Placement::AddressOrder, 1, 64);
        for i in 0..50u32 {
            h2.alloc(SegmentId(0), ClusterHint::NONE, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(h2.segment_pages().len(), 1);
    }

    #[test]
    fn client_chunks_cluster_by_type() {
        let (h, stats) = heap("chunks", Placement::ClientChunks, 1, 256);
        // Two interleaved "types" (hot records vs cold payloads): with
        // client chunks, each type's objects share that type's pages,
        // even though the underlying store has only one segment.
        let mut hot = Vec::new();
        for i in 0..40u32 {
            hot.push(h.alloc(SegmentId(1), ClusterHint::NONE, &[1u8; 40]).unwrap());
            h.alloc(SegmentId(3), ClusterHint::NONE, &[2u8; 900]).unwrap();
            let _ = i;
        }
        // Reading the hot type touches very few pages: 40 × 44B ≈ 1 page.
        let before = stats.snapshot();
        for &oid in &hot {
            h.read(oid).unwrap();
        }
        let after = stats.snapshot();
        assert!(
            after.delta(&before).faults <= 2,
            "type-clustered hot reads should touch ~1 page, got {} faults",
            after.delta(&before).faults
        );
        // The same interleaving in address order dilutes the hot records
        // across all pages.
        let (h2, stats2) = heap("chunks-ao", Placement::AddressOrder, 1, 256);
        let mut hot2 = Vec::new();
        for _ in 0..40 {
            hot2.push(h2.alloc(SegmentId(1), ClusterHint::NONE, &[1u8; 40]).unwrap());
            h2.alloc(SegmentId(3), ClusterHint::NONE, &[2u8; 900]).unwrap();
        }
        h2.pool.clear().unwrap();
        let before = stats2.snapshot();
        for &oid in &hot2 {
            h2.read(oid).unwrap();
        }
        let after = stats2.snapshot();
        assert!(
            after.delta(&before).faults >= 8,
            "address-order hot reads should scatter, got {} faults",
            after.delta(&before).faults
        );
    }

    #[test]
    fn overflow_round_trip_and_free() {
        let (h, _) = heap("ovfl", Placement::Segments, 1, 32);
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &big).unwrap();
        assert_eq!(h.read(oid).unwrap(), big);

        // Update overflow -> still overflow.
        let bigger: Vec<u8> = (0..30_000u32).map(|i| (i % 13) as u8).collect();
        h.update(oid, &bigger).unwrap();
        assert_eq!(h.read(oid).unwrap(), bigger);

        // Update overflow -> inline.
        h.update(oid, b"now small").unwrap();
        assert_eq!(h.read(oid).unwrap(), b"now small");

        // Update inline -> overflow.
        h.update(oid, &big).unwrap();
        assert_eq!(h.read(oid).unwrap(), big);

        h.free(oid).unwrap();
        assert!(!h.exists(oid));
    }

    #[test]
    fn freed_overflow_pages_are_reused() {
        let (h, _) = heap("reuse", Placement::Segments, 1, 32);
        let big = vec![5u8; 15_000];
        let a = h.alloc(SegmentId(0), ClusterHint::NONE, &big).unwrap();
        h.free(a).unwrap();
        let pages_before = h.segment_pages()[0];
        let b = h.alloc(SegmentId(0), ClusterHint::NONE, &big).unwrap();
        assert_eq!(h.read(b).unwrap(), big);
        // New chain should have drawn from the free list, not grown the file.
        let _ = pages_before; // segment page list tracks only record pages
        let inner_free = {
            let guard = h.inner.read();
            guard.free_pages.len()
        };
        assert!(inner_free < 4, "free list should have been consumed");
    }

    #[test]
    fn per_object_overhead_inflates_stored_size() {
        let dir = std::env::temp_dir().join(format!("lfs-heap-{}-ovh", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = crate::vfs::RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), 16, false));
        let fat = Heap::new(pool, file, stats, Placement::AddressOrder, 1, 24, 16);
        assert_eq!(fat.stored_len(100), 128); // 4+24+100=128, aligned
        let oid = fat.alloc(SegmentId(0), ClusterHint::NONE, &[9u8; 100]).unwrap();
        assert_eq!(fat.read(oid).unwrap(), vec![9u8; 100]);
    }

    #[test]
    fn meta_dump_load_round_trip() {
        let (h, _) = heap("meta", Placement::Segments, 3, 16);
        let mut oids = Vec::new();
        for i in 0..30u32 {
            let seg = SegmentId((i % 3) as u8);
            oids.push(h.alloc(seg, ClusterHint::NONE, &i.to_le_bytes()).unwrap());
        }
        h.free(oids[7]).unwrap();
        let mut meta = Vec::new();
        h.dump_meta(&mut meta);

        // Fresh heap over the same pool/file state.
        let consumed = h.load_meta(&meta).unwrap();
        assert_eq!(consumed, meta.len());
        for (i, &oid) in oids.iter().enumerate() {
            if i == 7 {
                assert!(!h.exists(oid));
            } else {
                assert_eq!(h.read(oid).unwrap(), (i as u32).to_le_bytes());
            }
        }
        // Oid counter restored: new allocations do not collide.
        let fresh = h.alloc(SegmentId(0), ClusterHint::NONE, b"post").unwrap();
        assert!(fresh.raw() > oids.last().unwrap().raw());
    }

    #[test]
    fn load_meta_rejects_truncated_input() {
        let (h, _) = heap("trunc", Placement::Segments, 1, 8);
        h.alloc(SegmentId(0), ClusterHint::NONE, b"x").unwrap();
        let mut meta = Vec::new();
        h.dump_meta(&mut meta);
        let err = h.load_meta(&meta[..meta.len() - 3]).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn update_nonexistent_and_free_nonexistent_fail() {
        let (h, _) = heap("missing", Placement::Segments, 1, 8);
        let ghost = Oid::from_raw(999);
        assert!(matches!(h.update(ghost, b"x"), Err(StorageError::UnknownObject(_))));
        assert!(matches!(h.free(ghost), Err(StorageError::UnknownObject(_))));
    }

    #[test]
    fn concurrent_reads_race_relocating_updates() {
        // Regression: readers must hold the heap's shared guard across
        // the page access, or a relocating update frees the slot (and may
        // recycle it) between their table lookup and their page read.
        let (h, _) = heap("race", Placement::Segments, 1, 64);
        let small = vec![7u8; 100];
        let large = vec![9u8; 3000];
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &small).unwrap();
        // Fill the page so growth forces relocation.
        for _ in 0..8 {
            h.alloc(SegmentId(0), ClusterHint::NONE, &[1u8; 400]).unwrap();
        }
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..2_000 {
                    let payload = if i % 2 == 0 { &large } else { &small };
                    h.update(oid, payload).unwrap();
                }
            });
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(|| {
                    for _ in 0..2_000 {
                        let got = h.read(oid).unwrap();
                        assert!(
                            got == small || got == large,
                            "reader saw a torn/foreign payload of {} bytes",
                            got.len()
                        );
                    }
                }));
            }
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
    }

    #[test]
    fn many_objects_survive_tiny_pool() {
        let (h, _) = heap("tiny", Placement::AddressOrder, 1, 2);
        let mut oids = Vec::new();
        for i in 0..500u32 {
            oids.push(h.alloc(SegmentId(0), ClusterHint::NONE, &i.to_le_bytes()).unwrap());
        }
        for (i, &oid) in oids.iter().enumerate() {
            assert_eq!(h.read(oid).unwrap(), (i as u32).to_le_bytes());
        }
    }
}
