//! The object heap: variable-size objects on slotted pages, with an
//! object table, placement segments, client-clustering chunks, and
//! overflow chains for objects larger than a page.
//!
//! The heap is policy-parameterized so one implementation serves both
//! storage-manager personalities:
//!
//! * **segment placement** (ObjectStore-like): each [`SegmentId`] appends
//!   to its own run of pages, so co-segment objects share pages;
//! * **address-order placement** (Texas-like): a single segment, every
//!   allocation appended to the current end of the heap — interleaving
//!   whatever the client happens to allocate next, which is exactly the
//!   locality problem the paper measures;
//! * **client chunks** (Texas+TC): the client-code clustering of the
//!   paper's "Texas+TC" version — the client routes each allocation to a
//!   per-type chunk (keyed on the segment id the storage manager itself
//!   ignores), recovering most of the locality control ObjectStore's
//!   segments provide natively.
//!
//! Per-object overhead (`extra_header` + `align`) models the handle /
//! swizzle-entry / alignment cost that made the paper's Texas databases
//! ~48% larger than ObjectStore's.
//!
//! # Sharding
//!
//! Heap metadata is split three ways so concurrent writers stop
//! serializing on one lock (DESIGN.md, "Heap"):
//!
//! * a **global shard** (rank 28), held *shared* by every operation for
//!   its full duration and *exclusive* only by the checkpoint quiesce
//!   ([`Heap::dump_meta`] / [`Heap::load_meta`]);
//! * [`TABLE_SHARDS`] **object-table shards** (rank 30), oid-hashed like
//!   the lock manager's 32-way split — taken only by writers and by
//!   transactional own-write reads; committed-state readers resolve
//!   version chains through the lock-free most-recent view instead
//!   (see below) and never touch these shards;
//! * one **placement shard per segment** (rank 32): open page, page
//!   list, free list, and chunk map, so writers in different segments
//!   allocate without touching each other's locks.
//!
//! # The lock-free most-recent view
//!
//! Every committed mutation of an object's version chain also publishes
//! an immutable, committed-versions-only copy of the chain into a
//! per-oid [`AtomicPtr`] slot (a two-level array indexed by oid — no
//! hashing, no locks). `Latest` and snapshot (`At`) reads resolve
//! entirely through these pointers under an epoch pin: the read path
//! acquires *zero* heap locks, so a long analytical scan can never make
//! a writer wait on heap metadata, and vice versa. The table and its
//! epoch-stamped reclamation of displaced chain copies live in the
//! [`labflow_mrv`] crate — the one place in the workspace allowed to
//! use `unsafe` — so this crate keeps `#![forbid(unsafe_code)]`.
//!
//! Every lock is acquired try-first: uncontended acquisitions cost one
//! compare-exchange, contended ones record the blocked time in the
//! calling thread's wait profile ([`crate::waits`]) and the shared
//! [`StorageStats`], plus a per-shard counter for diagnosing *which*
//! shard is hot.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use labflow_mrv::Mrv;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::buffer::BufferPool;
use crate::error::{Result, StorageError};
use crate::ids::{ClusterHint, Oid, PageId, SegmentId, Slot};
use crate::lock_order::{self, Ranked};
use crate::page;
use crate::pagefile::PageFile;
use crate::stats::StorageStats;
use crate::PAGE_PAYLOAD;

/// Number of oid-hashed object-table shards (matches the lock manager).
const TABLE_SHARDS: usize = 32;

/// First stored byte of an inline record. A record's kind is decided by
/// this explicit tag, never by its length word: the old scheme flagged
/// overflow headers with a length of `0xFFFF_FFFF`, which an inline
/// record's length could in principle collide with (and an all-zero
/// region decoded as an empty record instead of an error).
const TAG_INLINE: u8 = 0x1D;
/// First stored byte of an overflow header record.
const TAG_OVERFLOW: u8 = 0x2E;
/// Stored record header: tag byte + payload length word.
const RECORD_HDR: usize = 5;
/// Overflow header record: tag + total length + first page + chunk count.
const OVERFLOW_HDR: usize = 13;

/// Payload capacity of one overflow page: next-pointer + chunk length.
const OVERFLOW_CAP: usize = PAGE_PAYLOAD - 8;
/// "No next page" sentinel in overflow chains.
const NO_PAGE: u32 = 0xFFFF_FFFF;

/// Physical location of an object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Loc {
    /// Page holding the object's record (or overflow header).
    pub page: PageId,
    /// Slot within the page.
    pub slot: Slot,
    /// Segment the object was placed in.
    pub seg: SegmentId,
}

/// What one version of an object holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum VersionBody {
    /// A stored record (inline or overflow header) at this location.
    Data(Loc),
    /// A deletion marker: the object does not exist at this version.
    /// Tombstones occupy no storage — only the chain entry.
    Tombstone,
}

/// One entry in an object's version chain. `txn == 0` means committed
/// (stamped with its commit LSN); `txn != 0` means pending — visible
/// only to that transaction. The chain is newest-first and holds at most
/// one pending version, always at the head (writers are serialised per
/// object by the lock manager's exclusive locks or by single-user mode).
#[derive(Clone, Copy, Debug)]
struct Version {
    body: VersionBody,
    /// Commit LSN (0 for pending versions and for pre-history versions
    /// loaded from a checkpoint, which every snapshot can see).
    lsn: u64,
    /// Owning transaction while pending; 0 once committed.
    txn: u64,
}

/// Soft bound on committed versions per chain: commits trim beyond this
/// many where the GC floor allows, so hot objects do not accumulate
/// unbounded history between checkpoints.
const MAX_CHAIN: usize = 8;

/// Visibility rule a read resolves the chain under.
#[derive(Clone, Copy, Debug)]
enum Vis {
    /// Newest committed version.
    Latest,
    /// Newest version committed at or before this LSN (snapshot read).
    At(u64),
    /// This transaction's own pending version if any, else latest
    /// committed.
    For(u64),
}

/// Reader-slot value meaning "not inside any read-side critical section".
const EPOCH_IDLE: u64 = u64::MAX;

/// Distinguishes heaps in the per-thread reader-slot cache.
static NEXT_HEAP_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's reader slot, one per heap it has read from. The
    /// slot itself lives in the heap's registry (an `Arc`); the cache
    /// just avoids re-locking the registry on every read.
    static READER_SLOTS: RefCell<HashMap<u64, Arc<AtomicU64>>> =
        RefCell::new(HashMap::new());
}

/// State behind the heap's epoch lock: the reader-slot registry and the
/// unlinked version locations awaiting an epoch-synchronised free.
struct EpochState {
    /// Every reader slot registered by a thread that has read this heap.
    /// Slots of exited threads stay behind parked at `EPOCH_IDLE`, which
    /// the GC wait treats as "not reading" — a small, harmless leak.
    slots: Vec<Arc<AtomicU64>>,
    /// Version locations unlinked from their chains but not yet freed:
    /// a latch-free reader may still hold a pointer into them until the
    /// next epoch synchronisation.
    condemned: Vec<Loc>,
}

/// Read-side epoch guard: while alive, version GC cannot free any
/// version location resolved after the pin. Dropping restores the
/// slot's previous value, so nested pins compose.
struct EpochPin {
    slot: Arc<AtomicU64>,
    prev: u64,
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.slot.store(self.prev, Ordering::SeqCst);
    }
}

/// An immutable, committed-versions-only copy of one object's chain,
/// published into the lock-free most-recent view ([`labflow_mrv::Mrv`])
/// for latch-free readers.
type ViewChain = Vec<Version>;

/// How allocations are placed onto pages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Placement {
    /// One open page per segment; the client controls locality by
    /// choosing segments (ObjectStore-style).
    Segments,
    /// Strict address order in a single heap; segment ids and hints are
    /// accepted but ignored (Texas-style).
    AddressOrder,
    /// Client-side chunk clustering (Texas+TC-style): allocations are
    /// grouped into chunks keyed on the segment id, which the underlying
    /// Texas store ignores — i.e. the client reimplements type-level
    /// placement above an uncooperative store. Unlike
    /// [`Placement::Segments`], any segment id is accepted (the "schema"
    /// of chunks lives in client code, not the store).
    ClientChunks,
}

/// One segment's placement state: everything an allocation in that
/// segment needs, and nothing any other segment touches.
struct SegPlace {
    open_page: Option<PageId>,
    pages: Vec<PageId>,
    /// Client-chunk targets (used only on segment 0 under
    /// [`Placement::ClientChunks`]; a placement cache, safe to drop).
    chunks: HashMap<u64, PageId>,
    /// Pages reclaimed from freed overflow chains, awaiting reuse by
    /// this segment. Reuse rewrites a page wholesale without reading it,
    /// which also heals quarantined pages.
    free_pages: Vec<PageId>,
}

struct SegShard {
    place: Mutex<SegPlace>,
    waits: AtomicU64,
}

impl SegShard {
    fn new(place: SegPlace) -> Self {
        SegShard { place: Mutex::new(place), waits: AtomicU64::new(0) }
    }

    fn empty() -> Self {
        SegShard::new(SegPlace {
            open_page: None,
            pages: Vec::new(),
            chunks: HashMap::new(),
            free_pages: Vec::new(),
        })
    }
}

struct TableShard {
    map: RwLock<HashMap<u64, Vec<Version>>>,
    waits: AtomicU64,
}

/// State owned by the global shard: the segment roster. Held shared by
/// every heap operation, exclusive only by the checkpoint quiesce and
/// roster replacement in [`Heap::load_meta`].
struct HeapGlobal {
    segs: Vec<SegShard>,
}

/// Contended-acquisition counts per heap shard (diagnostics: which
/// shard is hot under a given workload).
#[derive(Debug, Clone, Default)]
pub struct HeapContention {
    /// Contended acquisitions of the global shard.
    pub global: u64,
    /// Contended acquisitions per object-table shard.
    pub table_shards: Vec<u64>,
    /// Contended acquisitions per segment placement lock.
    pub segments: Vec<u64>,
}

/// The object heap. Thread-safe; metadata sharded by oid (object table)
/// and by segment (placement state) under a global quiesce lock, page
/// contents behind the buffer pool's own lock.
///
/// Each object maps to a newest-first chain of [`Version`]s. Committed
/// versions are immutable on disk: updates always write a fresh record
/// and publish it with a brief table-shard write, never mutating or
/// freeing a committed slot in place. Every committed mutation also
/// mirrors the chain into the lock-free most-recent view, so
/// committed-state readers go fully *latch-free*: they pin the
/// reclamation epoch, load the chain from a per-oid atomic pointer,
/// resolve a version location, and read the page — acquiring no heap
/// lock at any point. Unlinked versions (and displaced view chains) are
/// freed only once the epoch discipline proves no reader can still hold
/// them.
pub struct Heap {
    pool: Arc<BufferPool>,
    file: Arc<PageFile>,
    stats: Arc<StorageStats>,
    global: RwLock<HeapGlobal>,
    global_waits: AtomicU64,
    table: Vec<TableShard>,
    next_oid: AtomicU64,
    placement: Placement,
    extra_header: usize,
    align: usize,
    /// Identity in the per-thread reader-slot cache.
    heap_id: u64,
    /// The reclamation epoch: bumped by GC after unlinking versions.
    epoch: AtomicU64,
    /// Reader-slot registry plus condemned version locations.
    epoch_state: Mutex<EpochState>,
    /// Lock-free most-recent view (committed chains only); see the
    /// module docs.
    view: Mrv<ViewChain>,
}

impl Heap {
    /// Create an empty heap with `segments` placement segments.
    pub fn new(
        pool: Arc<BufferPool>,
        file: Arc<PageFile>,
        stats: Arc<StorageStats>,
        placement: Placement,
        segments: u8,
        extra_header: usize,
        align: usize,
    ) -> Self {
        let segs = (0..segments.max(1)).map(|_| SegShard::empty()).collect();
        let table = (0..TABLE_SHARDS)
            .map(|_| TableShard { map: RwLock::new(HashMap::new()), waits: AtomicU64::new(0) })
            .collect();
        Heap {
            pool,
            file,
            stats,
            global: RwLock::new(HeapGlobal { segs }),
            global_waits: AtomicU64::new(0),
            table,
            next_oid: AtomicU64::new(1),
            placement,
            extra_header,
            align: align.max(1),
            heap_id: NEXT_HEAP_ID.fetch_add(1, Ordering::Relaxed),
            epoch: AtomicU64::new(0),
            epoch_state: Mutex::new(EpochState { slots: Vec::new(), condemned: Vec::new() }),
            view: Mrv::new(),
        }
    }

    // ---- shard acquisition ------------------------------------------------

    /// Shared hold on the global shard, taken first by every operation.
    /// Cheap (read-read never contends); its sole purpose is to let the
    /// checkpoint quiesce exclude all operations at once.
    fn global_read(&self) -> Ranked<RwLockReadGuard<'_, HeapGlobal>> {
        lock_order::ranked(lock_order::HEAP_GLOBAL, || {
            contended(&self.stats, &self.global_waits, || self.global.try_read(), || {
                self.global.read()
            })
        })
    }

    /// Exclusive hold on the global shard: a full quiesce. Every
    /// operation holds the global shard shared for its whole duration,
    /// so once this returns no operation is in flight and no shard can
    /// change until it drops.
    fn global_write(&self) -> Ranked<RwLockWriteGuard<'_, HeapGlobal>> {
        lock_order::ranked(lock_order::HEAP_GLOBAL, || {
            contended(&self.stats, &self.global_waits, || self.global.try_write(), || {
                self.global.write()
            })
        })
    }

    fn table_shard(&self, oid: u64) -> &TableShard {
        &self.table[(oid % TABLE_SHARDS as u64) as usize]
    }

    /// Shared access to the object-table shard owning `oid`,
    /// rank-checked: the guard may be held across buffer-pool and
    /// page-file acquisitions (higher ranks) but never the other way
    /// around.
    fn table_read(&self, oid: u64) -> Ranked<RwLockReadGuard<'_, HashMap<u64, Vec<Version>>>> {
        let sh = self.table_shard(oid);
        lock_order::ranked(lock_order::HEAP_TABLE, || {
            contended(&self.stats, &sh.waits, || sh.map.try_read(), || sh.map.read())
        })
    }

    /// Exclusive access to the object-table shard owning `oid`.
    fn table_write(&self, oid: u64) -> Ranked<RwLockWriteGuard<'_, HashMap<u64, Vec<Version>>>> {
        let sh = self.table_shard(oid);
        lock_order::ranked(lock_order::HEAP_TABLE, || {
            contended(&self.stats, &sh.waits, || sh.map.try_write(), || sh.map.write())
        })
    }

    /// Exclusive access to one segment's placement state.
    fn seg_lock<'g>(&self, g: &'g HeapGlobal, idx: usize) -> Ranked<MutexGuard<'g, SegPlace>> {
        let sh = &g.segs[idx];
        lock_order::ranked(lock_order::HEAP_SEGMENT, || {
            contended(&self.stats, &sh.waits, || sh.place.try_lock(), || sh.place.lock())
        })
    }

    /// The heap's epoch state (reader-slot registry + condemned list).
    /// Deliberately *not* wait-attributed: pushes here are bookkeeping,
    /// not part of the object-table / placement contention story.
    fn epoch_lock(&self) -> Ranked<MutexGuard<'_, EpochState>> {
        lock_order::ranked(lock_order::HEAP_EPOCH, || self.epoch_state.lock())
    }

    // ---- epoch-based reclamation ------------------------------------------

    /// Pin the reclamation epoch for the calling thread: until the
    /// returned guard drops, version GC will not free any version
    /// location this thread resolves. The fast path is two atomic
    /// stores on a thread-cached slot; the registry lock is touched only
    /// on a thread's first read of this heap.
    fn pin_epoch(&self) -> EpochPin {
        let slot = READER_SLOTS.with(|m| {
            let mut m = m.borrow_mut();
            if let Some(s) = m.get(&self.heap_id) {
                return s.clone();
            }
            let s = Arc::new(AtomicU64::new(EPOCH_IDLE));
            self.epoch_lock().slots.push(s.clone());
            m.insert(self.heap_id, s.clone());
            s
        });
        // analyzer: allow(ordering, "own-slot read: only this thread stores non-IDLE values here, and the publish loop below re-syncs with the epoch at SeqCst")
        let prev = slot.load(Ordering::Relaxed);
        if prev == EPOCH_IDLE {
            // Publish-and-recheck: if GC bumped the epoch between our
            // load and our store, it may not have seen the pin — retry
            // against the new epoch so the wait below never misses us.
            loop {
                let e = self.epoch.load(Ordering::SeqCst);
                slot.store(e, Ordering::SeqCst);
                if self.epoch.load(Ordering::SeqCst) == e {
                    break;
                }
            }
        }
        EpochPin { slot, prev }
    }

    /// Advance the epoch and wait until every reader slot is idle or has
    /// observed the new epoch: after this returns, no reader holds a
    /// version location resolved before the unlinks that preceded the
    /// call. Holds no locks while spinning.
    fn epoch_sync(&self) {
        let target = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        loop {
            let slots = self.epoch_lock().slots.clone();
            if slots.iter().all(|s| {
                let v = s.load(Ordering::SeqCst);
                v == EPOCH_IDLE || v >= target
            }) {
                return;
            }
            std::thread::yield_now();
        }
    }

    // ---- most-recent view maintenance -------------------------------------

    /// Mirror `chain`'s committed versions into the lock-free view (an
    /// empty committed set clears the slot). Call with the owning table
    /// shard held exclusively so publishes per oid are totally ordered
    /// with the map mutation they mirror; the view's internal mutex is
    /// a leaf, safe to touch under any heap lock. Displaced copies are
    /// retired and reclaimed inside [`Mrv`] under its epoch rule.
    fn publish_view(&self, oid: u64, chain: &[Version]) {
        let committed: ViewChain = chain.iter().filter(|v| v.txn == 0).copied().collect();
        let boxed = if committed.is_empty() { None } else { Some(Box::new(committed)) };
        self.view.publish(oid, boxed);
    }

    /// Remove `oid` from the view (object freed). Same calling rules as
    /// [`Heap::publish_view`].
    fn clear_view(&self, oid: u64) {
        self.view.publish(oid, None);
    }

    /// Map a client segment id to the physical segment index under the
    /// current placement policy.
    fn resolve_seg(&self, g: &HeapGlobal, seg: SegmentId) -> Result<usize> {
        match self.placement {
            Placement::Segments => {
                if (seg.0 as usize) >= g.segs.len() {
                    return Err(StorageError::UnknownSegment(seg.0));
                }
                Ok(seg.0 as usize)
            }
            // Texas ignores the client's segments entirely.
            Placement::AddressOrder | Placement::ClientChunks => Ok(0),
        }
    }

    /// Contended-acquisition counts per shard.
    pub fn contention(&self) -> HeapContention {
        let g = self.global_read();
        HeapContention {
            global: self.global_waits.load(Ordering::Relaxed),
            table_shards: self.table.iter().map(|s| s.waits.load(Ordering::Relaxed)).collect(),
            segments: g.segs.iter().map(|s| s.waits.load(Ordering::Relaxed)).collect(),
        }
    }

    // ---- record codec -----------------------------------------------------

    /// Stored size (including simulated per-object overhead) of a payload.
    fn stored_len(&self, payload: usize) -> usize {
        let raw = RECORD_HDR + self.extra_header + payload;
        raw.div_ceil(self.align) * self.align
    }

    fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.stored_len(payload.len())];
        out[0] = TAG_INLINE;
        out[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        let start = RECORD_HDR + self.extra_header;
        out[start..start + payload.len()].copy_from_slice(payload);
        out
    }

    fn decode(&self, stored: &[u8]) -> Result<Vec<u8>> {
        if stored.len() < RECORD_HDR {
            return Err(StorageError::Corrupt("record shorter than header".into()));
        }
        if stored[0] != TAG_INLINE {
            return Err(StorageError::Corrupt(format!("unknown record tag {:#04x}", stored[0])));
        }
        let len = u32::from_le_bytes([stored[1], stored[2], stored[3], stored[4]]) as usize;
        let start = RECORD_HDR + self.extra_header;
        let end = start.checked_add(len).ok_or_else(|| {
            StorageError::Corrupt(format!("record length {len} overflows addressing"))
        })?;
        stored.get(start..end).map(<[u8]>::to_vec).ok_or_else(|| {
            StorageError::Corrupt(format!(
                "record length {len} exceeds stored bytes {}",
                stored.len()
            ))
        })
    }

    fn is_overflow(stored: &[u8]) -> bool {
        stored.first() == Some(&TAG_OVERFLOW)
    }

    /// Build the stored bytes for `payload` — inline, or an overflow
    /// chain written into `place`'s segment with its header returned.
    fn build_stored(&self, place: &mut SegPlace, payload: &[u8]) -> Result<Vec<u8>> {
        // The length word is 32 bits; anything at or above the marker
        // range cannot be represented.
        if payload.len() >= u32::MAX as usize {
            return Err(StorageError::ObjectTooLarge(payload.len()));
        }
        if self.stored_len(payload.len()) > page::MAX_RECORD {
            self.write_overflow(place, payload)
        } else {
            Ok(self.encode(payload))
        }
    }

    // ---- page placement ---------------------------------------------------

    fn take_page(&self, place: &mut SegPlace) -> PageId {
        place.free_pages.pop().unwrap_or_else(|| self.file.allocate_page())
    }

    /// Pick the page an allocation of `need` stored bytes should go to,
    /// opening a new page if necessary. Returns `(page, fresh)`.
    fn placement_page(
        &self,
        place: &mut SegPlace,
        seg: SegmentId,
        hint: ClusterHint,
        need: usize,
    ) -> Result<(PageId, bool)> {
        if self.placement == Placement::ClientChunks {
            let _ = hint; // advisory only; the TC policy clusters by type
            let key = 1 + seg.0 as u64;
            if let Some(&pid) = place.chunks.get(&key) {
                let fits = self.pool.with_page(pid, |buf| page::free_space(buf) >= need)?;
                if fits {
                    return Ok((pid, false));
                }
            }
            let pid = self.take_page(place);
            place.chunks.insert(key, pid);
            place.pages.push(pid);
            return Ok((pid, true));
        }

        if let Some(pid) = place.open_page {
            let fits = self.pool.with_page(pid, |buf| page::free_space(buf) >= need)?;
            if fits {
                return Ok((pid, false));
            }
        }
        let pid = self.take_page(place);
        place.open_page = Some(pid);
        place.pages.push(pid);
        Ok((pid, true))
    }

    fn write_record(
        &self,
        place: &mut SegPlace,
        seg: SegmentId,
        hint: ClusterHint,
        stored: &[u8],
    ) -> Result<(PageId, Slot)> {
        let (pid, fresh) = self.placement_page(place, seg, hint, stored.len())?;
        let slot = if fresh {
            self.pool.with_new_page(pid, |buf| {
                page::init(buf);
                page::insert(buf, stored)
            })?
        } else {
            self.pool.with_page_mut(pid, |buf| page::insert(buf, stored))?
        };
        match slot {
            Some(s) => Ok((pid, s)),
            None => Err(StorageError::Corrupt(format!(
                "placement chose page {pid} without room for {} bytes",
                stored.len()
            ))),
        }
    }

    /// Write an overflow chain for `payload`, returning the header
    /// record to store in the object's slot.
    fn write_overflow(&self, place: &mut SegPlace, payload: &[u8]) -> Result<Vec<u8>> {
        let mut chunk_pages: Vec<PageId> = Vec::new();
        let n = payload.len().div_ceil(OVERFLOW_CAP).max(1);
        for _ in 0..n {
            chunk_pages.push(self.take_page(place));
        }
        for (i, (chunk, &pid)) in payload.chunks(OVERFLOW_CAP).zip(&chunk_pages).enumerate() {
            let next = chunk_pages.get(i + 1).map_or(NO_PAGE, |p| p.0);
            self.pool.with_new_page(pid, |buf| {
                buf[0..4].copy_from_slice(&next.to_le_bytes());
                buf[4..8].copy_from_slice(&(chunk.len() as u32).to_le_bytes());
                buf[8..8 + chunk.len()].copy_from_slice(chunk);
            })?;
        }
        if payload.is_empty() {
            // n was forced to 1; write an empty chunk page.
            let pid = chunk_pages[0];
            self.pool.with_new_page(pid, |buf| {
                buf[0..4].copy_from_slice(&NO_PAGE.to_le_bytes());
                buf[4..8].copy_from_slice(&0u32.to_le_bytes());
            })?;
        }
        let mut header = Vec::with_capacity(OVERFLOW_HDR);
        header.push(TAG_OVERFLOW);
        header.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        header.extend_from_slice(&chunk_pages[0].0.to_le_bytes());
        header.extend_from_slice(&(chunk_pages.len() as u32).to_le_bytes());
        Ok(header)
    }

    fn read_overflow(&self, header: &[u8]) -> Result<Vec<u8>> {
        if header.len() < OVERFLOW_HDR {
            return Err(StorageError::Corrupt("short overflow header".into()));
        }
        let total = le_u32_at(header, 1)? as usize;
        let mut pid = le_u32_at(header, 5)?;
        // The header records the chain length; a corrupt next-pointer
        // that slipped past page verification must not walk (or loop)
        // beyond it.
        let chunk_count = le_u32_at(header, 9)?;
        let mut hops = 0u32;
        let mut out = Vec::with_capacity(total.min(64 * 1024 * 1024));
        while pid != NO_PAGE {
            if hops >= chunk_count {
                return Err(StorageError::Corrupt(format!(
                    "overflow chain exceeds its recorded {chunk_count} chunk pages"
                )));
            }
            hops += 1;
            let (next, chunk) = self.pool.with_page(PageId(pid), |buf| {
                let next = le_u32_at(buf, 0)?;
                let len = le_u32_at(buf, 4)? as usize;
                Ok::<_, StorageError>((next, buf[8..8 + len.min(OVERFLOW_CAP)].to_vec()))
            })??;
            out.extend_from_slice(&chunk);
            pid = next;
        }
        if out.len() != total {
            return Err(StorageError::Corrupt(format!(
                "overflow chain yielded {} bytes, expected {total}",
                out.len()
            )));
        }
        Ok(out)
    }

    /// Return an overflow chain's pages to `place`'s free list.
    ///
    /// A chunk page that was quarantined — or whose read fails
    /// verification — cannot be walked: its next-pointer is
    /// untrustworthy, and trusting it could resurrect arbitrary live
    /// pages into the free list. The damaged page and everything behind
    /// it are leaked instead (exactly the recovery paths' policy); the
    /// free itself still succeeds, and the next checkpoint simply stops
    /// referencing the leaked pages.
    fn free_overflow(&self, place: &mut SegPlace, header: &[u8]) -> Result<()> {
        let mut pid = le_u32_at(header, 5)?;
        let chunk_count = le_u32_at(header, 9)?;
        let mut hops = 0u32;
        while pid != NO_PAGE {
            if hops >= chunk_count {
                return Err(StorageError::Corrupt(format!(
                    "overflow chain exceeds its recorded {chunk_count} chunk pages"
                )));
            }
            hops += 1;
            if self.file.is_quarantined(PageId(pid)) {
                break;
            }
            let next = match self.pool.with_page(PageId(pid), |buf| le_u32_at(buf, 0)) {
                Ok(Ok(next)) => next,
                Ok(Err(_)) | Err(_) => break,
            };
            place.free_pages.push(PageId(pid));
            pid = next;
        }
        Ok(())
    }

    // ---- version-chain resolution -----------------------------------------

    /// Resolve the version of `chain` visible under `vis` (newest-first
    /// scan). `None` means no version is visible at all; a visible
    /// tombstone means the object is deleted at that point.
    fn resolve(chain: &[Version], vis: Vis) -> Option<&Version> {
        match vis {
            Vis::Latest => chain.iter().find(|v| v.txn == 0),
            Vis::At(lsn) => chain.iter().find(|v| v.txn == 0 && v.lsn <= lsn),
            Vis::For(txn) => chain.iter().find(|v| v.txn == txn || v.txn == 0),
        }
    }

    /// The location `vis` resolves to, or `UnknownObject` if nothing is
    /// visible (including a visible tombstone).
    fn visible_loc(chain: &[Version], vis: Vis, oid: Oid) -> Result<Loc> {
        match Self::resolve(chain, vis) {
            Some(Version { body: VersionBody::Data(loc), .. }) => Ok(*loc),
            _ => Err(StorageError::UnknownObject(oid)),
        }
    }

    /// Unlink versions no snapshot at or below `floor` (nor any newer
    /// reader) can reach: everything older than the newest committed
    /// version with `lsn <= floor`. Unlinked data locations go to
    /// `condemned` for an epoch-deferred free. Returns the number of
    /// versions unlinked; may leave the chain empty (a dead tombstone).
    fn trim_chain(chain: &mut Vec<Version>, floor: u64, condemned: &mut Vec<Loc>) -> u64 {
        let Some(keep) = chain.iter().position(|v| v.txn == 0 && v.lsn <= floor) else {
            return 0;
        };
        let mut n = 0;
        for v in chain.drain(keep + 1..) {
            if let VersionBody::Data(loc) = v.body {
                condemned.push(loc);
            }
            n += 1;
        }
        // A tombstone that is now the newest version is dead weight: no
        // reader can see anything through it.
        if keep == 0 && chain.first().is_some_and(|v| matches!(v.body, VersionBody::Tombstone)) {
            chain.clear();
            n += 1;
        }
        n
    }

    // ---- public operations ------------------------------------------------

    /// Allocate a new object. `hint` matters only under
    /// [`Placement::ClientChunks`]; `seg` only under [`Placement::Segments`].
    ///
    /// `txn != 0` creates a *pending* version visible only to that
    /// transaction until [`Heap::commit_version`]; `txn == 0` commits
    /// immediately (pre-history LSN 0, visible to every snapshot).
    pub fn alloc(&self, seg: SegmentId, hint: ClusterHint, payload: &[u8], txn: u64) -> Result<Oid> {
        let g = self.global_read();
        let seg_idx = self.resolve_seg(&g, seg)?;
        let (pid, slot) = {
            let mut place = self.seg_lock(&g, seg_idx);
            let stored = self.build_stored(&mut place, payload)?;
            self.write_record(&mut place, seg, hint, &stored)?
        };
        // The record is on its page but unpublished: the oid becomes
        // visible only with the table insert below.
        let oid = Oid::from_raw(self.next_oid.fetch_add(1, Ordering::Relaxed));
        let ver = Version { body: VersionBody::Data(Loc { page: pid, slot, seg }), lsn: 0, txn };
        {
            let mut shard = self.table_write(oid.raw());
            shard.insert(oid.raw(), vec![ver]);
            // A pending-only chain has no committed version to publish;
            // the view slot stays empty until `commit_version`.
            if txn == 0 {
                self.publish_view(oid.raw(), &[ver]);
            }
        }
        StorageStats::bump(&self.stats.allocs, 1);
        StorageStats::bump(&self.stats.bytes_allocated, payload.len() as u64);
        Ok(oid)
    }

    /// Replication apply: allocate `payload` at the *caller-chosen*
    /// `oid` — the oid the primary's log assigned. Placement is local
    /// (a follower's pages need not mirror the primary's), but the oid
    /// binding must match so shipped updates and snapshot reads resolve
    /// identically, and the allocator floor is raised past it so a
    /// promoted follower never re-issues a shipped oid.
    ///
    /// An oid that is already bound is refused: a coherent stream never
    /// allocates twice, so a duplicate means the follower applied a
    /// chunk it already had (callers dedup by LSN first). The record
    /// written before the refusal is leaked to the next checkpoint,
    /// exactly as [`Heap::recover_upsert`] leaks superseded slots.
    pub fn replica_alloc(
        &self,
        oid: Oid,
        seg: SegmentId,
        hint: ClusterHint,
        payload: &[u8],
        txn: u64,
    ) -> Result<()> {
        let g = self.global_read();
        let seg_idx = self.resolve_seg(&g, seg)?;
        let (pid, slot) = {
            let mut place = self.seg_lock(&g, seg_idx);
            let stored = self.build_stored(&mut place, payload)?;
            self.write_record(&mut place, seg, hint, &stored)?
        };
        self.reserve_oid_floor(oid.raw() + 1);
        let ver = Version { body: VersionBody::Data(Loc { page: pid, slot, seg }), lsn: 0, txn };
        {
            let mut shard = self.table_write(oid.raw());
            if shard.contains_key(&oid.raw()) {
                return Err(StorageError::Corrupt(format!(
                    "replica alloc: oid {oid} is already bound"
                )));
            }
            shard.insert(oid.raw(), vec![ver]);
            // Pending-only chain: the view slot stays empty until
            // `commit_version` flips it, same as `alloc`.
            if txn == 0 {
                self.publish_view(oid.raw(), &[ver]);
            }
        }
        StorageStats::bump(&self.stats.allocs, 1);
        StorageStats::bump(&self.stats.bytes_allocated, payload.len() as u64);
        Ok(())
    }

    /// Crash-recovery write: (re)bind `oid` to `payload` at a freshly
    /// chosen location, never touching the location the table currently
    /// maps it to.
    ///
    /// Replay runs against page images of unknown vintage — any page may
    /// hold its checkpoint-era bytes or a later flush from the crashed
    /// run — so the old slot may already be dead, or reused by an object
    /// replay itself just placed. `page::remove` there (as
    /// [`Heap::update`] does) could destroy live data. Instead the old
    /// slot and any overflow chain are deliberately leaked: the next
    /// checkpoint's metadata simply stops referencing them.
    ///
    /// `seg` of `None` keeps the object's current segment (falling back
    /// to [`SegmentId::DEFAULT`] if the table has no entry).
    pub fn recover_upsert(
        &self,
        oid: Oid,
        seg: Option<SegmentId>,
        hint: ClusterHint,
        payload: &[u8],
    ) -> Result<()> {
        let g = self.global_read();
        let seg = seg
            .or_else(|| {
                let m = self.table_read(oid.raw());
                m.get(&oid.raw())
                    .and_then(|c| Self::visible_loc(c, Vis::Latest, oid).ok())
                    .map(|l| l.seg)
            })
            .unwrap_or(SegmentId::DEFAULT);
        let seg_idx = self.resolve_seg(&g, seg)?;
        let (pid, slot) = {
            let mut place = self.seg_lock(&g, seg_idx);
            let stored = self.build_stored(&mut place, payload)?;
            self.write_record(&mut place, seg, hint, &stored)?
        };
        // Replay rebuilds a single-version committed chain; whatever the
        // table mapped before is leaked, never reclaimed (see above).
        let ver = Version { body: VersionBody::Data(Loc { page: pid, slot, seg }), lsn: 0, txn: 0 };
        {
            let mut shard = self.table_write(oid.raw());
            shard.insert(oid.raw(), vec![ver]);
            self.publish_view(oid.raw(), &[ver]);
        }
        self.next_oid.fetch_max(oid.raw() + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Crash-recovery delete: drop the table entry without touching the
    /// page image (see [`Heap::recover_upsert`] for why the slot and any
    /// overflow chain must be leaked rather than reclaimed).
    pub fn recover_free(&self, oid: Oid) {
        let _g = self.global_read();
        let mut shard = self.table_write(oid.raw());
        shard.remove(&oid.raw());
        self.clear_view(oid.raw());
    }

    /// Raise the oid allocator so no future allocation hands out an id
    /// below `next`. Recovery calls this with one past the highest oid
    /// seen in the log — including oids of transactions that did *not*
    /// commit — so a recovered store can never recycle an oid the crashed
    /// run already reported to a client.
    pub fn reserve_oid_floor(&self, next: u64) {
        self.next_oid.fetch_max(next, Ordering::Relaxed);
    }

    /// Read an object's payload (newest committed version), latch-free:
    /// the version location is resolved through the lock-free
    /// most-recent view and the page (and overflow-chain) access runs
    /// with no heap lock held, protected by the epoch pin alone.
    pub fn read(&self, oid: Oid) -> Result<Vec<u8>> {
        self.read_vis(oid, Vis::Latest)
    }

    /// Read the newest version committed at or before `lsn` (snapshot
    /// read). Latch-free like [`Heap::read`].
    pub fn read_at(&self, oid: Oid, lsn: u64) -> Result<Vec<u8>> {
        StorageStats::bump(&self.stats.snapshot_reads, 1);
        self.read_vis(oid, Vis::At(lsn))
    }

    /// Read as seen by `txn`: its own pending version if it has one,
    /// else the newest committed version.
    pub fn read_for(&self, oid: Oid, txn: u64) -> Result<Vec<u8>> {
        self.read_vis(oid, Vis::For(txn))
    }

    fn read_vis(&self, oid: Oid, vis: Vis) -> Result<Vec<u8>> {
        let _pin = self.pin_epoch();
        let loc = match vis {
            // A transaction's own reads must see its pending version,
            // which lives only in the locked table.
            Vis::For(_) => {
                let shard = self.table_read(oid.raw());
                let chain = shard.get(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
                Self::visible_loc(chain, vis, oid)?
            }
            // Committed-state reads resolve through the lock-free view:
            // no heap lock is acquired anywhere on this path.
            Vis::Latest | Vis::At(_) => {
                let chain = self.view.get(oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
                Self::visible_loc(&chain, vis, oid)?
            }
        };
        // From here the epoch pin alone keeps `loc` (and any overflow
        // chain behind it) from being freed under us.
        StorageStats::bump(&self.stats.reads, 1);
        let stored = self
            .pool
            .with_page(loc.page, |buf| page::read(buf, loc.slot).map(|s| s.to_vec()))?;
        let stored = stored.ok_or_else(|| {
            StorageError::Corrupt(format!("object table points at dead slot for {oid}"))
        })?;
        if Self::is_overflow(&stored) {
            self.read_overflow(&stored)
        } else {
            self.decode(&stored)
        }
    }

    /// Overwrite an object's payload. The oid is stable even as versions
    /// move across pages.
    ///
    /// Committed versions are never touched: a fresh record is written
    /// and published as a new chain head. With `txn != 0` the head is
    /// pending (an existing pending head of the same transaction is
    /// replaced, its now-unreachable record freed immediately); with
    /// `txn == 0` the head commits in place of the previous one, which
    /// is condemned for an epoch-deferred free.
    pub fn update(&self, oid: Oid, payload: &[u8], txn: u64) -> Result<()> {
        let g = self.global_read();
        // Resolve existence + segment under a momentary shard read.
        let seg = {
            let shard = self.table_read(oid.raw());
            let chain = shard.get(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
            Self::visible_loc(chain, Vis::For(txn), oid)?.seg
        };
        StorageStats::bump(&self.stats.updates, 1);
        let seg_idx = self.resolve_seg(&g, seg)?;
        let (pid, slot) = {
            let mut place = self.seg_lock(&g, seg_idx);
            let stored = self.build_stored(&mut place, payload)?;
            self.write_record(&mut place, seg, ClusterHint::NONE, &stored)?
        };
        let new_loc = Loc { page: pid, slot, seg };

        let mut replaced_pending: Option<Loc> = None;
        let mut condemned: Option<Loc> = None;
        {
            let mut shard = self.table_write(oid.raw());
            let chain = shard.get_mut(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
            if txn != 0 {
                if let Some(head) = chain.first_mut().filter(|v| v.txn == txn) {
                    // Second write by the same transaction: swap the
                    // pending body. The old record was never visible to
                    // anyone else, so it can be freed without an epoch.
                    let old = std::mem::replace(&mut head.body, VersionBody::Data(new_loc));
                    if let VersionBody::Data(l) = old {
                        replaced_pending = Some(l);
                    }
                } else {
                    chain.insert(0, Version { body: VersionBody::Data(new_loc), lsn: 0, txn });
                }
            } else {
                // Immediate commit: the new head supersedes the old one,
                // which a latch-free reader may still be walking — unlink
                // it and defer the free to the next epoch sync.
                let lsn = chain.first().map_or(0, |v| v.lsn);
                chain.insert(0, Version { body: VersionBody::Data(new_loc), lsn, txn: 0 });
                if let Some(prev) = chain.get(1).copied().filter(|v| v.txn == 0) {
                    if let VersionBody::Data(l) = prev.body {
                        condemned = Some(l);
                    }
                    chain.remove(1);
                }
                // Pending writes leave the committed suffix untouched,
                // so only the immediate-commit arm republishes.
                self.publish_view(oid.raw(), chain);
            }
        }
        if let Some(loc) = replaced_pending {
            self.free_slot(&g, loc);
        }
        if let Some(loc) = condemned {
            StorageStats::bump(&self.stats.versions_gced, 1);
            self.epoch_lock().condemned.push(loc);
        }
        Ok(())
    }

    /// Delete an object. With `txn != 0` this pushes a pending tombstone
    /// (the delete becomes real at [`Heap::commit_version`]); with
    /// `txn == 0` the whole chain is unlinked and condemned.
    pub fn free(&self, oid: Oid, txn: u64) -> Result<()> {
        let g = self.global_read();
        let mut replaced_pending: Option<Loc> = None;
        let mut condemned: Vec<Loc> = Vec::new();
        {
            let mut shard = self.table_write(oid.raw());
            let chain = shard.get_mut(&oid.raw()).ok_or(StorageError::UnknownObject(oid))?;
            // Deleting an object the caller cannot see is an error.
            Self::visible_loc(chain, Vis::For(txn), oid)?;
            if txn != 0 {
                // A pending tombstone leaves the committed suffix (and
                // so the view) untouched until `commit_version`.
                if let Some(head) = chain.first_mut().filter(|v| v.txn == txn) {
                    let old = std::mem::replace(&mut head.body, VersionBody::Tombstone);
                    if let VersionBody::Data(l) = old {
                        replaced_pending = Some(l);
                    }
                } else {
                    chain.insert(0, Version { body: VersionBody::Tombstone, lsn: 0, txn });
                }
            } else {
                let dropped = shard.remove(&oid.raw()).unwrap_or_default();
                for v in dropped {
                    if let VersionBody::Data(l) = v.body {
                        condemned.push(l);
                    }
                }
                self.clear_view(oid.raw());
            }
        }
        if let Some(loc) = replaced_pending {
            self.free_slot(&g, loc);
        }
        if !condemned.is_empty() {
            StorageStats::bump(&self.stats.versions_gced, condemned.len() as u64);
            self.epoch_lock().condemned.append(&mut condemned);
        }
        Ok(())
    }

    /// Flip `txn`'s pending version of `oid` (if any) to committed at
    /// `lsn`, then opportunistically trim the chain past [`MAX_CHAIN`]
    /// where `keep_floor` (the snapshot low-water mark) allows.
    ///
    /// The floor is clamped to `lsn - 1` regardless of what the caller
    /// sampled: snapshot registration takes only the registry lock, so
    /// a racing `begin_snapshot` can pin the pre-flip LSN *after* the
    /// caller read the registry — the previous committed head must
    /// survive every commit-time trim. (Checkpoint GC has no such
    /// window: it sweeps with no commit in flight, and the newest
    /// committed version, which always survives a trim, is exactly what
    /// a concurrently opened snapshot pins.)
    pub fn commit_version(&self, oid: Oid, txn: u64, lsn: u64, keep_floor: u64) {
        let keep_floor = keep_floor.min(lsn.saturating_sub(1));
        let mut condemned: Vec<Loc> = Vec::new();
        let mut trimmed = 0;
        {
            let mut shard = self.table_write(oid.raw());
            if let Some(chain) = shard.get_mut(&oid.raw()) {
                if let Some(head) = chain.first_mut() {
                    if head.txn == txn {
                        head.txn = 0;
                        head.lsn = lsn;
                    }
                }
                if chain.len() > MAX_CHAIN {
                    trimmed = Self::trim_chain(chain, keep_floor, &mut condemned);
                }
                // The commit changed the committed prefix either way
                // (new head, or a trim): publish the new cut.
                self.publish_view(oid.raw(), chain);
                if chain.is_empty() {
                    shard.remove(&oid.raw());
                }
            }
        }
        if trimmed > 0 {
            StorageStats::bump(&self.stats.versions_gced, trimmed);
        }
        if !condemned.is_empty() {
            self.epoch_lock().condemned.append(&mut condemned);
        }
    }

    /// Drop `txn`'s pending version of `oid` (abort path). The pending
    /// record was never visible to another thread, so its storage is
    /// reclaimed immediately. Removes the chain if it becomes empty
    /// (an aborted allocation).
    pub fn discard_txn(&self, oid: Oid, txn: u64) {
        let g = self.global_read();
        let mut freed: Option<Loc> = None;
        {
            let mut shard = self.table_write(oid.raw());
            if let Some(chain) = shard.get_mut(&oid.raw()) {
                if chain.first().is_some_and(|v| v.txn == txn) {
                    let v = chain.remove(0);
                    if let VersionBody::Data(l) = v.body {
                        freed = Some(l);
                    }
                }
                if chain.is_empty() {
                    shard.remove(&oid.raw());
                }
            }
        }
        if let Some(loc) = freed {
            self.free_slot(&g, loc);
        }
    }

    /// Version GC: unlink every committed version no snapshot at or
    /// below `low_water` can reach, synchronise the reader epoch, and
    /// physically free the unlinked (plus previously condemned) records.
    /// Returns the number of locations freed.
    ///
    /// Runs at checkpoint (callers pass the minimum open-snapshot LSN,
    /// or `u64::MAX` when none is open). Safe concurrent with readers —
    /// the epoch sync is exactly what makes their latch-free access
    /// sound — but assumes no *pending* version's transaction is racing
    /// it for the same oids (the engine quiesces writers first).
    pub fn collect_garbage(&self, low_water: u64) -> u64 {
        let mut condemned: Vec<Loc> = Vec::new();
        let mut trimmed = 0u64;
        {
            let _g = self.global_read();
            for sh in &self.table {
                let mut m = lock_order::ranked(lock_order::HEAP_TABLE, || sh.map.write());
                m.retain(|&oid, chain| {
                    let n = Self::trim_chain(chain, low_water, &mut condemned);
                    trimmed += n;
                    // Republish only what changed (a fully-trimmed
                    // chain publishes an empty cut, clearing the slot).
                    if n > 0 {
                        self.publish_view(oid, chain);
                    }
                    !chain.is_empty()
                });
            }
        }
        // A good moment to age out displaced view chains either way.
        self.view.sync_reclaim();
        if trimmed > 0 {
            StorageStats::bump(&self.stats.versions_gced, trimmed);
        }
        {
            let mut es = self.epoch_lock();
            condemned.append(&mut es.condemned);
        }
        if condemned.is_empty() {
            return 0;
        }
        // No lock held across the wait; see `epoch_sync`.
        self.epoch_sync();
        let n = condemned.len() as u64;
        let g = self.global_read();
        for loc in condemned {
            self.free_slot(&g, loc);
        }
        n
    }

    /// Physically free one unlinked record: return its overflow chain
    /// (if any) to the segment free list and clear the slot. Best
    /// effort — damaged or quarantined pages are leaked, matching the
    /// recovery paths' policy.
    fn free_slot(&self, g: &HeapGlobal, loc: Loc) {
        let stored = match self
            .pool
            .with_page(loc.page, |buf| page::read(buf, loc.slot).map(|s| s.to_vec()))
        {
            Ok(Some(s)) => s,
            _ => return,
        };
        if Self::is_overflow(&stored) {
            if let Ok(seg_idx) = self.resolve_seg(g, loc.seg) {
                let mut place = self.seg_lock(g, seg_idx);
                let _ = self.free_overflow(&mut place, &stored);
            }
        }
        let _ = self.pool.with_page_mut(loc.page, |buf| page::remove(buf, loc.slot));
    }

    /// Whether an object exists (newest committed version is data).
    pub fn exists(&self, oid: Oid) -> bool {
        self.exists_vis(oid, Vis::Latest)
    }

    /// Whether the object existed at snapshot LSN `lsn`.
    pub fn exists_at(&self, oid: Oid, lsn: u64) -> bool {
        self.exists_vis(oid, Vis::At(lsn))
    }

    /// Whether the object exists as seen by `txn` (own writes included).
    pub fn exists_for(&self, oid: Oid, txn: u64) -> bool {
        self.exists_vis(oid, Vis::For(txn))
    }

    fn exists_vis(&self, oid: Oid, vis: Vis) -> bool {
        match vis {
            Vis::For(_) => {
                let shard = self.table_read(oid.raw());
                shard.get(&oid.raw()).is_some_and(|c| Self::visible_loc(c, vis, oid).is_ok())
            }
            Vis::Latest | Vis::At(_) => self
                .view
                .get(oid.raw())
                .is_some_and(|c| Self::visible_loc(&c, vis, oid).is_ok()),
        }
    }

    /// Number of live objects (newest committed version is data).
    pub fn object_count(&self) -> usize {
        let _g = self.global_read();
        let mut n = 0;
        for sh in &self.table {
            let m = lock_order::ranked(lock_order::HEAP_TABLE, || sh.map.read());
            n += m
                .iter()
                .filter(|(&k, c)| Self::visible_loc(c, Vis::Latest, Oid::from_raw(k)).is_ok())
                .count();
        }
        n
    }

    /// Snapshot of all live oids (diagnostics / scans), stable-sorted so
    /// reports and scrub logs do not depend on shard iteration order.
    pub fn oids(&self) -> Vec<Oid> {
        let _g = self.global_read();
        let mut v: Vec<Oid> = Vec::new();
        for sh in &self.table {
            let m = lock_order::ranked(lock_order::HEAP_TABLE, || sh.map.read());
            v.extend(
                m.iter()
                    .filter(|(&k, c)| Self::visible_loc(c, Vis::Latest, Oid::from_raw(k)).is_ok())
                    .map(|(&k, _)| Oid::from_raw(k)),
            );
        }
        v.sort_unstable();
        v
    }

    /// Pages owned by each segment (for size reporting).
    pub fn segment_pages(&self) -> Vec<usize> {
        let g = self.global_read();
        (0..g.segs.len()).map(|i| self.seg_lock(&g, i).pages.len()).collect()
    }

    /// Stop routing placement through any of `bad` pages: clear them
    /// from segment open pages and chunk targets. The recovery verify
    /// pass calls this for quarantined pages so allocation never faults
    /// on a damaged image (quarantined pages on the free list are fine —
    /// reuse rewrites them wholesale without a read, which heals them).
    pub fn demote_pages(&self, bad: &[PageId]) {
        if bad.is_empty() {
            return;
        }
        let g = self.global_read();
        for i in 0..g.segs.len() {
            let mut place = self.seg_lock(&g, i);
            if place.open_page.is_some_and(|p| bad.contains(&p)) {
                place.open_page = None;
            }
            place.chunks.retain(|_, p| !bad.contains(p));
        }
    }

    /// Oids whose record (or overflow header) lives on one of `pages`.
    /// The recovery verify pass uses this to report which objects a
    /// quarantined page takes down with it.
    pub fn oids_on_pages(&self, pages: &[PageId]) -> Vec<Oid> {
        let _g = self.global_read();
        let mut v: Vec<Oid> = Vec::new();
        for sh in &self.table {
            let m = lock_order::ranked(lock_order::HEAP_TABLE, || sh.map.read());
            v.extend(
                m.iter()
                    .filter(|(&k, c)| {
                        Self::visible_loc(c, Vis::Latest, Oid::from_raw(k))
                            .is_ok_and(|loc| pages.contains(&loc.page))
                    })
                    .map(|(&k, _)| Oid::from_raw(k)),
            );
        }
        v.sort_unstable();
        v
    }

    // ---- metadata (de)hydration for checkpointing -------------------------

    /// Serialize the heap metadata (object table, segment page lists,
    /// free list, oid counter) for the meta file.
    ///
    /// Taking the global shard exclusively is a full quiesce — every
    /// operation holds it shared for its whole duration — so the image
    /// is a consistent cut. The per-shard locks below are then taken one
    /// at a time purely as the data's formal owners; nothing can race
    /// them. The byte format is unchanged from the single-lock heap:
    /// per-segment free lists are concatenated in segment order.
    pub fn dump_meta(&self, out: &mut Vec<u8>) {
        let g = self.global_write();
        out.extend_from_slice(&self.next_oid.load(Ordering::Relaxed).to_le_bytes());
        // Only the newest committed version of each object is persisted
        // (the format predates version chains and stays unchanged);
        // older versions exist solely for in-flight snapshots, which do
        // not survive a restart. Callers quiesce transactions first, so
        // no pending version should be in flight here.
        let mut entries: Vec<(u64, Loc)> = Vec::new();
        for sh in &self.table {
            let m = lock_order::ranked(lock_order::HEAP_TABLE, || sh.map.read());
            entries.extend(m.iter().filter_map(|(&k, c)| {
                Self::visible_loc(c, Vis::Latest, Oid::from_raw(k)).ok().map(|loc| (k, loc))
            }));
        }
        entries.sort_unstable_by_key(|&(k, _)| k);
        out.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        for (oid, loc) in &entries {
            out.extend_from_slice(&oid.to_le_bytes());
            out.extend_from_slice(&loc.page.0.to_le_bytes());
            out.extend_from_slice(&loc.slot.0.to_le_bytes());
            out.push(loc.seg.0);
        }
        out.extend_from_slice(&(g.segs.len() as u32).to_le_bytes());
        let mut free_all: Vec<PageId> = Vec::new();
        for i in 0..g.segs.len() {
            let place = self.seg_lock(&g, i);
            let open = place.open_page.map_or(NO_PAGE, |p| p.0);
            out.extend_from_slice(&open.to_le_bytes());
            out.extend_from_slice(&(place.pages.len() as u32).to_le_bytes());
            for p in &place.pages {
                out.extend_from_slice(&p.0.to_le_bytes());
            }
            free_all.extend_from_slice(&place.free_pages);
        }
        out.extend_from_slice(&(free_all.len() as u32).to_le_bytes());
        for p in &free_all {
            out.extend_from_slice(&p.0.to_le_bytes());
        }
    }

    /// Restore heap metadata from [`Heap::dump_meta`] output. Returns the
    /// number of bytes consumed. Free pages are distributed round-robin
    /// across the segments: any free page is usable by any segment, so
    /// the split only spreads reuse.
    pub fn load_meta(&self, data: &[u8]) -> Result<usize> {
        let mut cur = Cursor { data, at: 0 };
        let next_oid = cur.u64()?;
        let n = cur.u64()? as usize;
        let mut maps: Vec<HashMap<u64, Vec<Version>>> =
            (0..TABLE_SHARDS).map(|_| HashMap::new()).collect();
        for _ in 0..n {
            let oid = cur.u64()?;
            let page = PageId(cur.u32()?);
            let slot = Slot(cur.u16()?);
            let seg = SegmentId(cur.u8()?);
            // Checkpoint-era versions are pre-history: LSN 0, visible to
            // every snapshot a later run might open.
            let ver =
                Version { body: VersionBody::Data(Loc { page, slot, seg }), lsn: 0, txn: 0 };
            if let Some(m) = maps.get_mut((oid % TABLE_SHARDS as u64) as usize) {
                m.insert(oid, vec![ver]);
            }
        }
        let nsegs = cur.u32()? as usize;
        if nsegs == 0 {
            return Err(StorageError::Corrupt("heap metadata has no segments".into()));
        }
        let mut places = Vec::with_capacity(nsegs);
        for _ in 0..nsegs {
            let open = cur.u32()?;
            let open_page = if open == NO_PAGE { None } else { Some(PageId(open)) };
            let npages = cur.u32()? as usize;
            let mut pages = Vec::with_capacity(npages);
            for _ in 0..npages {
                pages.push(PageId(cur.u32()?));
            }
            places.push(SegPlace {
                open_page,
                pages,
                chunks: HashMap::new(), // chunks are a placement cache; safe to drop
                free_pages: Vec::new(),
            });
        }
        let nfree = cur.u32()? as usize;
        for i in 0..nfree {
            let p = PageId(cur.u32()?);
            places[i % nsegs].free_pages.push(p);
        }
        let mut g = self.global_write();
        g.segs = places.into_iter().map(SegShard::new).collect();
        self.next_oid.store(next_oid, Ordering::Relaxed);
        // Replace the view wholesale along with the table. Latch-free
        // readers are not excluded by the global quiesce, but load only
        // runs at open/recovery, before any reader exists; the swaps
        // below are atomic either way.
        self.view.clear_all();
        for (sh, m) in self.table.iter().zip(maps) {
            let mut w = lock_order::ranked(lock_order::HEAP_TABLE, || sh.map.write());
            for (&oid, chain) in &m {
                self.publish_view(oid, chain);
            }
            *w = m;
        }
        // Locations condemned in the pre-load world must not be freed
        // against the loaded one.
        self.epoch_lock().condemned.clear();
        Ok(cur.at)
    }
}

/// Acquire a heap metadata lock with contention attribution: an
/// uncontended acquisition costs one try-lock; a contended one records
/// the blocked time in the calling thread's wait profile, the shared
/// stats, and the shard's own counter.
fn contended<G>(
    stats: &StorageStats,
    shard_waits: &AtomicU64,
    try_acquire: impl FnOnce() -> Option<G>,
    acquire: impl FnOnce() -> G,
) -> G {
    if let Some(g) = try_acquire() {
        return g;
    }
    let start = std::time::Instant::now();
    let g = acquire();
    let nanos = start.elapsed().as_nanos() as u64;
    shard_waits.fetch_add(1, Ordering::Relaxed);
    StorageStats::bump(&stats.heap_shard_waits, 1);
    StorageStats::bump(&stats.heap_wait_nanos, nanos);
    crate::waits::add_heap_wait(nanos);
    g
}

/// Read a little-endian `u32` at `at`, with a typed error on short input.
fn le_u32_at(buf: &[u8], at: usize) -> Result<u32> {
    buf.get(at..at + 4)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| StorageError::Corrupt("truncated binary field".into()))
}

struct Cursor<'a> {
    data: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.at + n > self.data.len() {
            return Err(StorageError::Corrupt("truncated heap metadata".into()));
        }
        let s = &self.data[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }
    fn arr<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| StorageError::Corrupt("truncated heap metadata".into()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.arr()?))
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.arr()?))
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.arr()?))
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.arr::<1>()?[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(name: &str, placement: Placement, segs: u8, cap: usize) -> (Heap, Arc<StorageStats>) {
        let dir = std::env::temp_dir().join(format!("lfs-heap-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = crate::vfs::RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), cap, false));
        (Heap::new(pool, file, stats.clone(), placement, segs, 0, 1), stats)
    }

    /// The raw stored bytes of an object's newest committed record
    /// (test-only spelunking).
    fn stored_of(h: &Heap, oid: Oid) -> Vec<u8> {
        let shard = h.table[(oid.raw() % TABLE_SHARDS as u64) as usize].map.read();
        let loc = Heap::visible_loc(shard.get(&oid.raw()).unwrap(), Vis::Latest, oid).unwrap();
        drop(shard);
        h.pool
            .with_page(loc.page, |buf| page::read(buf, loc.slot).map(|s| s.to_vec()))
            .unwrap()
            .unwrap()
    }

    /// Free-list length of one segment (test-only spelunking).
    fn seg_free_pages(h: &Heap, idx: usize) -> Vec<PageId> {
        h.global.read().segs[idx].place.lock().free_pages.clone()
    }

    #[test]
    fn alloc_read_update_free_cycle() {
        let (h, _) = heap("cycle", Placement::Segments, 2, 16);
        let a = h.alloc(SegmentId(0), ClusterHint::NONE, b"first", 0).unwrap();
        let b = h.alloc(SegmentId(1), ClusterHint::NONE, b"second", 0).unwrap();
        assert_eq!(h.read(a).unwrap(), b"first");
        assert_eq!(h.read(b).unwrap(), b"second");
        h.update(a, b"first, updated to a longer value", 0).unwrap();
        assert_eq!(h.read(a).unwrap(), b"first, updated to a longer value");
        h.free(a, 0).unwrap();
        assert!(matches!(h.read(a), Err(StorageError::UnknownObject(_))));
        assert!(h.exists(b));
        assert_eq!(h.object_count(), 1);
    }

    #[test]
    fn unknown_segment_rejected_under_segment_placement() {
        let (h, _) = heap("badseg", Placement::Segments, 2, 8);
        let err = h.alloc(SegmentId(5), ClusterHint::NONE, b"x", 0).unwrap_err();
        assert!(matches!(err, StorageError::UnknownSegment(5)));
        // Address-order placement ignores the segment id entirely.
        let (h2, _) = heap("badseg2", Placement::AddressOrder, 1, 8);
        assert!(h2.alloc(SegmentId(5), ClusterHint::NONE, b"x", 0).is_ok());
    }

    #[test]
    fn segments_separate_pages_address_order_interleaves() {
        let (h, _) = heap("segsep", Placement::Segments, 2, 64);
        for i in 0..50u32 {
            let seg = SegmentId((i % 2) as u8);
            h.alloc(seg, ClusterHint::NONE, &i.to_le_bytes(), 0).unwrap();
        }
        let seg_pages = h.segment_pages();
        assert_eq!(seg_pages.len(), 2);
        assert!(seg_pages[0] >= 1 && seg_pages[1] >= 1);

        let (h2, _) = heap("addr", Placement::AddressOrder, 1, 64);
        for i in 0..50u32 {
            h2.alloc(SegmentId(0), ClusterHint::NONE, &i.to_le_bytes(), 0).unwrap();
        }
        assert_eq!(h2.segment_pages().len(), 1);
    }

    #[test]
    fn client_chunks_cluster_by_type() {
        let (h, stats) = heap("chunks", Placement::ClientChunks, 1, 256);
        // Two interleaved "types" (hot records vs cold payloads): with
        // client chunks, each type's objects share that type's pages,
        // even though the underlying store has only one segment.
        let mut hot = Vec::new();
        for i in 0..40u32 {
            hot.push(h.alloc(SegmentId(1), ClusterHint::NONE, &[1u8; 40], 0).unwrap());
            h.alloc(SegmentId(3), ClusterHint::NONE, &[2u8; 900], 0).unwrap();
            let _ = i;
        }
        // Reading the hot type touches very few pages: 40 × 45B ≈ 1 page.
        let before = stats.snapshot();
        for &oid in &hot {
            h.read(oid).unwrap();
        }
        let after = stats.snapshot();
        assert!(
            after.delta(&before).faults <= 2,
            "type-clustered hot reads should touch ~1 page, got {} faults",
            after.delta(&before).faults
        );
        // The same interleaving in address order dilutes the hot records
        // across all pages.
        let (h2, stats2) = heap("chunks-ao", Placement::AddressOrder, 1, 256);
        let mut hot2 = Vec::new();
        for _ in 0..40 {
            hot2.push(h2.alloc(SegmentId(1), ClusterHint::NONE, &[1u8; 40], 0).unwrap());
            h2.alloc(SegmentId(3), ClusterHint::NONE, &[2u8; 900], 0).unwrap();
        }
        h2.pool.clear().unwrap();
        let before = stats2.snapshot();
        for &oid in &hot2 {
            h2.read(oid).unwrap();
        }
        let after = stats2.snapshot();
        assert!(
            after.delta(&before).faults >= 8,
            "address-order hot reads should scatter, got {} faults",
            after.delta(&before).faults
        );
    }

    #[test]
    fn overflow_round_trip_and_free() {
        let (h, _) = heap("ovfl", Placement::Segments, 1, 32);
        let big: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &big, 0).unwrap();
        assert_eq!(h.read(oid).unwrap(), big);

        // Update overflow -> still overflow.
        let bigger: Vec<u8> = (0..30_000u32).map(|i| (i % 13) as u8).collect();
        h.update(oid, &bigger, 0).unwrap();
        assert_eq!(h.read(oid).unwrap(), bigger);

        // Update overflow -> inline.
        h.update(oid, b"now small", 0).unwrap();
        assert_eq!(h.read(oid).unwrap(), b"now small");

        // Update inline -> overflow.
        h.update(oid, &big, 0).unwrap();
        assert_eq!(h.read(oid).unwrap(), big);

        h.free(oid, 0).unwrap();
        assert!(!h.exists(oid));
    }

    #[test]
    fn freed_overflow_pages_are_reused() {
        let (h, _) = heap("reuse", Placement::Segments, 1, 32);
        let big = vec![5u8; 15_000];
        let a = h.alloc(SegmentId(0), ClusterHint::NONE, &big, 0).unwrap();
        h.free(a, 0).unwrap();
        // Frees are epoch-deferred: the chain pages come back only once
        // GC has proven no latch-free reader can still be walking them.
        h.collect_garbage(u64::MAX);
        let freed = seg_free_pages(&h, 0).len();
        assert!(freed >= 2, "freeing a multi-chunk overflow should reclaim pages");
        let b = h.alloc(SegmentId(0), ClusterHint::NONE, &big, 0).unwrap();
        assert_eq!(h.read(b).unwrap(), big);
        // New chain should have drawn from the free list, not grown the file.
        assert!(
            seg_free_pages(&h, 0).len() < freed,
            "free list should have been consumed"
        );
    }

    #[test]
    fn per_object_overhead_inflates_stored_size() {
        let dir = std::env::temp_dir().join(format!("lfs-heap-{}-ovh", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = crate::vfs::RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), 16, false));
        let fat = Heap::new(pool, file, stats, Placement::AddressOrder, 1, 24, 16);
        assert_eq!(fat.stored_len(100), 144); // 5+24+100=129, aligned up to 144
        let oid = fat.alloc(SegmentId(0), ClusterHint::NONE, &[9u8; 100], 0).unwrap();
        assert_eq!(fat.read(oid).unwrap(), vec![9u8; 100]);
    }

    #[test]
    fn inline_overflow_boundary_round_trips() {
        // The exact inline/overflow boundary: the largest payload whose
        // stored form fits a page record stays inline; one byte more
        // goes to an overflow chain. Both must round-trip, and the
        // discrimination must come from the tag byte, not the length.
        let (h, _) = heap("boundary", Placement::Segments, 1, 32);
        let max_inline = page::MAX_RECORD - RECORD_HDR;
        assert_eq!(h.stored_len(max_inline), page::MAX_RECORD);

        let at = vec![0xABu8; max_inline];
        let a = h.alloc(SegmentId(0), ClusterHint::NONE, &at, 0).unwrap();
        assert_eq!(h.read(a).unwrap(), at);
        assert_eq!(stored_of(&h, a)[0], TAG_INLINE, "boundary payload stays inline");

        let over = vec![0xCDu8; max_inline + 1];
        let b = h.alloc(SegmentId(0), ClusterHint::NONE, &over, 0).unwrap();
        assert_eq!(h.read(b).unwrap(), over);
        assert_eq!(stored_of(&h, b)[0], TAG_OVERFLOW, "one byte more overflows");
        assert_eq!(stored_of(&h, b).len(), OVERFLOW_HDR);
    }

    #[test]
    fn marker_valued_payload_is_not_misread_as_overflow() {
        // Regression for the overflow-marker collision: a payload whose
        // leading bytes equal the old 0xFFFF_FFFF marker (and a stored
        // record whose length word would have been marker-valued) must
        // decode as plain data — the explicit tag byte, not any stored
        // word, decides the record kind.
        let (h, _) = heap("marker", Placement::Segments, 1, 16);
        let tricky = [0xFFu8, 0xFF, 0xFF, 0xFF, 0x2E, 0x1D, 0x00];
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &tricky, 0).unwrap();
        assert_eq!(h.read(oid).unwrap(), tricky);
        let stored = stored_of(&h, oid);
        assert_eq!(stored[0], TAG_INLINE);
        assert!(!Heap::is_overflow(&stored));
        // Updating and freeing (the paths that branch on is_overflow)
        // treat it as inline: no bogus chain walk.
        h.update(oid, &tricky, 0).unwrap();
        h.free(oid, 0).unwrap();
        h.collect_garbage(u64::MAX);
        assert!(seg_free_pages(&h, 0).is_empty(), "no phantom chain pages were freed");
    }

    #[test]
    fn decode_rejects_corrupt_records_with_typed_errors() {
        let (h, _) = heap("corrupt", Placement::Segments, 1, 8);
        // Shorter than the header.
        assert!(matches!(h.decode(&[TAG_INLINE, 1, 0]), Err(StorageError::Corrupt(_))));
        // Unknown tag (e.g. an all-zero region read as a record).
        assert!(matches!(h.decode(&[0u8; 16]), Err(StorageError::Corrupt(_))));
        // Length word larger than the stored bytes — the old unchecked
        // `start + len` arithmetic is now checked_add + explicit bound.
        let mut huge = vec![0u8; 32];
        huge[0] = TAG_INLINE;
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(h.decode(&huge), Err(StorageError::Corrupt(_))));
        let mut over = vec![0u8; 32];
        over[0] = TAG_INLINE;
        over[1..5].copy_from_slice(&100u32.to_le_bytes());
        assert!(matches!(h.decode(&over), Err(StorageError::Corrupt(_))));
        // A valid record still decodes.
        let good = h.encode(b"fine");
        assert_eq!(h.decode(&good).unwrap(), b"fine");
    }

    #[test]
    fn free_overflow_leaks_quarantined_chunk_pages() {
        // Freeing an overflow record after one of its chunk pages was
        // quarantined must still succeed, and must not resurrect the
        // damaged page — or anything behind its untrustworthy next
        // pointer — into the free list.
        let (h, _) = heap("qfree", Placement::Segments, 1, 32);
        let big = vec![7u8; 15_000]; // several chunk pages
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &big, 0).unwrap();
        let header = stored_of(&h, oid);
        assert_eq!(header[0], TAG_OVERFLOW);
        let first = le_u32_at(&header, 5).unwrap();
        let count = le_u32_at(&header, 9).unwrap();
        assert!(count >= 3, "test needs a multi-page chain, got {count}");
        // Walk to the second chunk page and quarantine it.
        let second = h
            .pool
            .with_page(PageId(first), |buf| le_u32_at(buf, 0))
            .unwrap()
            .unwrap();
        h.file.quarantine(PageId(second));
        h.demote_pages(&[PageId(second)]);

        h.free(oid, 0).unwrap();
        h.collect_garbage(u64::MAX);
        assert!(!h.exists(oid));
        let free = seg_free_pages(&h, 0);
        assert!(free.contains(&PageId(first)), "healthy prefix is reclaimed");
        assert!(
            !free.iter().any(|p| p.0 == second),
            "quarantined chunk page must not enter the free list"
        );
        assert_eq!(free.len(), 1, "pages behind the damaged one are leaked, not guessed at");
    }

    #[test]
    fn meta_dump_load_round_trip() {
        let (h, _) = heap("meta", Placement::Segments, 3, 16);
        let mut oids = Vec::new();
        for i in 0..30u32 {
            let seg = SegmentId((i % 3) as u8);
            oids.push(h.alloc(seg, ClusterHint::NONE, &i.to_le_bytes(), 0).unwrap());
        }
        let freed = *oids.get(7).unwrap();
        h.free(freed, 0).unwrap();
        let mut meta = Vec::new();
        h.dump_meta(&mut meta);

        // Fresh heap over the same pool/file state.
        let consumed = h.load_meta(&meta).unwrap();
        assert_eq!(consumed, meta.len());
        for (i, &oid) in oids.iter().enumerate() {
            if i == 7 {
                assert!(!h.exists(oid));
            } else {
                assert_eq!(h.read(oid).unwrap(), (i as u32).to_le_bytes());
            }
        }
        // Oid counter restored: new allocations do not collide.
        let fresh = h.alloc(SegmentId(0), ClusterHint::NONE, b"post", 0).unwrap();
        assert!(fresh.raw() > oids.last().unwrap().raw());
    }

    #[test]
    fn sharded_meta_round_trip_spans_all_shards() {
        // Enough objects that every table shard and several segments are
        // populated, plus overflow chains and a free list: the dump must
        // capture one consistent cut of all shards and load must put
        // every piece back where lookups expect it.
        let (h, _) = heap("metawide", Placement::Segments, 4, 64);
        let mut live = Vec::new();
        for i in 0..200u32 {
            let seg = SegmentId((i % 4) as u8);
            live.push((h.alloc(seg, ClusterHint::NONE, &i.to_le_bytes(), 0).unwrap(), i));
        }
        let big = vec![3u8; 12_000];
        let big_oid = h.alloc(SegmentId(2), ClusterHint::NONE, &big, 0).unwrap();
        // Free an overflow object so the dump carries a free list.
        let doomed = h.alloc(SegmentId(1), ClusterHint::NONE, &vec![4u8; 9_000], 0).unwrap();
        h.free(doomed, 0).unwrap();
        h.collect_garbage(u64::MAX);
        let free_before: usize = (0..4).map(|i| seg_free_pages(&h, i).len()).sum();
        assert!(free_before > 0);

        let mut meta = Vec::new();
        h.dump_meta(&mut meta);
        let consumed = h.load_meta(&meta).unwrap();
        assert_eq!(consumed, meta.len());

        for &(oid, i) in &live {
            assert_eq!(h.read(oid).unwrap(), i.to_le_bytes());
        }
        assert_eq!(h.read(big_oid).unwrap(), big);
        assert!(!h.exists(doomed));
        assert_eq!(h.object_count(), live.len() + 1);
        let free_after: usize = (0..4).map(|i| seg_free_pages(&h, i).len()).sum();
        assert_eq!(free_after, free_before, "free pages survive the round trip");
        // The allocator floor survives too.
        let fresh = h.alloc(SegmentId(0), ClusterHint::NONE, b"post", 0).unwrap();
        assert!(fresh.raw() > big_oid.raw());
    }

    #[test]
    fn load_meta_rejects_truncated_input() {
        let (h, _) = heap("trunc", Placement::Segments, 1, 8);
        h.alloc(SegmentId(0), ClusterHint::NONE, b"x", 0).unwrap();
        let mut meta = Vec::new();
        h.dump_meta(&mut meta);
        let err = h.load_meta(&meta[..meta.len() - 3]).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt(_)));
    }

    #[test]
    fn update_nonexistent_and_free_nonexistent_fail() {
        let (h, _) = heap("missing", Placement::Segments, 1, 8);
        let ghost = Oid::from_raw(999);
        assert!(matches!(h.update(ghost, b"x", 0), Err(StorageError::UnknownObject(_))));
        assert!(matches!(h.free(ghost, 0), Err(StorageError::UnknownObject(_))));
    }

    #[test]
    fn concurrent_reads_race_relocating_updates() {
        // Regression: readers must hold their table shard across the
        // page access, or a relocating update frees the slot (and may
        // recycle it) between their table lookup and their page read.
        let (h, _) = heap("race", Placement::Segments, 1, 64);
        let small = vec![7u8; 100];
        let large = vec![9u8; 3000];
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &small, 0).unwrap();
        // Fill the page so growth forces relocation.
        for _ in 0..8 {
            h.alloc(SegmentId(0), ClusterHint::NONE, &[1u8; 400], 0).unwrap();
        }
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..2_000 {
                    let payload = if i % 2 == 0 { &large } else { &small };
                    h.update(oid, payload, 0).unwrap();
                }
            });
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(|| {
                    for _ in 0..2_000 {
                        let got = h.read(oid).unwrap();
                        assert!(
                            got == small || got == large,
                            "reader saw a torn/foreign payload of {} bytes",
                            got.len()
                        );
                    }
                }));
            }
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
    }

    #[test]
    fn disjoint_segment_writers_never_touch_each_others_shards() {
        // Four threads, each working one segment and an oid residue
        // class that maps to its own set of table shards: no heap lock
        // is ever shared, so every thread's heap-wait profile must stay
        // at zero and no segment lock may record a contended
        // acquisition.
        const THREADS: usize = 4;
        const PER: usize = 64;
        let (h, _) = heap("disjoint", Placement::Segments, THREADS as u8, 128);
        // Oids are sequential from 1, so seg = oid % THREADS gives each
        // thread a segment of its own AND disjoint table shards
        // (TABLE_SHARDS is a multiple of THREADS).
        let mut mine: Vec<Vec<Oid>> = vec![Vec::new(); THREADS];
        for i in 0..THREADS * PER {
            let expect = (i + 1) % THREADS; // oid i+1
            let oid = h
                .alloc(SegmentId(expect as u8), ClusterHint::NONE, &(i as u32).to_le_bytes(), 0)
                .unwrap();
            assert_eq!(oid.raw() as usize % THREADS, expect);
            mine[expect].push(oid);
        }
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, oids) in mine.iter().enumerate() {
                let h = &h;
                handles.push(scope.spawn(move || {
                    let before = crate::waits::snapshot();
                    for round in 0..20u32 {
                        for &oid in oids {
                            h.update(oid, &(round + t as u32).to_le_bytes(), 0).unwrap();
                            h.read(oid).unwrap();
                        }
                    }
                    crate::waits::snapshot().delta(&before).heap_wait_nanos
                }));
            }
            for handle in handles {
                let waited = handle.join().unwrap();
                assert_eq!(waited, 0, "disjoint-segment writers must never block on heap locks");
            }
        });
        let c = h.contention();
        assert!(
            c.segments.iter().all(|&w| w == 0),
            "no segment lock saw a contended acquisition: {:?}",
            c.segments
        );
        assert!(
            c.table_shards.iter().all(|&w| w == 0),
            "oid-partitioned shards must not contend: {:?}",
            c.table_shards
        );
    }

    #[test]
    fn contended_single_segment_writers_stay_correct() {
        // The opposite extreme: every thread hammers the same segment.
        // Contention is expected; correctness is what's asserted.
        const THREADS: usize = 4;
        const PER: usize = 32;
        let (h, _) = heap("contend", Placement::Segments, 1, 128);
        let mut oids = Vec::new();
        for i in 0..THREADS * PER {
            oids.push(h.alloc(SegmentId(0), ClusterHint::NONE, &(i as u32).to_le_bytes(), 0).unwrap());
        }
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let h = &h;
                let mine: Vec<Oid> = oids[t * PER..(t + 1) * PER].to_vec();
                scope.spawn(move || {
                    for round in 0..30u32 {
                        for (j, &oid) in mine.iter().enumerate() {
                            let val = (t as u32) << 24 | round << 8 | j as u32;
                            h.update(oid, &val.to_le_bytes(), 0).unwrap();
                            assert_eq!(h.read(oid).unwrap(), val.to_le_bytes());
                            // Churn the segment's placement state too.
                            let extra =
                                h.alloc(SegmentId(0), ClusterHint::NONE, &[t as u8; 64], 0).unwrap();
                            h.free(extra, 0).unwrap();
                        }
                    }
                });
            }
        });
        // Every object holds the last value its owner wrote.
        for (i, &oid) in oids.iter().enumerate() {
            let t = i / PER;
            let j = i % PER;
            let want = (t as u32) << 24 | 29 << 8 | j as u32;
            assert_eq!(h.read(oid).unwrap(), want.to_le_bytes());
        }
        assert_eq!(h.object_count(), oids.len());
    }

    #[test]
    fn pending_versions_are_invisible_until_committed() {
        let (h, _) = heap("mvcc-pend", Placement::Segments, 1, 16);
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, b"v1", 7).unwrap();
        // Pending: invisible to plain reads, visible to its owner.
        assert!(matches!(h.read(oid), Err(StorageError::UnknownObject(_))));
        assert!(!h.exists(oid));
        assert_eq!(h.read_for(oid, 7).unwrap(), b"v1");
        assert!(h.exists_for(oid, 7));
        h.commit_version(oid, 7, 1, u64::MAX);
        assert_eq!(h.read(oid).unwrap(), b"v1");

        // A pending update supersedes for the owner only.
        h.update(oid, b"v2", 8).unwrap();
        assert_eq!(h.read(oid).unwrap(), b"v1");
        assert_eq!(h.read_for(oid, 8).unwrap(), b"v2");
        assert_eq!(h.read_for(oid, 9).unwrap(), b"v1", "foreign txn sees committed");
        h.commit_version(oid, 8, 2, u64::MAX);
        assert_eq!(h.read(oid).unwrap(), b"v2");
        // Snapshot reads resolve by commit LSN.
        assert_eq!(h.read_at(oid, 1).unwrap(), b"v1");
        assert_eq!(h.read_at(oid, 2).unwrap(), b"v2");
        assert!(matches!(h.read_at(oid, 0), Err(StorageError::UnknownObject(_))));
    }

    #[test]
    fn discard_drops_pending_and_restores_committed() {
        let (h, _) = heap("mvcc-disc", Placement::Segments, 1, 16);
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, b"base", 0).unwrap();
        h.update(oid, b"doomed", 5).unwrap();
        h.update(oid, b"doomed again", 5).unwrap(); // replaces own pending in place
        h.discard_txn(oid, 5);
        assert_eq!(h.read(oid).unwrap(), b"base");
        // An aborted allocation vanishes entirely.
        let fresh = h.alloc(SegmentId(0), ClusterHint::NONE, b"never", 6).unwrap();
        h.discard_txn(fresh, 6);
        assert!(!h.exists(fresh));
        assert!(!h.exists_for(fresh, 6));
        // A pending tombstone discards back to visible.
        h.free(oid, 9).unwrap();
        assert!(!h.exists_for(oid, 9));
        h.discard_txn(oid, 9);
        assert_eq!(h.read(oid).unwrap(), b"base");
    }

    #[test]
    fn gc_honours_the_snapshot_low_water_mark() {
        let (h, stats) = heap("mvcc-gc", Placement::Segments, 1, 16);
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, b"v1", 1).unwrap();
        h.commit_version(oid, 1, 1, u64::MAX);
        h.update(oid, b"v2", 2).unwrap();
        h.commit_version(oid, 2, 2, u64::MAX);
        h.update(oid, b"v3", 3).unwrap();
        h.commit_version(oid, 3, 3, u64::MAX);

        // A snapshot pinned at LSN 1 keeps v1 — and conservatively
        // everything newer (a higher-LSN snapshot could still open).
        h.collect_garbage(1);
        assert_eq!(h.read_at(oid, 1).unwrap(), b"v1", "pinned version survives GC");
        assert_eq!(h.read_at(oid, 2).unwrap(), b"v2");
        assert_eq!(h.read(oid).unwrap(), b"v3");

        // With a floor of 2, v1 is older than the floor-visible version
        // (v2) and must be reclaimed; v2 itself stays. Reading below
        // the floor afterwards is an illegal snapshot (no such snapshot
        // can be open) and reports the object as unknown.
        h.collect_garbage(2);
        assert_eq!(h.read_at(oid, 2).unwrap(), b"v2", "floor-visible version survives");
        assert!(h.read_at(oid, 1).is_err(), "v1 reclaimed");

        // Snapshot released: everything below latest goes.
        h.collect_garbage(u64::MAX);
        assert!(h.read_at(oid, 2).is_err(), "floor gone, only latest survives");
        assert_eq!(h.read_at(oid, 3).unwrap(), b"v3");
        assert_eq!(h.read(oid).unwrap(), b"v3");
        assert!(stats.snapshot().versions_gced >= 2);

        // A committed tombstone is itself collectable once unpinned.
        h.free(oid, 4).unwrap();
        h.commit_version(oid, 4, 4, u64::MAX);
        assert!(!h.exists(oid));
        h.collect_garbage(u64::MAX);
        assert!(!h.exists(oid));
        assert_eq!(h.object_count(), 0);
    }

    #[test]
    fn commit_trims_chains_past_the_soft_bound() {
        let (h, _) = heap("mvcc-trim", Placement::Segments, 1, 32);
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, b"v0", 1).unwrap();
        h.commit_version(oid, 1, 1, u64::MAX);
        for i in 2..=(MAX_CHAIN as u64 + 6) {
            h.update(oid, format!("v{i}").as_bytes(), i).unwrap();
            h.commit_version(oid, i, i, u64::MAX);
        }
        let len = {
            let shard = h.table[(oid.raw() % TABLE_SHARDS as u64) as usize].map.read();
            shard.get(&oid.raw()).unwrap().len()
        };
        assert!(len <= MAX_CHAIN + 1, "commit-time trim bounds the chain, got {len}");
        // With a floor pinning everything, commits must NOT trim.
        let (h2, _) = heap("mvcc-trim2", Placement::Segments, 1, 32);
        let o2 = h2.alloc(SegmentId(0), ClusterHint::NONE, b"v0", 1).unwrap();
        h2.commit_version(o2, 1, 1, 0);
        for i in 2..=(MAX_CHAIN as u64 + 6) {
            h2.update(o2, format!("v{i}").as_bytes(), i).unwrap();
            h2.commit_version(o2, i, i, 0);
        }
        assert_eq!(h2.read_at(o2, 1).unwrap(), b"v0", "floor 0 pins the whole history");
    }

    /// Regression for the commit/begin_snapshot race: the engine samples
    /// the snapshot floor before the flip, but a snapshot can register
    /// at the pre-flip LSN right after the sample (registration takes
    /// only the registry lock). Even when the sampled floor says nothing
    /// is pinned (`u64::MAX`), a commit-time trim must keep the previous
    /// committed head — the version such a snapshot is entitled to.
    #[test]
    fn commit_trim_with_stale_floor_keeps_the_pre_flip_head() {
        let (h, _) = heap("mvcc-stale-floor", Placement::Segments, 1, 32);
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, b"v1", 1).unwrap();
        h.commit_version(oid, 1, 1, u64::MAX);
        // Grow the chain with a "no snapshot open" floor, as a racing
        // engine commit would pass it. 2*MAX_CHAIN commits make the
        // trim fire on the last one (the chain re-crosses the soft
        // bound exactly then after the earlier trim cut it to two).
        let last = 2 * MAX_CHAIN as u64;
        for i in 2..=last {
            h.update(oid, format!("v{i}").as_bytes(), i).unwrap();
            h.commit_version(oid, i, i, u64::MAX);
        }
        let len = {
            let shard = h.table[(oid.raw() % TABLE_SHARDS as u64) as usize].map.read();
            shard.get(&oid.raw()).unwrap().len()
        };
        assert_eq!(len, 2, "the final commit must have trimmed the chain");
        // A snapshot pinned at the pre-flip LSN of the latest commit
        // still resolves its version; only strictly older ones went.
        let pre_flip = last - 1;
        assert_eq!(
            h.read_at(oid, pre_flip).unwrap(),
            format!("v{pre_flip}").as_bytes(),
            "pre-flip committed head must survive a stale-floor trim"
        );
        assert_eq!(h.read_at(oid, last).unwrap(), format!("v{last}").as_bytes());
        assert!(
            h.read_at(oid, pre_flip - 1).is_err(),
            "versions below the pre-flip head are still reclaimed"
        );
    }

    #[test]
    fn latch_free_readers_survive_concurrent_gc() {
        // The epoch machinery's reason to exist: a writer keeps
        // superseding the object's only committed version (condemning
        // the old one) and GC keeps freeing the condemned records, while
        // latch-free readers resolve and dereference version locations
        // with no table lock held. Every read must see one of the two
        // payloads — never a torn, freed, or foreign record.
        let (h, _) = heap("mvcc-race", Placement::Segments, 1, 64);
        let small = vec![7u8; 100];
        let large = vec![9u8; 3000];
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &small, 0).unwrap();
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 0..1_500usize {
                    let payload = if i % 2 == 0 { &large } else { &small };
                    h.update(oid, payload, 0).unwrap();
                    if i % 16 == 0 {
                        h.collect_garbage(u64::MAX);
                    }
                }
            });
            let mut readers = Vec::new();
            for _ in 0..3 {
                readers.push(scope.spawn(|| {
                    for _ in 0..2_000 {
                        let got = h.read(oid).unwrap();
                        assert!(
                            got == small || got == large,
                            "reader saw a torn/freed payload of {} bytes",
                            got.len()
                        );
                    }
                }));
            }
            writer.join().unwrap();
            for r in readers {
                r.join().unwrap();
            }
        });
    }

    #[test]
    fn snapshot_scans_pin_history_under_writers() {
        // A scanner reading at a pinned LSN races a writer committing
        // new versions (GC floor respects the pin): the scanner must
        // always see exactly its snapshot's value.
        let (h, _) = heap("mvcc-pin", Placement::Segments, 1, 64);
        let base = vec![0x42u8; 600];
        let oid = h.alloc(SegmentId(0), ClusterHint::NONE, &base, 1).unwrap();
        h.commit_version(oid, 1, 1, u64::MAX);
        std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                for i in 2..300u64 {
                    h.update(oid, &vec![(i % 251) as u8; 700], i).unwrap();
                    h.commit_version(oid, i, i, 1);
                    if i % 16 == 0 {
                        h.collect_garbage(1);
                    }
                }
            });
            let mut scanners = Vec::new();
            for _ in 0..2 {
                scanners.push(scope.spawn(|| {
                    for _ in 0..1_500 {
                        assert_eq!(
                            h.read_at(oid, 1).unwrap(),
                            base,
                            "snapshot read must see its pinned version"
                        );
                    }
                }));
            }
            writer.join().unwrap();
            for s in scanners {
                s.join().unwrap();
            }
        });
        // Snapshot gone: GC with no floor leaves only the newest.
        h.collect_garbage(u64::MAX);
        assert_eq!(h.read(oid).unwrap(), vec![(299u64 % 251) as u8; 700]);
    }

    #[test]
    fn many_objects_survive_tiny_pool() {
        let (h, _) = heap("tiny", Placement::AddressOrder, 1, 2);
        let mut oids = Vec::new();
        for i in 0..500u32 {
            oids.push(h.alloc(SegmentId(0), ClusterHint::NONE, &i.to_le_bytes(), 0).unwrap());
        }
        for (i, &oid) in oids.iter().enumerate() {
            assert_eq!(h.read(oid).unwrap(), (i as u32).to_le_bytes());
        }
    }
}
