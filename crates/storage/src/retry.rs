//! Bounded retry for transient I/O errors.
//!
//! Disks and VFS layers occasionally fail an individual read, write, or
//! sync for reasons that do not recur (`SimVfs` models this with its
//! seeded `fail_ops` plan; real kernels return `EINTR`/`EAGAIN`-class
//! errors). Aborting a whole transaction over one such blip is
//! needlessly fragile, so the `PageFile` and WAL call sites route raw
//! VFS operations through [`with_retries`].
//!
//! Two properties matter here:
//!
//! - **Bounded.** A persistent failure (dead disk, powered-off
//!   `SimVfs`) must surface quickly as a typed error; we retry at most
//!   [`ATTEMPTS`] times.
//! - **Deterministic.** The backoff is a doubling `yield_now` loop, not
//!   a wall-clock sleep. `SimVfs` injects faults by *operation count*,
//!   so a scheduling-based backoff keeps crashtest runs byte-for-byte
//!   reproducible, and — unlike a sleep — it is safe at call sites that
//!   hold the page-file or WAL-writer lock (the lock-discipline checker
//!   flags guards held across blocking calls).
//!
//! Only [`StorageError::Io`] is retried: corruption, lock, and caller
//! errors are deterministic and would fail identically on every
//! attempt.

use crate::error::{Result, StorageError};

/// Total attempts per operation (one initial try plus two retries).
pub const ATTEMPTS: u32 = 3;

/// Run `op`, retrying transient I/O errors with deterministic backoff.
///
/// Returns the first success, or the last error once attempts are
/// exhausted. Non-I/O errors are returned immediately. `on_retry` is
/// invoked once per retry (not per attempt) so callers can count
/// retries in their stats without threading the stats handle in here.
pub fn with_retries<T>(
    mut op: impl FnMut() -> Result<T>,
    mut on_retry: impl FnMut(),
) -> Result<T> {
    let mut backoff = 1u32;
    let mut attempt = 1;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(StorageError::Io(_)) if attempt < ATTEMPTS => {
                on_retry();
                for _ in 0..backoff {
                    std::thread::yield_now();
                }
                backoff = backoff.saturating_mul(4);
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io;

    #[test]
    fn transient_failure_is_retried_to_success() {
        let mut calls = 0;
        let mut retries = 0;
        let out = with_retries(
            || {
                calls += 1;
                if calls < 3 {
                    Err(StorageError::Io(io::Error::other("blip")))
                } else {
                    Ok(42)
                }
            },
            || retries += 1,
        );
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn persistent_failure_is_bounded() {
        let mut calls = 0;
        let out: Result<()> = with_retries(
            || {
                calls += 1;
                Err(StorageError::Io(io::Error::other("dead disk")))
            },
            || {},
        );
        assert!(matches!(out, Err(StorageError::Io(_))));
        assert_eq!(calls, ATTEMPTS);
    }

    #[test]
    fn non_io_errors_are_not_retried() {
        let mut calls = 0;
        let out: Result<()> = with_retries(
            || {
                calls += 1;
                Err(StorageError::Corrupt("bad page".into()))
            },
            || {},
        );
        assert!(matches!(out, Err(StorageError::Corrupt(_))));
        assert_eq!(calls, 1);
    }
}
