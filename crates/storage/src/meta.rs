//! Checkpoint metadata file: the heap's object table and allocation state,
//! written atomically (tmp file + rename) at each checkpoint.

use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::Path;

use crate::error::{Result, StorageError};
use crate::heap::Heap;

const MAGIC: &[u8; 8] = b"LABFLOW1";
const VERSION: u32 = 1;

/// Atomically persist the heap metadata to `path`.
pub fn write_meta(path: &Path, heap: &Heap) -> Result<()> {
    let mut body = Vec::with_capacity(4096);
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&VERSION.to_le_bytes());
    heap.dump_meta(&mut body);
    let tmp = path.with_extension("meta.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Load heap metadata from `path` into `heap`. Returns `false` if the
/// file does not exist (fresh store).
pub fn read_meta(path: &Path, heap: &Heap) -> Result<bool> {
    let mut data = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut data)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e.into()),
    }
    if data.len() < 12 || &data[0..8] != MAGIC {
        return Err(StorageError::Corrupt("bad meta magic".into()));
    }
    let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
    if version != VERSION {
        return Err(StorageError::Corrupt(format!("unsupported meta version {version}")));
    }
    heap.load_meta(&data[12..])?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::heap::Placement;
    use crate::ids::{ClusterHint, SegmentId};
    use crate::pagefile::PageFile;
    use crate::stats::StorageStats;
    use std::sync::Arc;

    fn mk(name: &str) -> (Heap, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("lfs-meta-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), 16, false));
        (Heap::new(pool, file, stats, Placement::Segments, 2, 0, 1), dir.join("store.meta"))
    }

    #[test]
    fn round_trip() {
        let (heap, path) = mk("rt");
        let oid = heap.alloc(SegmentId(1), ClusterHint::NONE, b"meta me").unwrap();
        write_meta(&path, &heap).unwrap();
        assert!(read_meta(&path, &heap).unwrap());
        assert_eq!(heap.read(oid).unwrap(), b"meta me");
    }

    #[test]
    fn missing_file_reports_fresh() {
        let (heap, path) = mk("fresh");
        assert!(!read_meta(&path.with_extension("nope"), &heap).unwrap());
    }

    #[test]
    fn bad_magic_rejected() {
        let (heap, path) = mk("magic");
        std::fs::write(&path, b"NOTMETA!....").unwrap();
        assert!(matches!(read_meta(&path, &heap), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let (heap, path) = mk("ver");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read_meta(&path, &heap), Err(StorageError::Corrupt(_))));
    }
}
