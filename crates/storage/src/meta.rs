//! Checkpoint metadata file: the heap's object table and allocation state,
//! written atomically (tmp file + rename) at each checkpoint.
//!
//! Since version 2 the header also carries the *checkpoint epoch*: a
//! counter bumped by every checkpoint and stamped into the WAL's reset
//! frame, so recovery can tell whether the log on disk belongs to this
//! metadata (crashes can separate the metadata flip from the log
//! truncation).

use std::path::Path;
use std::sync::Arc;

use crate::error::{Result, StorageError};
use crate::heap::Heap;
use crate::vfs::{OpenMode, Vfs};

const MAGIC: &[u8; 8] = b"LABFLOW1";
const VERSION: u32 = 2;
const HEADER: usize = 8 + 4 + 8; // magic + version + epoch

/// Atomically persist the heap metadata to `path`, stamped with the
/// checkpoint `epoch`.
pub fn write_meta(vfs: &Arc<dyn Vfs>, path: &Path, heap: &Heap, epoch: u64) -> Result<()> {
    let mut body = Vec::with_capacity(4096);
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&VERSION.to_le_bytes());
    body.extend_from_slice(&epoch.to_le_bytes());
    heap.dump_meta(&mut body);
    let tmp = path.with_extension("meta.tmp");
    {
        let mut f = vfs.open(&tmp, OpenMode::Create)?;
        f.write_at(0, &body)?;
        f.sync()?;
    }
    vfs.rename(&tmp, path)?;
    Ok(())
}

/// Load heap metadata from `path` into `heap`. Returns the stored
/// checkpoint epoch, or `None` if the file does not exist (fresh store).
pub fn read_meta(vfs: &Arc<dyn Vfs>, path: &Path, heap: &Heap) -> Result<Option<u64>> {
    let Some(data) = vfs.read_all(path)? else {
        return Ok(None);
    };
    let Some((header, body)) = data.split_at_checked(HEADER) else {
        return Err(StorageError::Corrupt("bad meta magic".into()));
    };
    let (magic, tail) = header.split_at(8);
    let (ver_bytes, epoch_bytes) = tail.split_at(4);
    if magic != MAGIC {
        return Err(StorageError::Corrupt("bad meta magic".into()));
    }
    let version = u32::from_le_bytes(
        ver_bytes.try_into().map_err(|_| StorageError::Corrupt("short meta header".into()))?,
    );
    if version != VERSION {
        return Err(StorageError::Corrupt(format!("unsupported meta version {version}")));
    }
    let epoch = u64::from_le_bytes(
        epoch_bytes.try_into().map_err(|_| StorageError::Corrupt("short meta header".into()))?,
    );
    heap.load_meta(body)?;
    Ok(Some(epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::heap::Placement;
    use crate::ids::{ClusterHint, SegmentId};
    use crate::pagefile::PageFile;
    use crate::stats::StorageStats;
    use crate::vfs::RealVfs;
    use std::sync::Arc;

    fn mk(name: &str) -> (Arc<dyn Vfs>, Heap, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("lfs-meta-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), 16, false));
        (vfs, Heap::new(pool, file, stats, Placement::Segments, 2, 0, 1), dir.join("store.meta"))
    }

    #[test]
    fn round_trip_with_epoch() {
        let (vfs, heap, path) = mk("rt");
        let oid = heap.alloc(SegmentId(1), ClusterHint::NONE, b"meta me").unwrap();
        write_meta(&vfs, &path, &heap, 41).unwrap();
        assert_eq!(read_meta(&vfs, &path, &heap).unwrap(), Some(41));
        assert_eq!(heap.read(oid).unwrap(), b"meta me");
    }

    #[test]
    fn missing_file_reports_fresh() {
        let (vfs, heap, path) = mk("fresh");
        assert_eq!(read_meta(&vfs, &path.with_extension("nope"), &heap).unwrap(), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let (vfs, heap, path) = mk("magic");
        std::fs::write(&path, b"NOTMETA!............").unwrap();
        assert!(matches!(read_meta(&vfs, &path, &heap), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let (vfs, heap, path) = mk("ver");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        data.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read_meta(&vfs, &path, &heap), Err(StorageError::Corrupt(_))));
    }
}
