//! Checkpoint metadata file: the heap's object table and allocation state,
//! written atomically (tmp file + sync + rename + directory sync) at each
//! checkpoint.
//!
//! Since version 2 the header carries the *checkpoint epoch*: a counter
//! bumped by every checkpoint and stamped into the WAL's reset frame, so
//! recovery can tell whether the log on disk belongs to this metadata
//! (crashes can separate the metadata flip from the log truncation).
//!
//! Version 3 widens the header into a verification record and seals the
//! whole file:
//!
//! ```text
//! magic 8 | version u32 | epoch u64
//! | nquar u32 | quarantined page ids (u32 each)
//! | nvers u32 | per-page lsn floors (u64 each)
//! | heap dump | fnv1a-32 over all prior bytes
//! ```
//!
//! The per-page LSN floors are what let the page file tell a fresh page
//! from a lost or misdirected write (a stale-but-valid image); the
//! quarantine list keeps persistently damaged pages fenced across
//! restarts. The trailing checksum makes the meta file as self-checking
//! as the pages it describes — a bit flipped at rest surfaces as a typed
//! [`StorageError::Corrupt`], never as a silently wrong object table.

use std::path::Path;
use std::sync::Arc;

use crate::checksum::fnv1a;
use crate::error::{Result, StorageError};
use crate::heap::Heap;
use crate::vfs::{OpenMode, Vfs};

const MAGIC: &[u8; 8] = b"LABFLOW1";
const VERSION: u32 = 3;

/// The verification state a checkpoint persists alongside the heap dump.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetaState {
    /// Checkpoint epoch (matched against the WAL's reset frame).
    pub epoch: u64,
    /// Pages quarantined for persistent damage at checkpoint time.
    pub quarantined: Vec<u32>,
    /// Per-page LSN floors: the LSN each written page carried when the
    /// checkpoint image was synced (0 = no written image expected).
    pub versions: Vec<u64>,
}

/// Atomically persist the heap metadata plus verification `state` to
/// `path`. Durability of the rename itself is ensured with a directory
/// sync — without it a power loss can roll the namespace back to the
/// old meta while the WAL has already been truncated.
pub fn write_meta(vfs: &Arc<dyn Vfs>, path: &Path, heap: &Heap, state: &MetaState) -> Result<()> {
    let mut body = Vec::with_capacity(4096);
    body.extend_from_slice(MAGIC);
    body.extend_from_slice(&VERSION.to_le_bytes());
    body.extend_from_slice(&state.epoch.to_le_bytes());
    body.extend_from_slice(&(state.quarantined.len() as u32).to_le_bytes());
    for pid in &state.quarantined {
        body.extend_from_slice(&pid.to_le_bytes());
    }
    body.extend_from_slice(&(state.versions.len() as u32).to_le_bytes());
    for v in &state.versions {
        body.extend_from_slice(&v.to_le_bytes());
    }
    heap.dump_meta(&mut body);
    let crc = fnv1a(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    let tmp = path.with_extension("meta.tmp");
    {
        let mut f = vfs.open(&tmp, OpenMode::Create)?;
        f.write_at(0, &body)?;
        f.sync()?;
    }
    vfs.rename(&tmp, path)?;
    let parent = path.parent().unwrap_or_else(|| Path::new("."));
    vfs.sync_dir(parent)?;
    Ok(())
}

fn corrupt(detail: &str) -> StorageError {
    StorageError::Corrupt(format!("meta file: {detail}"))
}

fn take_u32<'a>(b: &'a [u8], what: &str) -> Result<(u32, &'a [u8])> {
    let (head, rest) = b.split_at_checked(4).ok_or_else(|| corrupt(what))?;
    let arr: [u8; 4] = head.try_into().map_err(|_| corrupt(what))?;
    Ok((u32::from_le_bytes(arr), rest))
}

fn take_u64<'a>(b: &'a [u8], what: &str) -> Result<(u64, &'a [u8])> {
    let (head, rest) = b.split_at_checked(8).ok_or_else(|| corrupt(what))?;
    let arr: [u8; 8] = head.try_into().map_err(|_| corrupt(what))?;
    Ok((u64::from_le_bytes(arr), rest))
}

/// Verify the whole-file checksum and decode the verification header,
/// returning the remaining bytes (the heap dump). Used both by
/// [`read_meta`] and by the scrubber, which wants the quarantine list
/// and LSN floors without materializing a heap.
pub fn parse_meta_header(data: &[u8]) -> Result<(MetaState, &[u8])> {
    let (sealed, crc_bytes) =
        data.split_at_checked(data.len().saturating_sub(4)).ok_or_else(|| corrupt("too short"))?;
    let crc_arr: [u8; 4] = crc_bytes.try_into().map_err(|_| corrupt("too short"))?;
    if fnv1a(sealed) != u32::from_le_bytes(crc_arr) {
        return Err(corrupt("whole-file checksum mismatch (damaged at rest)"));
    }
    let (magic, rest) = sealed.split_at_checked(8).ok_or_else(|| corrupt("bad magic"))?;
    if magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let (version, rest) = take_u32(rest, "short header")?;
    if version != VERSION {
        return Err(corrupt(&format!("unsupported version {version}")));
    }
    let (epoch, rest) = take_u64(rest, "short header")?;
    let (nquar, mut rest) = take_u32(rest, "short quarantine table")?;
    let mut quarantined = Vec::with_capacity(nquar as usize);
    for _ in 0..nquar {
        let (pid, r) = take_u32(rest, "short quarantine table")?;
        quarantined.push(pid);
        rest = r;
    }
    let (nvers, mut rest) = take_u32(rest, "short version table")?;
    let mut versions = Vec::with_capacity(nvers as usize);
    for _ in 0..nvers {
        let (v, r) = take_u64(rest, "short version table")?;
        versions.push(v);
        rest = r;
    }
    Ok((MetaState { epoch, quarantined, versions }, rest))
}

/// Load heap metadata from `path` into `heap`. Returns the stored
/// verification state, or `None` if the file does not exist (fresh
/// store). Any damage — truncation, bit rot, a bad magic — is a typed
/// [`StorageError::Corrupt`].
pub fn read_meta(vfs: &Arc<dyn Vfs>, path: &Path, heap: &Heap) -> Result<Option<MetaState>> {
    let Some(data) = vfs.read_all(path)? else {
        return Ok(None);
    };
    let (state, body) = parse_meta_header(&data)?;
    heap.load_meta(body)?;
    Ok(Some(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;
    use crate::heap::Placement;
    use crate::ids::{ClusterHint, SegmentId};
    use crate::pagefile::PageFile;
    use crate::stats::StorageStats;
    use crate::vfs::RealVfs;
    use std::sync::Arc;

    fn mk(name: &str) -> (Arc<dyn Vfs>, Heap, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("lfs-meta-{}-{}", std::process::id(), name));
        std::fs::create_dir_all(&dir).unwrap();
        let vfs = RealVfs::arc();
        let stats = Arc::new(StorageStats::default());
        let file = Arc::new(PageFile::create(&vfs, &dir.join("d.pg"), stats.clone()).unwrap());
        let pool = Arc::new(BufferPool::new(file.clone(), stats.clone(), 16, false));
        (vfs, Heap::new(pool, file, stats, Placement::Segments, 2, 0, 1), dir.join("store.meta"))
    }

    fn state() -> MetaState {
        MetaState { epoch: 41, quarantined: vec![3, 9], versions: vec![0, 7, 8, 0] }
    }

    #[test]
    fn round_trip_with_verification_state() {
        let (vfs, heap, path) = mk("rt");
        let oid = heap.alloc(SegmentId(1), ClusterHint::NONE, b"meta me", 0).unwrap();
        write_meta(&vfs, &path, &heap, &state()).unwrap();
        assert_eq!(read_meta(&vfs, &path, &heap).unwrap(), Some(state()));
        assert_eq!(heap.read(oid).unwrap(), b"meta me");
    }

    #[test]
    fn missing_file_reports_fresh() {
        let (vfs, heap, path) = mk("fresh");
        assert_eq!(read_meta(&vfs, &path.with_extension("nope"), &heap).unwrap(), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let (vfs, heap, path) = mk("magic");
        // A file with the right shape (trailing crc intact) but the
        // wrong magic: seal a bogus body so only the magic check trips.
        let mut data = b"NOTMETA!............".to_vec();
        let crc = fnv1a(&data);
        data.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read_meta(&vfs, &path, &heap), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let (vfs, heap, path) = mk("ver");
        let mut data = Vec::new();
        data.extend_from_slice(MAGIC);
        data.extend_from_slice(&99u32.to_le_bytes());
        data.extend_from_slice(&0u64.to_le_bytes());
        let crc = fnv1a(&data);
        data.extend_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &data).unwrap();
        assert!(matches!(read_meta(&vfs, &path, &heap), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn bit_rot_fails_the_whole_file_checksum() {
        let (vfs, heap, path) = mk("rot");
        heap.alloc(SegmentId(1), ClusterHint::NONE, b"sealed", 0).unwrap();
        write_meta(&vfs, &path, &heap, &state()).unwrap();
        let mut data = std::fs::read(&path).unwrap();
        let mid = data.len() / 2;
        data[mid] ^= 0x04;
        std::fs::write(&path, &data).unwrap();
        let err = read_meta(&vfs, &path, &heap).unwrap_err();
        assert!(err.is_corruption(), "want typed corruption, got {err}");
    }

    #[test]
    fn header_parse_skips_the_heap() {
        let (vfs, heap, path) = mk("hdr");
        heap.alloc(SegmentId(1), ClusterHint::NONE, b"ignored by scrub", 0).unwrap();
        write_meta(&vfs, &path, &heap, &state()).unwrap();
        let data = std::fs::read(&path).unwrap();
        let (got, body) = parse_meta_header(&data).unwrap();
        assert_eq!(got, state());
        assert!(!body.is_empty(), "heap dump rides behind the header");
    }
}
