//! Identifier newtypes used across the storage layer.

use std::fmt;

/// A persistent object identifier.
///
/// Oids are opaque, monotonically assigned, and never reused. The mapping
/// from oid to physical location lives in the store's object table, so an
/// object may move (e.g. when an update outgrows its slot) without its oid
/// changing — the indirection ObjectStore and Texas both provide in their
/// own ways (page-server handles vs. swizzle tables).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(u64);

impl Oid {
    /// The nil oid, used as a "null pointer" in persistent structures.
    pub const NIL: Oid = Oid(0);

    /// Construct an oid from its raw representation.
    pub const fn from_raw(raw: u64) -> Self {
        Oid(raw)
    }

    /// The raw representation of this oid.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this is the nil oid.
    pub const fn is_nil(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Oid({})", self.0)
    }
}

/// A page number within the store's data file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A slot index within a slotted page.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Slot(pub u16);

/// A placement segment.
///
/// Segments are the clustering mechanism the paper credits for
/// ObjectStore's performance: "LabBase uses four such segments, three of
/// which contain relatively small amounts of frequently accessed data and
/// one of which contains a relatively large amount of infrequently
/// accessed data." Backends without clustering control (Texas) accept any
/// segment id but place everything in one address-ordered heap.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegmentId(pub u8);

impl SegmentId {
    /// The default segment, present in every backend.
    pub const DEFAULT: SegmentId = SegmentId(0);
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// A transaction identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxnId(u64);

impl TxnId {
    /// Construct a txn id from its raw representation.
    pub const fn from_raw(raw: u64) -> Self {
        TxnId(raw)
    }

    /// The raw representation.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}", self.0)
    }
}

/// A clustering hint passed by the client at allocation time.
///
/// For `Texas+TC` this is the handle the client-side clustering code keys
/// its chunks on (LabBase passes the owning material's oid, so a
/// material's history co-locates). Segment-based backends ignore it; the
/// plain Texas backend ignores it by design — that is the whole point of
/// the comparison.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ClusterHint(pub u64);

impl ClusterHint {
    /// No clustering preference.
    pub const NONE: ClusterHint = ClusterHint(0);

    /// Cluster near the given object.
    pub fn near(oid: Oid) -> Self {
        ClusterHint(oid.raw())
    }

    /// Whether this hint expresses a preference.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_nil_and_raw_round_trip() {
        assert!(Oid::NIL.is_nil());
        let o = Oid::from_raw(42);
        assert!(!o.is_nil());
        assert_eq!(o.raw(), 42);
        assert_eq!(o.to_string(), "#42");
    }

    #[test]
    fn cluster_hint_near() {
        assert!(ClusterHint::NONE.is_none());
        assert!(!ClusterHint::near(Oid::from_raw(9)).is_none());
        assert_eq!(ClusterHint::near(Oid::from_raw(9)), ClusterHint(9));
    }

    #[test]
    fn ids_are_ordered_and_displayable() {
        assert!(Oid::from_raw(1) < Oid::from_raw(2));
        assert_eq!(PageId(3).to_string(), "p3");
        assert_eq!(SegmentId(2).to_string(), "seg2");
        assert_eq!(TxnId::from_raw(5).to_string(), "txn5");
    }
}
