//! Integration tests for runtime lock-rank enforcement: a constructed
//! inversion panics in debug builds, and the whole mechanism is a no-op
//! (zero-sized, nothing tracked) in release builds. Run with
//! `cargo test -p labflow-storage --test lock_rank` (debug) and
//! `cargo test -p labflow-storage --release --test lock_rank` to see
//! both sides.

use labflow_storage::lock_order;

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-rank inversion")]
fn constructed_inversion_panics_in_debug() {
    // Take the WAL writer (rank 50), then try the lock-manager shard
    // (rank 20): the exact shape the static analyzer would flag, caught
    // here at runtime instead.
    let _wal = lock_order::acquire(lock_order::WAL_WRITER);
    let _shard = lock_order::acquire(lock_order::LOCK_SHARD);
}

#[cfg(debug_assertions)]
#[test]
fn ranked_guard_releases_rank_with_lock() {
    let mutex = std::sync::Mutex::new(0u32);
    {
        let mut g = lock_order::ranked(lock_order::BUFFER_POOL, || {
            mutex.lock().unwrap_or_else(|e| e.into_inner())
        });
        *g += 1;
        assert_eq!(lock_order::current_max_rank(), Some(lock_order::BUFFER_POOL.rank));
    }
    // Guard dropped: the rank is released, so a lower rank is fine.
    assert_eq!(lock_order::current_max_rank(), None);
    let _low = lock_order::acquire(lock_order::ENGINE_ACTIVE);
}

#[cfg(not(debug_assertions))]
#[test]
fn enforcement_is_compiled_out_in_release() {
    // The very inversion that panics in debug builds is silently
    // accepted: the tokens are zero-sized and nothing is tracked.
    let _wal = lock_order::acquire(lock_order::WAL_WRITER);
    let _shard = lock_order::acquire(lock_order::LOCK_SHARD);
    assert_eq!(lock_order::current_max_rank(), None);
    assert_eq!(std::mem::size_of::<lock_order::RankToken>(), 0);
}

#[test]
fn engine_workload_respects_the_declared_order() {
    // Drive the real engine through allocates, updates, reads, and a
    // checkpoint with the debug checker armed: any rank inversion on
    // these hot paths would panic the test.
    use labflow_storage::{ClusterHint, Engine, Options, Profile, SegmentId, StorageManager};
    let dir = std::env::temp_dir().join(format!("lock_rank_it_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = Options { buffer_pages: 8, ..Options::default() }; // tiny pool: force eviction
    let engine = Engine::create(&dir, Profile::ostore(), opts).expect("create engine");
    let mut oids = Vec::new();
    for i in 0..64u8 {
        let t = engine.begin().expect("begin");
        let oid = engine
            .allocate(t, SegmentId(1), ClusterHint(0), &[i; 128])
            .expect("allocate");
        engine.commit(t).expect("commit");
        oids.push(oid);
    }
    let t = engine.begin().expect("begin");
    for (i, oid) in oids.iter().enumerate() {
        engine.update(t, *oid, &[i as u8 ^ 0xAA; 64]).expect("update");
    }
    engine.commit(t).expect("commit");
    engine.checkpoint().expect("checkpoint");
    for (i, oid) in oids.iter().enumerate() {
        assert_eq!(engine.read(*oid).expect("read"), vec![i as u8 ^ 0xAA; 64]);
    }
    drop(engine);
    let _ = std::fs::remove_dir_all(&dir);
}
