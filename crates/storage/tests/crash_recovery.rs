//! Crash-recovery integration tests on the simulated file system.
//!
//! The in-crate unit tests cover the recovery algorithm's pieces; these
//! exercise the whole stack — engine, WAL, buffer pool, checkpointing —
//! through the public API against [`SimVfs`] power-loss semantics. The
//! randomized many-seed version of this lives in
//! `cargo xtask crashtest`; here are the directed cases.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use labflow_storage::{
    ClusterHint, FaultPlan, OStore, Options, Oid, SegmentId, SimVfs, StorageManager, Texas, Vfs,
};

fn opts() -> Options {
    Options {
        buffer_pages: 16,
        sync_commit: true,
        lock_timeout: Duration::from_millis(200),
        group_commit_window: None,
    }
}

fn seg() -> SegmentId {
    SegmentId(0)
}

/// Allocate `n` objects in one committed transaction; return their oids.
fn commit_objects(store: &dyn StorageManager, n: usize, tag: u8) -> Vec<Oid> {
    let txn = store.begin().unwrap();
    let oids: Vec<Oid> = (0..n)
        .map(|i| store.allocate(txn, seg(), ClusterHint::NONE, &[tag, i as u8, 7]).unwrap())
        .collect();
    store.commit(txn).unwrap();
    oids
}

/// Read the full object map of a store.
fn state_of(store: &labflow_storage::Engine) -> Vec<(u64, Vec<u8>)> {
    let mut out: Vec<(u64, Vec<u8>)> = store
        .live_oids()
        .into_iter()
        .map(|oid| (oid.raw(), store.read(oid).unwrap()))
        .collect();
    out.sort();
    out
}

/// Recovery is idempotent: recovering the same crashed image twice —
/// and re-opening an already-recovered image — always lands on the same
/// logical state.
#[test]
fn recovery_is_idempotent_and_deterministic() {
    let sim = SimVfs::new(41);
    let dir = PathBuf::from("/sim/idem");
    let store = OStore::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();

    // Committed work, a checkpoint, more committed work, then an
    // uncommitted in-flight transaction at the moment of power loss.
    let first = commit_objects(&store, 8, 1);
    store.checkpoint().unwrap();
    commit_objects(&store, 8, 2);
    let txn = store.begin().unwrap();
    store.update(txn, first[0], b"UNCOMMITTED").unwrap();
    store.allocate(txn, seg(), ClusterHint::NONE, b"loser").unwrap();
    // Power loss with the transaction still open; the store object is
    // abandoned the way a killed process would abandon it.
    drop(store);
    sim.power_loss();

    let crashed_a = sim.clone_durable();
    let crashed_b = sim.clone_durable();

    // First recovery.
    let a = OStore::open_with(Arc::new(crashed_a.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    let state_a = state_of(&a);
    drop(a);
    assert_eq!(state_a.len(), 16, "16 committed objects, loser effects rolled back");
    assert!(
        state_a.iter().all(|(_, data)| data != b"UNCOMMITTED" && data != b"loser"),
        "uncommitted effects must not survive"
    );

    // Determinism: an independent recovery of a copy of the same image.
    let b = OStore::open_with(Arc::new(crashed_b) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    assert_eq!(state_of(&b), state_a, "recovery must be deterministic");
    drop(b);

    // Idempotence: the image `a` recovered (and re-checkpointed) opens
    // to the identical state, twice.
    for _ in 0..2 {
        let again =
            OStore::open_with(Arc::new(crashed_a.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
        assert_eq!(state_of(&again), state_a, "re-opening a recovered store must be a no-op");
    }
}

/// A crash between a checkpoint's metadata flip and its log truncation
/// leaves a stale log (its reset epoch behind the metadata's); recovery
/// must skip it rather than re-apply operations the checkpoint already
/// folded in.
#[test]
fn recovery_survives_power_loss_during_later_work() {
    let sim = SimVfs::new(977);
    let dir = PathBuf::from("/sim/late");
    let store = OStore::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();

    let keep = commit_objects(&store, 4, 3);
    let txn = store.begin().unwrap();
    store.free(txn, keep[3]).unwrap();
    store.commit(txn).unwrap();
    store.checkpoint().unwrap();

    // Post-checkpoint committed work that only the WAL knows about.
    commit_objects(&store, 5, 4);
    drop(store);
    sim.power_loss();

    let store =
        OStore::open_with(Arc::new(sim.clone_durable()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    assert_eq!(store.object_count(), 3 + 5, "checkpointed and WAL-replayed work both present");
    assert!(!store.exists(keep[3]), "checkpointed free must not be resurrected by the log");
}

/// Texas has no WAL: a crash rolls the store back to its last
/// checkpoint, no further and no less.
#[test]
fn texas_crash_rolls_back_to_last_checkpoint() {
    let sim = SimVfs::new(5150);
    let dir = PathBuf::from("/sim/texas");
    let store = Texas::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();

    let oids = commit_objects(&store, 6, 5);
    store.checkpoint().unwrap();
    // Work after the checkpoint: allocations only (Texas updates are
    // in-place and unlogged, so a crash can tear them; allocations of
    // fresh objects are the paper's append-mostly workflow shape).
    commit_objects(&store, 9, 6);
    drop(store);
    sim.power_loss();

    let store =
        Texas::open_with(Arc::new(sim.clone_durable()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    assert_eq!(store.object_count(), 6, "Texas recovers exactly the last checkpoint");
    for (i, oid) in oids.iter().enumerate() {
        assert_eq!(store.read(*oid).unwrap(), vec![5, i as u8, 7]);
    }
}

/// A power loss around a checkpoint's meta-file flip, with the
/// *namespace itself volatile*: the tmp-file create and the rename onto
/// `store.meta` journal in the directory and only become durable at the
/// directory sync, so the crash can land the namespace on either side
/// of the flip (or lose the rename entirely). Whatever prefix survives,
/// recovery must land on a consistent epoch — old meta plus intact log,
/// or new meta plus a stale log it skips — with every committed object
/// present and byte-exact. Sweeping the crash point over the whole
/// checkpoint window exercises every ordering, including the
/// rename-durable-but-log-truncated hazard the directory sync closes.
#[test]
fn meta_rename_reordering_lands_on_a_consistent_epoch() {
    for k in 0..30u64 {
        let sim = SimVfs::new(9000 + k);
        let dir = PathBuf::from("/sim/nsvolatile");
        let store =
            OStore::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
        let oids = commit_objects(&store, 6, 7);
        store.checkpoint().unwrap();
        let more = commit_objects(&store, 5, 9);
        sim.set_plan(FaultPlan {
            crash_at_op: Some(sim.op_count() + k),
            writeback: true,
            volatile_namespace: true,
            ..FaultPlan::default()
        });
        let _ = store.checkpoint(); // dies k ops in (or survives for large k)
        drop(store);
        sim.power_loss();
        let store = OStore::open_with(Arc::new(sim.clone_durable()) as Arc<dyn Vfs>, &dir, opts())
            .unwrap_or_else(|e| panic!("crash {k} ops into the checkpoint: recovery failed: {e}"));
        assert_eq!(store.object_count(), 11, "crash {k} ops into the checkpoint");
        for (i, oid) in oids.iter().enumerate() {
            assert_eq!(store.read(*oid).unwrap(), vec![7, i as u8, 7], "pre-checkpoint, k={k}");
        }
        for (i, oid) in more.iter().enumerate() {
            assert_eq!(store.read(*oid).unwrap(), vec![9, i as u8, 7], "post-checkpoint, k={k}");
        }
    }
}

/// A *single* transient write error is absorbed by the storage layer's
/// bounded retry: no transaction fails, and the retry is visible in the
/// stats rather than in any client's face.
#[test]
fn single_transient_write_error_is_retried_away() {
    let sim = SimVfs::new(303);
    let dir = PathBuf::from("/sim/transient");
    let store = OStore::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();

    // Fail one upcoming file operation; the WAL force makes every
    // commit touch the disk, so some transaction will run into it.
    sim.set_plan(FaultPlan {
        crash_at_op: None,
        fail_ops: vec![sim.op_count() + 40],
        writeback: false,
        ..FaultPlan::default()
    });
    for i in 0..40 {
        let txn = store.begin().unwrap();
        store.allocate(txn, seg(), ClusterHint::NONE, &[9, i]).unwrap();
        store.commit(txn).unwrap();
    }
    assert!(
        store.stats().io_retries >= 1,
        "the planned fault should have been absorbed by a retry"
    );
}

/// A write error that *persists* across the whole retry budget wounds at
/// most the affected transaction; after reopening, the store is healthy
/// and the committed prefix intact.
#[test]
fn persistent_write_error_is_contained() {
    let sim = SimVfs::new(313);
    let dir = PathBuf::from("/sim/persistent");
    let store = OStore::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    let safe = commit_objects(&store, 3, 8);

    // Fail enough *consecutive* operations to exhaust the retry budget
    // (each retry issues a fresh operation), so the error surfaces.
    let base = sim.op_count() + 40;
    sim.set_plan(FaultPlan {
        crash_at_op: None,
        fail_ops: (0..labflow_storage::retry::ATTEMPTS as u64).map(|i| base + i).collect(),
        writeback: false,
        ..FaultPlan::default()
    });
    let mut saw_error = false;
    for i in 0..40 {
        let Ok(txn) = store.begin() else {
            saw_error = true;
            break;
        };
        let alloc = store.allocate(txn, seg(), ClusterHint::NONE, &[9, i]);
        let outcome = match alloc {
            Ok(_) => store.commit(txn),
            Err(e) => {
                let _ = store.abort(txn);
                Err(e)
            }
        };
        if outcome.is_err() {
            saw_error = true;
            break;
        }
    }
    assert!(saw_error, "the planned fault should surface as exactly one failed operation");
    drop(store);

    // No crash happened; reopen heals whatever the failed operation left.
    let store = OStore::open_with(Arc::new(sim) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    for (i, oid) in safe.iter().enumerate() {
        assert_eq!(store.read(*oid).unwrap(), vec![8, i as u8, 7], "pre-fault commits survive");
    }
    store.checkpoint().expect("reopened store must not be wounded");
}

/// Durability precedes visibility: a commit whose WAL force fails must
/// not leave the transaction's versions visible to readers or later
/// snapshots. (Regression: `last_visible` used to advance before the
/// force, so a failed force left visible-but-not-durable state that
/// crash recovery would undo.)
#[test]
fn failed_commit_force_publishes_nothing() {
    let sim = SimVfs::new(777);
    let dir = PathBuf::from("/sim/visdur");
    let store = OStore::create_with(Arc::new(sim.clone()) as Arc<dyn Vfs>, &dir, opts()).unwrap();
    let oid = commit_objects(&store, 1, 8)[0];
    let before = store.read(oid).unwrap();

    let txn = store.begin().unwrap();
    store.update(txn, oid, b"PHANTOM").unwrap();
    // Fail every upcoming mutating operation long enough to exhaust the
    // retry budget on whatever the commit force touches.
    let base = sim.op_count();
    sim.set_plan(FaultPlan {
        fail_ops: (0..8 * labflow_storage::retry::ATTEMPTS as u64).map(|i| base + i).collect(),
        ..FaultPlan::default()
    });
    assert!(store.commit(txn).is_err(), "the planned faults must surface in the force");
    sim.set_plan(FaultPlan::default());

    // Nothing was published: plain reads and fresh snapshots both see
    // the pre-transaction state.
    assert_eq!(store.read(oid).unwrap(), before, "failed commit must not be visible");
    let snap = store.begin_snapshot().unwrap();
    assert_eq!(store.read_at(&snap, oid).unwrap(), before);
    store.release_snapshot(snap);

    // The engine is not stuck: a later transaction on the same object
    // commits and becomes visible.
    let txn = store.begin().unwrap();
    store.update(txn, oid, b"durable").unwrap();
    store.commit(txn).unwrap();
    assert_eq!(store.read(oid).unwrap(), b"durable");
}
