//! Property-based tests for the storage managers: arbitrary operation
//! sequences against a reference model, on every persistent profile,
//! including checkpoint + reopen equivalence.

use std::collections::HashMap;
use std::path::PathBuf;

use proptest::prelude::*;

use labflow_storage::{
    ClusterHint, Engine, Options, Oid, Profile, SegmentId, StorageManager,
};

#[derive(Debug, Clone)]
enum Op {
    /// Allocate an object of the given size filled with `fill`.
    Alloc { seg: u8, hint: u64, size: usize, fill: u8 },
    /// Update the i-th live object (modulo) to a new size/fill.
    Update { pick: usize, size: usize, fill: u8 },
    /// Free the i-th live object (modulo).
    Free { pick: usize },
    /// Read and verify the i-th live object (modulo).
    Read { pick: usize },
    /// Checkpoint.
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..4, any::<u64>(), 0usize..600, any::<u8>())
            .prop_map(|(seg, hint, size, fill)| Op::Alloc { seg, hint, size, fill }),
        // Occasionally huge: exercises overflow chains.
        1 => (0u8..4, any::<u64>(), 4000usize..12_000, any::<u8>())
            .prop_map(|(seg, hint, size, fill)| Op::Alloc { seg, hint, size, fill }),
        2 => (any::<usize>(), 0usize..6000, any::<u8>())
            .prop_map(|(pick, size, fill)| Op::Update { pick, size, fill }),
        1 => any::<usize>().prop_map(|pick| Op::Free { pick }),
        3 => any::<usize>().prop_map(|pick| Op::Read { pick }),
        1 => Just(Op::Checkpoint),
    ]
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lfs-prop-{}-{}-{}",
        std::process::id(),
        tag,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Apply ops to the engine and a HashMap model; verify equivalence
/// throughout and after a checkpoint + reopen.
fn run_model(profile_for: fn() -> Profile, ops: Vec<Op>, tag: &str) {
    let dir = scratch(tag);
    let opts = Options { buffer_pages: 16, ..Options::default() }; // tiny: force eviction
    let engine = Engine::create(&dir, profile_for(), opts.clone()).unwrap();
    let mut model: HashMap<Oid, Vec<u8>> = HashMap::new();
    let mut live: Vec<Oid> = Vec::new();

    for op in &ops {
        match op {
            Op::Alloc { seg, hint, size, fill } => {
                let data = vec![*fill; *size];
                let t = engine.begin().unwrap();
                let oid = engine
                    .allocate(t, SegmentId(*seg), ClusterHint(*hint), &data)
                    .unwrap();
                engine.commit(t).unwrap();
                model.insert(oid, data);
                live.push(oid);
            }
            Op::Update { pick, size, fill } => {
                if live.is_empty() {
                    continue;
                }
                let oid = live[pick % live.len()];
                let data = vec![*fill; *size];
                let t = engine.begin().unwrap();
                engine.update(t, oid, &data).unwrap();
                engine.commit(t).unwrap();
                model.insert(oid, data);
            }
            Op::Free { pick } => {
                if live.is_empty() {
                    continue;
                }
                let idx = pick % live.len();
                let oid = live.swap_remove(idx);
                let t = engine.begin().unwrap();
                engine.free(t, oid).unwrap();
                engine.commit(t).unwrap();
                model.remove(&oid);
            }
            Op::Read { pick } => {
                if live.is_empty() {
                    continue;
                }
                let oid = live[pick % live.len()];
                let got = engine.read(oid).unwrap();
                assert_eq!(&got, model.get(&oid).unwrap(), "read mismatch at {oid}");
            }
            Op::Checkpoint => {
                engine.checkpoint().unwrap();
            }
        }
    }
    // Full sweep.
    assert_eq!(engine.object_count(), model.len());
    for (oid, data) in &model {
        assert_eq!(&engine.read(*oid).unwrap(), data);
    }
    // Checkpoint, reopen, sweep again: durability equivalence.
    engine.checkpoint().unwrap();
    drop(engine);
    let engine = Engine::open(&dir, profile_for(), opts).unwrap();
    assert_eq!(engine.object_count(), model.len());
    for (oid, data) in &model {
        assert_eq!(&engine.read(*oid).unwrap(), data, "post-reopen mismatch at {oid}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ostore_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_model(Profile::ostore, ops, "ostore");
    }

    #[test]
    fn texas_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_model(Profile::texas, ops, "texas");
    }

    #[test]
    fn texas_tc_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_model(Profile::texas_tc, ops, "texastc");
    }

    /// WAL recovery: commit a random prefix of transactions, crash
    /// without checkpoint, reopen — exactly the committed ones survive.
    #[test]
    fn ostore_recovers_committed_prefix(
        txns in proptest::collection::vec(
            (proptest::collection::vec((0usize..400, any::<u8>()), 1..6), any::<bool>()),
            1..20,
        )
    ) {
        let dir = scratch("recover");
        let opts = Options { buffer_pages: 16, ..Options::default() };
        let mut committed: HashMap<Oid, Vec<u8>> = HashMap::new();
        let mut uncommitted: Vec<Oid> = Vec::new();
        {
            let engine = Engine::create(&dir, Profile::ostore(), opts.clone()).unwrap();
            for (allocs, commit) in &txns {
                let t = engine.begin().unwrap();
                let mut oids = Vec::new();
                for (size, fill) in allocs {
                    let data = vec![*fill; *size];
                    let oid = engine
                        .allocate(t, SegmentId(0), ClusterHint::NONE, &data)
                        .unwrap();
                    oids.push((oid, data));
                }
                if *commit {
                    engine.commit(t).unwrap();
                    committed.extend(oids);
                } else {
                    // Neither committed nor aborted: lost in the crash.
                    uncommitted.extend(oids.into_iter().map(|(o, _)| o));
                }
            }
            // Crash: drop without checkpoint.
        }
        let engine = Engine::open(&dir, Profile::ostore(), opts).unwrap();
        for (oid, data) in &committed {
            prop_assert_eq!(&engine.read(*oid).unwrap(), data);
        }
        for oid in &uncommitted {
            prop_assert!(!engine.exists(*oid), "uncommitted {oid} survived the crash");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
