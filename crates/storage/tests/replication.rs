//! Directed tests for the storage-level replication primitives: WAL
//! streaming on the primary, grouped re-apply on a follower, follower
//! crash-durability, and epoch promotion. The networked pipeline and
//! the crash-tortured failover sweep live in `crates/repl` and
//! `cargo xtask failover`; these pin the engine contract they build on.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use labflow_storage::{
    decode_shipped, ClusterHint, OStore, Options, Oid, SegmentId, SimVfs, StorageManager, Vfs,
    WalRecord,
};

fn opts() -> Options {
    Options {
        buffer_pages: 16,
        sync_commit: true,
        lock_timeout: Duration::from_millis(200),
        group_commit_window: None,
    }
}

/// Ship everything past `from` on `primary` to `follower`, grouping
/// records by transaction and applying each transaction whose commit
/// frame arrived — the minimal correct follower pump.
fn ship(
    primary: &dyn StorageManager,
    follower: &dyn StorageManager,
    from: u64,
    pending: &mut HashMap<u64, Vec<WalRecord>>,
) -> u64 {
    let mut at = from;
    loop {
        let chunk = primary.wal_stream_from(at, 1 << 16).unwrap();
        if chunk.is_empty() {
            return at;
        }
        for (_, rec) in decode_shipped(chunk.start, &chunk.bytes).unwrap() {
            match rec {
                WalRecord::Begin(t) => {
                    pending.insert(t, Vec::new());
                }
                WalRecord::Commit(t) => {
                    let recs = pending.remove(&t).unwrap_or_default();
                    follower.replica_apply_commit(&recs).unwrap();
                }
                WalRecord::Abort(t) => {
                    pending.remove(&t);
                }
                WalRecord::Reset(_) => {}
                op => {
                    pending.entry(op.txn()).or_default().push(op);
                }
            }
        }
        at = chunk.end;
    }
}

fn state_of(store: &labflow_storage::Engine) -> Vec<(u64, Vec<u8>)> {
    let mut out: Vec<(u64, Vec<u8>)> = store
        .live_oids()
        .into_iter()
        .map(|oid| (oid.raw(), store.read(oid).unwrap()))
        .collect();
    out.sort();
    out
}

#[test]
fn shipped_commits_reproduce_primary_state_and_survive_follower_crash() {
    let sim = SimVfs::new(7);
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
    let primary = OStore::create_with(vfs.clone(), &PathBuf::from("/sim/pri"), opts()).unwrap();
    let follower = OStore::create_with(vfs.clone(), &PathBuf::from("/sim/fol"), opts()).unwrap();

    // Subscribe at the current tail (just past create's reset frame).
    let mut from = primary.replication_lsn().unwrap();
    let mut pending = HashMap::new();

    // A mix of alloc / update / free / abort across several txns.
    let t = primary.begin().unwrap();
    let a = primary.allocate(t, SegmentId(0), ClusterHint::NONE, b"alpha").unwrap();
    let b = primary.allocate(t, SegmentId(1), ClusterHint::NONE, b"beta").unwrap();
    primary.commit(t).unwrap();
    from = ship(&primary, &follower, from, &mut pending);

    let t = primary.begin().unwrap();
    primary.update(t, a, b"alpha-2").unwrap();
    primary.free(t, b).unwrap();
    let c = primary.allocate(t, SegmentId(0), ClusterHint::NONE, b"gamma").unwrap();
    primary.commit(t).unwrap();

    let t = primary.begin().unwrap();
    primary.update(t, a, b"never-lands").unwrap();
    primary.abort(t).unwrap();
    from = ship(&primary, &follower, from, &mut pending);
    assert!(pending.is_empty(), "every shipped txn resolved");

    // The follower's committed state mirrors the primary's.
    assert_eq!(follower.read(a).unwrap(), b"alpha-2");
    assert!(!follower.exists(b));
    assert_eq!(follower.read(c).unwrap(), b"gamma");

    // Snapshot reads on the follower see a stable LSN.
    let snap = follower.begin_snapshot().unwrap();
    assert_eq!(follower.read_at(&snap, a).unwrap(), b"alpha-2");
    follower.release_snapshot(snap);

    // Applied transactions are durable on the follower in their own
    // right: cut power and recover from its WAL + checkpoint.
    let follower_state = state_of(&follower);
    drop(follower);
    let survivor = sim.clone_durable();
    survivor.power_loss();
    let reopened = OStore::open_with(
        Arc::new(survivor) as Arc<dyn Vfs>,
        &PathBuf::from("/sim/fol"),
        opts(),
    )
    .unwrap();
    assert_eq!(state_of(&reopened), follower_state);

    // A promoted follower's allocator never re-issues a shipped oid.
    let t = reopened.begin().unwrap();
    let fresh = reopened.allocate(t, SegmentId(0), ClusterHint::NONE, b"post").unwrap();
    reopened.commit(t).unwrap();
    assert!(fresh.raw() > c.raw(), "fresh oid {fresh} must be above shipped {c}");
    let _ = from;
}

#[test]
fn duplicate_replica_alloc_is_refused_not_clobbered() {
    let sim = SimVfs::new(11);
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
    let follower = OStore::create_with(vfs, &PathBuf::from("/sim/dup"), opts()).unwrap();
    let recs = vec![WalRecord::Alloc {
        txn: 1,
        oid: Oid::from_raw(42),
        seg: SegmentId(0),
        hint: ClusterHint::NONE,
        data: b"first".to_vec(),
    }];
    follower.replica_apply_commit(&recs).unwrap();
    // Re-applying the same alloc (a replayed chunk) must fail typed and
    // leave the original binding intact.
    assert!(follower.replica_apply_commit(&recs).is_err());
    assert_eq!(follower.read(Oid::from_raw(42)).unwrap(), b"first");
}

#[test]
fn promote_epoch_raises_the_sealed_epoch_to_the_floor() {
    let sim = SimVfs::new(13);
    let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
    let store = OStore::create_with(vfs.clone(), &PathBuf::from("/sim/promo"), opts()).unwrap();
    let before = store.store_epoch();
    store.promote_epoch(before + 100).unwrap();
    assert_eq!(store.store_epoch(), before + 100);
    // A floor at or below the current epoch still advances by one.
    store.promote_epoch(0).unwrap();
    assert_eq!(store.store_epoch(), before + 101);
    // The promoted epoch is sealed: it survives a crash + reopen.
    drop(store);
    let survivor = sim.clone_durable();
    survivor.power_loss();
    let reopened = OStore::open_with(
        Arc::new(survivor) as Arc<dyn Vfs>,
        &PathBuf::from("/sim/promo"),
        opts(),
    )
    .unwrap();
    // Reopen folds recovery into a fresh checkpoint (epoch + 1).
    assert!(reopened.store_epoch() > before + 100);
}
