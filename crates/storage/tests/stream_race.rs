//! WAL streaming vs. tail-tear rescue: a `stream_from` reader racing
//! `truncate`'s `repair_head`/`pending_reset` machinery must observe
//! either the old tail or the fully repaired head — never the limbo in
//! between, and never a torn frame.
//!
//! The writer thread appends and group-commits continuously while
//! periodically truncating the log, with seeded transient I/O faults
//! injected so some truncations fail partway (leaving `pending_reset`
//! armed for the next lock holder to repair). The reader thread streams
//! chunks concurrently and re-verifies every shipped frame with the
//! position-bound checksums: any torn or half-repaired state it could
//! observe would surface as a `Recovery` error, which fails the test.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use labflow_storage::wal_testing::{Wal, WalRecord};
use labflow_storage::{decode_shipped, FaultPlan, SimVfs, StorageError, StorageStats, Vfs};

#[test]
fn stream_reader_never_sees_a_torn_or_half_repaired_head() {
    for seed in [3u64, 17, 92] {
        let sim = SimVfs::new(seed);
        let vfs: Arc<dyn Vfs> = Arc::new(sim.clone());
        let path = PathBuf::from("/sim/stream-race.log");
        let stats = Arc::new(StorageStats::default());
        let wal = Arc::new(Wal::create(&vfs, &path, stats, None).unwrap());
        let done = Arc::new(AtomicBool::new(false));

        let reader = {
            let wal = Arc::clone(&wal);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut from = 0u64;
                let mut decoded = 0u64;
                while !done.load(Ordering::Acquire) {
                    match wal.stream_from(from, 1 << 16) {
                        Ok(chunk) => {
                            // The shipped bytes must verify as whole
                            // frames at their absolute offsets; a torn
                            // or half-repaired read cannot.
                            let recs = decode_shipped(chunk.start, &chunk.bytes)
                                .expect("stream served a torn or corrupt chunk");
                            decoded += recs.len() as u64;
                            from = chunk.end;
                        }
                        // The log restarted under us (a truncation won
                        // the race): resume from the new head.
                        Err(StorageError::WalRewound { .. }) => from = 0,
                        // Injected transient faults can exhaust the
                        // retry budget; that is an I/O failure, not a
                        // coherence violation. Try again.
                        Err(StorageError::Io(_)) => {}
                        Err(e) => panic!("stream reader saw unexpected error: {e}"),
                    }
                }
                decoded
            })
        };

        let mut epoch = 1u64;
        for i in 0..200u64 {
            wal.append(&WalRecord::Begin(i)).unwrap();
            wal.append(&WalRecord::Commit(i)).unwrap();
            // Injected faults may fail the force; the records stay
            // buffered and ride along with a later flush.
            let _ = wal.group_commit(true);
            if i % 25 == 24 {
                // Arm a transient fault so some truncations die partway
                // (set_len / reset-frame write / sync), leaving
                // `pending_reset` for the next lock holder — often the
                // concurrent stream reader — to repair.
                let base = sim.op_count() + (i % 3);
                sim.set_plan(FaultPlan { fail_ops: vec![base, base + 1], ..FaultPlan::default() });
                epoch += 1;
                let _ = wal.truncate(epoch);
                sim.set_plan(FaultPlan::default());
            }
        }
        wal.group_commit(true).unwrap();
        done.store(true, Ordering::Release);
        let decoded = reader.join().expect("reader thread panicked");

        // The log left behind must replay cleanly (the repair always
        // completed), and the reader made real progress.
        let replayed = Wal::replay(&vfs, &path).expect("final log must be intact");
        assert!(replayed.frames > 0, "seed {seed}: log ended empty");
        assert!(decoded > 0, "seed {seed}: reader never decoded a frame");
    }
}
