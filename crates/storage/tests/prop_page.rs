//! Property tests for the slotted-page layout: random op sequences
//! against a model, with compaction correctness and space accounting.

use std::collections::HashMap;

use proptest::prelude::*;

use labflow_storage::page_testing as page;

#[derive(Debug, Clone)]
enum Op {
    Insert { size: usize, fill: u8 },
    Update { pick: usize, size: usize, fill: u8 },
    Remove { pick: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0usize..900, any::<u8>()).prop_map(|(size, fill)| Op::Insert { size, fill }),
        2 => (any::<usize>(), 0usize..900, any::<u8>())
            .prop_map(|(pick, size, fill)| Op::Update { pick, size, fill }),
        2 => any::<usize>().prop_map(|pick| Op::Remove { pick }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Whatever sequence of inserts/updates/removes runs, every live
    /// record reads back exactly, and rejected operations change nothing.
    #[test]
    fn page_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut buf = vec![0u8; labflow_storage::PAGE_SIZE];
        page::init(&mut buf);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut live: Vec<u16> = Vec::new();

        for op in &ops {
            match op {
                Op::Insert { size, fill } => {
                    let data = vec![*fill; *size];
                    if let Some(slot) = page::insert(&mut buf, &data) {
                        model.insert(slot.0, data);
                        if !live.contains(&slot.0) {
                            live.push(slot.0);
                        }
                    }
                }
                Op::Update { pick, size, fill } => {
                    if live.is_empty() {
                        continue;
                    }
                    let slot = live[pick % live.len()];
                    let data = vec![*fill; *size];
                    if page::update(&mut buf, page::slot(slot), &data) {
                        model.insert(slot, data);
                    }
                    // On failure the old value must be intact — checked in
                    // the sweep below.
                }
                Op::Remove { pick } => {
                    if live.is_empty() {
                        continue;
                    }
                    let idx = pick % live.len();
                    let slot = live.swap_remove(idx);
                    prop_assert!(page::remove(&mut buf, page::slot(slot)));
                    model.remove(&slot);
                }
            }
            // Full sweep after every op: all live records intact.
            for (&slot, data) in &model {
                let got = page::read(&buf, page::slot(slot));
                prop_assert_eq!(got, Some(&data[..]), "slot {} corrupted", slot);
            }
            // Space accounting: live bytes equals the model's total.
            let want: usize = model.values().map(|v| v.len()).sum();
            prop_assert_eq!(page::live_bytes(&buf), want);
        }

        // Compaction preserves everything and eliminates dead bytes.
        page::compact(&mut buf);
        prop_assert_eq!(page::dead_bytes(&buf), 0);
        for (&slot, data) in &model {
            prop_assert_eq!(page::read(&buf, page::slot(slot)), Some(&data[..]));
        }
    }

    /// A page never accepts more payload than physically fits, and after
    /// filling up, removing everything restores (almost) full capacity.
    #[test]
    fn fill_drain_refill(size in 1usize..400) {
        let mut buf = vec![0u8; labflow_storage::PAGE_SIZE];
        page::init(&mut buf);
        let mut slots = Vec::new();
        while let Some(s) = page::insert(&mut buf, &vec![7u8; size]) {
            slots.push(s);
            prop_assert!(slots.len() < 5000, "page accepted unbounded records");
        }
        let first_fill = slots.len();
        prop_assert!(first_fill * size <= labflow_storage::PAGE_SIZE);
        for s in slots.drain(..) {
            prop_assert!(page::remove(&mut buf, s));
        }
        prop_assert_eq!(page::live_bytes(&buf), 0);
        // Refill: slot directory is already paid for, so capacity is
        // at least as good as the first fill.
        let mut refill = 0usize;
        while page::insert(&mut buf, &vec![8u8; size]).is_some() {
            refill += 1;
        }
        prop_assert!(refill >= first_fill, "refill {refill} < first fill {first_fill}");
    }
}
