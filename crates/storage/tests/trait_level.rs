//! Trait-level behaviour shared by all five backends: the contract
//! LabBase programs against, exercised uniformly.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use labflow_storage::{
    ClusterHint, MemStore, OStore, Options, SegmentId, StorageError, StorageManager, Texas,
    TexasTc,
};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lfs-trait-{}-{}-{}",
        std::process::id(),
        tag,
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn all_backends(tag: &str) -> Vec<Arc<dyn StorageManager>> {
    let base = scratch(tag);
    let opts = Options { buffer_pages: 32, ..Options::default() };
    vec![
        Arc::new(OStore::create(&base.join("o"), opts.clone()).unwrap()),
        Arc::new(TexasTc::create(&base.join("tc"), opts.clone()).unwrap()),
        Arc::new(Texas::create(&base.join("t"), opts).unwrap()),
        Arc::new(MemStore::ostore_mm()),
        Arc::new(MemStore::texas_mm()),
    ]
}

#[test]
fn empty_and_huge_payloads_round_trip_everywhere() {
    for store in all_backends("payloads") {
        let t = store.begin().unwrap();
        let empty = store.allocate(t, SegmentId(0), ClusterHint::NONE, &[]).unwrap();
        let huge_data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let huge = store.allocate(t, SegmentId(0), ClusterHint::NONE, &huge_data).unwrap();
        store.commit(t).unwrap();
        assert_eq!(store.read(empty).unwrap(), Vec::<u8>::new(), "{}", store.name());
        assert_eq!(store.read(huge).unwrap(), huge_data, "{}", store.name());
    }
}

#[test]
fn read_in_holds_a_shared_lock_until_commit() {
    let base = scratch("readin");
    let store = OStore::create(&base, Options {
        lock_timeout: Duration::from_millis(60),
        ..Options::default()
    })
    .unwrap();
    let t = store.begin().unwrap();
    let oid = store.allocate(t, SegmentId(0), ClusterHint::NONE, b"locked").unwrap();
    store.commit(t).unwrap();

    let reader = store.begin().unwrap();
    assert_eq!(store.read_in(reader, oid).unwrap(), b"locked");
    // A writer cannot update while the reader's S-lock is held.
    let writer = store.begin().unwrap();
    let err = store.update(writer, oid, b"nope").unwrap_err();
    assert!(matches!(err, StorageError::LockTimeout(_)));
    store.commit(reader).unwrap();
    // Now it can.
    store.update(writer, oid, b"yes").unwrap();
    store.commit(writer).unwrap();
    assert_eq!(store.read(oid).unwrap(), b"yes");
}

#[test]
fn drop_caches_never_changes_contents() {
    for store in all_backends("dropcache") {
        let t = store.begin().unwrap();
        let oids: Vec<_> = (0..300u32)
            .map(|i| {
                store
                    .allocate(
                        t,
                        SegmentId((i % 4) as u8),
                        ClusterHint::NONE,
                        &i.to_le_bytes(),
                    )
                    .unwrap()
            })
            .collect();
        store.commit(t).unwrap();
        store.drop_caches().unwrap();
        for (i, &oid) in oids.iter().enumerate() {
            assert_eq!(
                store.read(oid).unwrap(),
                (i as u32).to_le_bytes(),
                "{} after drop_caches",
                store.name()
            );
        }
    }
}

#[test]
fn stats_deltas_are_consistent_everywhere() {
    for store in all_backends("stats") {
        let before = store.stats();
        let t = store.begin().unwrap();
        for i in 0..50u32 {
            let oid = store.allocate(t, SegmentId(0), ClusterHint::NONE, &i.to_le_bytes()).unwrap();
            // The allocation is pending until commit: committed-state
            // `read` cannot see it, the transaction's own view can.
            store.read_for(t, oid).unwrap();
        }
        store.commit(t).unwrap();
        let d = store.stats().delta(&before);
        assert_eq!(d.allocs, 50, "{}", store.name());
        assert_eq!(d.reads, 50, "{}", store.name());
        assert_eq!(d.commits, 1, "{}", store.name());
        assert_eq!(d.bytes_allocated, 200, "{}", store.name());
    }
}

#[test]
fn segments_report_matches_placement_policy() {
    for store in all_backends("segrep") {
        let t = store.begin().unwrap();
        for i in 0..40u32 {
            store
                .allocate(t, SegmentId((i % 4) as u8), ClusterHint::NONE, &[1u8; 200])
                .unwrap();
        }
        store.commit(t).unwrap();
        let segs = store.segments();
        match store.name() {
            "OStore" => {
                assert_eq!(segs.len(), 4);
                assert!(segs.iter().all(|s| s.pages >= 1), "every segment got pages");
            }
            "Texas" | "Texas+TC" => {
                // One physical segment regardless of what the client asked.
                assert_eq!(segs.len(), 1);
                assert!(segs[0].pages >= 1);
            }
            _ => assert!(segs.is_empty(), "-mm versions have no segments"),
        }
    }
}

#[test]
fn interleaved_transactions_on_concurrent_backends() {
    for store in all_backends("interleave") {
        if !store.supports_concurrency() {
            continue;
        }
        // Two open transactions mutate disjoint objects, commit in
        // reverse order; both survive.
        let t1 = store.begin().unwrap();
        let a = store.allocate(t1, SegmentId(0), ClusterHint::NONE, b"from-t1").unwrap();
        let t2 = store.begin().unwrap();
        let b = store.allocate(t2, SegmentId(0), ClusterHint::NONE, b"from-t2").unwrap();
        store.commit(t2).unwrap();
        store.commit(t1).unwrap();
        assert_eq!(store.read(a).unwrap(), b"from-t1", "{}", store.name());
        assert_eq!(store.read(b).unwrap(), b"from-t2", "{}", store.name());
    }
}

#[test]
fn update_grow_shrink_cycles_survive_checkpoints() {
    for store in all_backends("growshrink") {
        let t = store.begin().unwrap();
        let oid = store.allocate(t, SegmentId(0), ClusterHint::NONE, &[0u8; 8]).unwrap();
        store.commit(t).unwrap();
        for round in 1..=6u32 {
            let size = if round % 2 == 0 { 16 } else { 3000 * round as usize };
            let data = vec![round as u8; size];
            let t = store.begin().unwrap();
            store.update(t, oid, &data).unwrap();
            store.commit(t).unwrap();
            if round % 2 == 0 {
                store.checkpoint().unwrap();
            }
            assert_eq!(store.read(oid).unwrap(), data, "{} round {round}", store.name());
        }
    }
}

#[test]
fn unknown_object_errors_are_uniform() {
    for store in all_backends("unknown") {
        let ghost = labflow_storage::Oid::from_raw(123_456);
        assert!(matches!(
            store.read(ghost),
            Err(StorageError::UnknownObject(_))
        ));
        assert!(!store.exists(ghost));
        let t = store.begin().unwrap();
        assert!(matches!(
            store.update(t, ghost, b"x"),
            Err(StorageError::UnknownObject(_))
        ));
        let r = store.free(t, ghost);
        assert!(
            matches!(r, Err(StorageError::UnknownObject(_))),
            "{}: free(ghost) returned {r:?}",
            store.name()
        );
        store.commit(t).unwrap();
    }
}
