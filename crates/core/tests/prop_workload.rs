//! Property-based tests on the benchmark workload: for random seeds and
//! knob settings, the simulated lab always yields a database whose
//! invariants hold on every backend.

use proptest::prelude::*;

use labbase::LabBase;
use labflow_core::{BenchConfig, LabSim, ServerVersion};
use labflow_workflow::genome;

fn build(cfg: &BenchConfig, version: ServerVersion, clones: u64, tag: &str) -> (LabSim, LabBase, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "lf-propwl-{}-{}-{}",
        std::process::id(),
        tag,
        cfg.seed
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let store = version.make_store(&dir, cfg.buffer_pages).unwrap();
    let db = LabBase::create(store).unwrap();
    let mut sim = LabSim::new(cfg.clone());
    sim.setup(&db).unwrap();
    sim.run_until_clones(&db, clones).unwrap();
    (sim, db, dir)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// For arbitrary seeds and out-of-order rates, the built database
    /// satisfies every LabBase invariant: sorted histories, cache =
    /// derivation, every state known to the graph, extents consistent.
    #[test]
    fn workload_invariants_hold(
        seed in any::<u64>(),
        ooo in 0.0f64..0.6,
    ) {
        let cfg = BenchConfig { seed, out_of_order_rate: ooo, ..BenchConfig::smoke() };
        let (sim, db, dir) = build(&cfg, ServerVersion::OStore, 6, "inv");
        let graph = sim.graph().clone();

        let mut from_extents = 0u64;
        for class in ["clone", "tclone"] {
            from_extents += db.count_class_scan(class).unwrap();
            prop_assert_eq!(
                db.count_class(class, false).unwrap(),
                db.count_class_scan(class).unwrap(),
                "cached vs scanned count for {}", class
            );
        }
        prop_assert_eq!(from_extents, sim.counters().materials);

        for &m in sim.materials() {
            // Histories sorted newest-first.
            let h = db.history(m).unwrap();
            for w in h.windows(2) {
                prop_assert!(w[0].valid_time >= w[1].valid_time);
            }
            // States are declared in the graph.
            if let Some(state) = db.state_of(m).unwrap() {
                prop_assert!(graph.state(&state).is_some(), "unknown state {}", state);
            }
            // Cache equals derivation on a spot-checked attribute.
            let cached = db.recent(m, "quality").unwrap().map(|r| (r.valid_time, r.value));
            let derived =
                db.recent_uncached(m, "quality").unwrap().map(|r| (r.valid_time, r.value));
            prop_assert_eq!(cached, derived);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// OStore and Texas-mm produce logically identical databases for any
    /// seed (storage independence, the benchmark's core premise).
    #[test]
    fn backends_agree_for_any_seed(seed in any::<u64>()) {
        let cfg = BenchConfig { seed, ..BenchConfig::smoke() };
        let (sim_a, db_a, dir_a) = build(&cfg, ServerVersion::OStore, 5, "a");
        let (sim_b, db_b, dir_b) = build(&cfg, ServerVersion::TexasMm, 5, "b");
        prop_assert_eq!(sim_a.counters().steps, sim_b.counters().steps);
        prop_assert_eq!(sim_a.counters().materials, sim_b.counters().materials);
        prop_assert_eq!(db_a.state_census().unwrap(), db_b.state_census().unwrap());
        for (&ma, &mb) in sim_a.materials().iter().zip(sim_b.materials()) {
            let ia = db_a.material(ma).unwrap();
            let ib = db_b.material(mb).unwrap();
            prop_assert_eq!(ia.name, ib.name);
            prop_assert_eq!(ia.state, ib.state);
            prop_assert_eq!(
                db_a.history_len(ma).unwrap(),
                db_b.history_len(mb).unwrap()
            );
        }
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    /// Draining always terminates with every clone in a terminal state,
    /// for any seed.
    #[test]
    fn drain_always_terminates(seed in any::<u64>()) {
        let cfg = BenchConfig { seed, ..BenchConfig::smoke() };
        let (mut sim, db, dir) = build(&cfg, ServerVersion::OStoreMm, 5, "drain");
        let unfinished = sim.drain(&db, 100_000).unwrap();
        prop_assert_eq!(unfinished, 0);
        prop_assert_eq!(
            db.count_in_state(genome::FINISHED).unwrap() as u64,
            sim.counters().clones_injected
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
