//! Synthetic laboratory data, seeded and deterministic.
//!
//! The paper's payloads come from a genome lab: DNA reads with quality
//! scores, assembled sequences, gel lanes, operators, and BLAST hit
//! lists against GenBank/EMBL. The benchmark never interprets the
//! payloads — only their sizes and reference structure matter — so a
//! seeded generator with realistic field mixes preserves the workload
//! (DESIGN.md, substitution table).

use labbase::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
const OPERATORS: [&str; 8] =
    ["asmith", "bjones", "cchen", "dlopez", "efisher", "fkumar", "gyoung", "hpatel"];
const MACHINES: [&str; 4] = ["ABI-373", "ABI-377", "LI-COR-4000", "Pharmacia-ALF"];
const TRANSPOSONS: [&str; 3] = ["gamma-delta", "Tn5supF", "Tn1000"];

/// Seeded generator for all workload payloads.
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> DataGen {
        DataGen { rng: StdRng::seed_from_u64(seed) }
    }

    /// Uniform sample in `[0, 1)` (outcome selection).
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform index below `n` (n > 0).
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }

    /// A DNA string of the given length.
    pub fn dna(&mut self, len: usize) -> String {
        (0..len).map(|_| BASES[self.rng.gen_range(0..4)]).collect()
    }

    /// A sequencing read: ~300–700 bp, occasionally short (failed runs).
    pub fn read_sequence(&mut self) -> String {
        let len = if self.chance(0.05) {
            self.rng.gen_range(40..120) // failed run, short read
        } else {
            self.rng.gen_range(300..700)
        };
        self.dna(len)
    }

    /// An assembled clone sequence: ~2–6 kbp (occasionally spills into
    /// overflow objects, as real inserts would).
    pub fn assembled_sequence(&mut self) -> String {
        let len = self.rng.gen_range(2_000..6_000);
        self.dna(len)
    }

    /// A Phred-like quality score in `[0, 1]`, skewed high.
    pub fn quality(&mut self) -> f64 {
        let q: f64 = self.rng.gen::<f64>();
        (1.0 - q * q * 0.6).clamp(0.0, 1.0)
    }

    /// An operator name.
    pub fn operator(&mut self) -> &'static str {
        OPERATORS[self.rng.gen_range(0..OPERATORS.len())]
    }

    /// A sequencing machine name.
    pub fn machine(&mut self) -> &'static str {
        MACHINES[self.rng.gen_range(0..MACHINES.len())]
    }

    /// A transposon name.
    pub fn transposon(&mut self) -> &'static str {
        TRANSPOSONS[self.rng.gen_range(0..TRANSPOSONS.len())]
    }

    /// A plate barcode.
    pub fn plate(&mut self) -> String {
        format!("P{:05}", self.rng.gen_range(0..100_000))
    }

    /// A well coordinate like `"C07"`.
    pub fn well(&mut self) -> String {
        let row = (b'A' + self.rng.gen_range(0..8)) as char;
        format!("{row}{:02}", self.rng.gen_range(1..=12))
    }

    /// A BLAST hit list: 5–60 hits of `[accession, score, e_exponent]`
    /// triples (the "set and list generation" payload).
    pub fn blast_hits(&mut self) -> Value {
        let n = self.rng.gen_range(5..=60);
        let mut hits = Vec::with_capacity(n);
        let mut score = self.rng.gen_range(200.0..1200.0f64);
        for _ in 0..n {
            let acc = format!(
                "{}{:06}",
                ["U", "X", "L", "M"][self.rng.gen_range(0..4)],
                self.rng.gen_range(0..1_000_000)
            );
            let e_exp = -self.rng.gen_range(3..120i64);
            hits.push(Value::List(vec![
                Value::Str(acc),
                Value::Real((score * 10.0).round() / 10.0),
                Value::Int(e_exp),
            ]));
            score *= self.rng.gen_range(0.7..0.98);
        }
        Value::List(hits)
    }

    /// The top score of a hit list (first hit).
    pub fn top_score(hits: &Value) -> f64 {
        if let Value::List(items) = hits {
            if let Some(Value::List(first)) = items.first() {
                if let Some(Value::Real(score)) = first.get(1) {
                    return *score;
                }
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = DataGen::new(42);
        let mut b = DataGen::new(42);
        assert_eq!(a.read_sequence(), b.read_sequence());
        assert_eq!(a.int_in(0, 100), b.int_in(0, 100));
        assert_eq!(a.plate(), b.plate());
        let mut c = DataGen::new(43);
        assert_ne!(a.read_sequence(), c.read_sequence());
    }

    #[test]
    fn dna_alphabet_is_valid() {
        let mut g = DataGen::new(7);
        let seq = g.dna(500);
        assert_eq!(seq.len(), 500);
        assert!(seq.bytes().all(|b| matches!(b, b'A' | b'C' | b'G' | b'T')));
        assert!(Value::dna(seq).is_ok());
    }

    #[test]
    fn read_lengths_realistic() {
        let mut g = DataGen::new(1);
        let mut short = 0;
        for _ in 0..200 {
            let s = g.read_sequence();
            assert!((40..700).contains(&s.len()));
            if s.len() < 120 {
                short += 1;
            }
        }
        assert!(short < 40, "short reads should be rare, got {short}/200");
    }

    #[test]
    fn assembled_sequences_are_long() {
        let mut g = DataGen::new(2);
        let s = g.assembled_sequence();
        assert!(s.len() >= 2_000);
    }

    #[test]
    fn quality_bounded_and_skewed_high() {
        let mut g = DataGen::new(3);
        let qs: Vec<f64> = (0..500).map(|_| g.quality()).collect();
        assert!(qs.iter().all(|q| (0.0..=1.0).contains(q)));
        let mean = qs.iter().sum::<f64>() / qs.len() as f64;
        assert!(mean > 0.7, "quality should skew high, mean {mean}");
    }

    #[test]
    fn blast_hits_shape() {
        let mut g = DataGen::new(4);
        let hits = g.blast_hits();
        let Value::List(items) = &hits else { panic!() };
        assert!((5..=60).contains(&items.len()));
        let top = DataGen::top_score(&hits);
        assert!(top > 0.0);
        // Scores are non-increasing.
        let scores: Vec<f64> = items
            .iter()
            .map(|h| {
                let Value::List(t) = h else { panic!() };
                let Value::Real(s) = t[1] else { panic!() };
                s
            })
            .collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn wells_and_plates_format() {
        let mut g = DataGen::new(5);
        let w = g.well();
        assert_eq!(w.len(), 3);
        assert!(g.plate().starts_with('P'));
    }
}
