//! # labflow-core
//!
//! The LabFlow-1 benchmark (Bonner, Shrufi & Rozen, EDBT 1996): workload
//! generation, resource metering, experiment runners, and paper-style
//! table/figure renderers.
//!
//! LabFlow-1 "concisely captures the DBMS requirements of
//! high-throughput workflow management systems": a history-driven stream
//! of workflow-step insertions (the audit trail), interleaved tracking
//! queries, continual schema evolution, and report/counting queries —
//! all run against five storage-manager configurations so that only the
//! storage architecture varies.
//!
//! The crate sits on top of:
//! * [`labflow_storage`] — the ObjectStore-like / Texas-like storage
//!   managers (and their `-mm` variants);
//! * [`labbase`] — the LabBase workflow DBMS (event histories,
//!   most-recent views, schema evolution, material sets);
//! * [`labflow_workflow`] — the Appendix-B genome workflow graph and its
//!   execution engine;
//! * [`lql`] — the deductive query language.
//!
//! ## Quick start
//!
//! ```
//! use labflow_core::{BenchConfig, ServerVersion, runner};
//!
//! let cfg = BenchConfig::smoke();
//! let dir = std::env::temp_dir().join(format!("lf-doc-{}", std::process::id()));
//! let result = runner::run_build(ServerVersion::OStoreMm, &cfg, &[0.5], &dir).unwrap();
//! assert!(result.rows[0].steps > 0);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod datagen;
mod error;
pub mod experiments;
pub mod hist;
pub mod metrics;
pub mod queries;
pub mod report;
pub mod runner;
mod workload;

pub use config::{BenchConfig, ServerVersion};
pub use error::{BenchError, Result};
pub use workload::{LabSim, SimCounters};
