//! Experiment runners: database build with interval measurements
//! (Section 10), the query mix, the schema-evolution exercise, and the
//! clustering ablation.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use labbase::{schema::attrs, AttrType, LabBase, MaterialId, Value};
use labflow_storage::{Options, StorageManager};
use serde::Serialize;

use crate::config::{BenchConfig, ServerVersion};
use crate::error::{BenchError, Result};
use crate::metrics::{ClientRow, Meter, ResourceRow};
use crate::queries;
use crate::workload::LabSim;

/// Fresh per-version store directory under `base`, wiped first.
fn version_dir(base: &Path, version: ServerVersion) -> Result<PathBuf> {
    let dir = base.join(version.name().replace('+', "_"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    std::fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Create a fresh LabBase on `version` under `base`.
pub fn fresh_db(
    version: ServerVersion,
    cfg: &BenchConfig,
    base: &Path,
) -> Result<(LabBase, Arc<dyn StorageManager>)> {
    let dir = version_dir(base, version)?;
    let store = version.make_store(&dir, cfg.buffer_pages)?;
    let db = LabBase::create(store.clone())?;
    Ok((db, store))
}

/// Result of one version's database build.
#[derive(Debug, Clone, Serialize)]
pub struct BuildResult {
    /// Version name.
    pub version: String,
    /// One row per interval.
    pub rows: Vec<ResourceRow>,
}

/// Build the benchmark database on `version`, measuring at each interval
/// (the paper's `0.5X`, `1.0X`, … snapshots). Each interval row covers
/// the work done *during* that interval.
pub fn run_build(
    version: ServerVersion,
    cfg: &BenchConfig,
    intervals: &[f64],
    base: &Path,
) -> Result<BuildResult> {
    let (db, store) = fresh_db(version, cfg, base)?;
    let mut sim = LabSim::new(cfg.clone());
    sim.setup(&db)?;

    let mut rows = Vec::with_capacity(intervals.len());
    let mut prev_steps = 0u64;
    let mut prev_queries = 0u64;
    for &scale in intervals {
        let label = format!("{scale:.1}X");
        let meter = Meter::start(store.stats());
        sim.run_until_clones(&db, cfg.clones_at(scale) as u64)?;
        db.checkpoint()?;
        let c = sim.counters();
        let mut row = meter.finish(
            version.name(),
            &label,
            store.stats(),
            store.db_size_bytes()?,
            c.steps - prev_steps,
            c.queries - prev_queries,
            c.materials,
        )?;
        let (step_lat, query_lat) = sim.take_latencies();
        row.step_p50_us = step_lat.quantile_us(0.50);
        row.step_p99_us = step_lat.quantile_us(0.99);
        row.query_p99_us = query_lat.quantile_us(0.99);
        prev_steps = c.steps;
        prev_queries = c.queries;
        rows.push(row);
    }
    // Post-measurement verification: the benchmark refuses to report
    // numbers from a database that fails its own fsck.
    let integrity = db.check_integrity()?;
    if !integrity.is_healthy() {
        return Err(BenchError::Config(format!(
            "{} produced a corrupt database: {:?}",
            version.name(),
            &integrity.problems[..integrity.problems.len().min(5)]
        )));
    }
    Ok(BuildResult {
        version: version.name().to_string(),
        rows,
    })
}

/// Run the build on every requested version.
pub fn run_build_all(
    versions: &[ServerVersion],
    cfg: &BenchConfig,
    intervals: &[f64],
    base: &Path,
) -> Result<Vec<BuildResult>> {
    versions
        .iter()
        .map(|&v| run_build(v, cfg, intervals, base))
        .collect()
}

/// Timing of one query family on one version.
#[derive(Debug, Clone, Serialize)]
pub struct QueryTiming {
    /// Version name.
    pub version: String,
    /// Query family name.
    pub query: String,
    /// Executions measured.
    pub count: u64,
    /// Total wall time in milliseconds.
    pub total_ms: f64,
    /// Mean microseconds per execution.
    pub mean_us: f64,
    /// Simulated faults incurred.
    pub sim_faults: u64,
    /// Rows / answers produced (sanity signal).
    pub answers: u64,
}

/// Build a 1X database on `version` and time the Section-8 query
/// families against it (cold cache before each family).
pub fn run_query_mix(
    version: ServerVersion,
    cfg: &BenchConfig,
    base: &Path,
) -> Result<Vec<QueryTiming>> {
    let (db, store) = fresh_db(version, cfg, base)?;
    let mut sim = LabSim::new(cfg.clone());
    sim.setup(&db)?;
    sim.run_until_clones(&db, cfg.clones_at(1.0) as u64)?;
    db.checkpoint()?;

    let mut out = Vec::new();
    let families = queries::families();
    for family in &families {
        store.drop_caches()?;
        let before = store.stats();
        let start = Instant::now();
        let (count, answers) = (family.run)(&db, &mut sim)?;
        let elapsed = start.elapsed();
        let after = store.stats();
        let total_ms = elapsed.as_secs_f64() * 1e3;
        out.push(QueryTiming {
            version: version.name().to_string(),
            query: family.name.to_string(),
            count,
            total_ms,
            mean_us: if count > 0 {
                total_ms * 1e3 / count as f64
            } else {
                0.0
            },
            sim_faults: after.delta(&before).faults,
            answers,
        });
    }
    Ok(out)
}

/// Schema-evolution measurements on one version.
#[derive(Debug, Clone, Serialize)]
pub struct EvolutionResult {
    /// Version name.
    pub version: String,
    /// Mean microseconds to redefine a step class.
    pub redefine_mean_us: f64,
    /// Mean microseconds to record a step (for comparison).
    pub record_step_mean_us: f64,
    /// Versions accumulated by the most-evolved step class.
    pub max_versions: u32,
    /// Steps carrying an old (non-current) class version that still
    /// decode under their own schema.
    pub old_version_steps_ok: u64,
    /// Database size before the evolution storm.
    pub size_before: Option<u64>,
    /// Database size after (evolution must not rewrite instances, so
    /// growth is bounded by the catalog).
    pub size_after: Option<u64>,
}

/// The schema-evolution exercise (paper Section 8.1): redefine step
/// classes repeatedly mid-stream, verify old instances keep their
/// versions and no data is migrated, and time the operation.
pub fn run_evolution(
    version: ServerVersion,
    cfg: &BenchConfig,
    base: &Path,
    redefinitions: usize,
) -> Result<EvolutionResult> {
    let cfg = BenchConfig {
        evolution_every: 0,
        ..cfg.clone()
    };
    let (db, store) = fresh_db(version, &cfg, base)?;
    let mut sim = LabSim::new(cfg.clone());
    sim.setup(&db)?;
    sim.run_until_clones(&db, cfg.clones_at(0.5) as u64)?;
    db.checkpoint()?;
    let size_before = store.db_size_bytes()?;

    // Time record_step as the baseline: one more half-interval of build.
    let steps_before = sim.counters().steps;
    let t0 = Instant::now();
    sim.run_until_clones(&db, cfg.clones_at(0.75) as u64)?;
    let record_elapsed = t0.elapsed();
    let steps_done = sim.counters().steps - steps_before;

    // The evolution storm: alternate attribute sets on every step class.
    let step_names: Vec<String> = sim.graph().steps.iter().map(|s| s.name.clone()).collect();
    let t0 = Instant::now();
    for i in 0..redefinitions {
        let name = &step_names[i % step_names.len()];
        let mut attrs = sim
            .graph()
            .step(name)
            .ok_or_else(|| {
                BenchError::Config(format!("step class '{name}' missing from workflow graph"))
            })?
            .attrs
            .clone();
        attrs.push(labbase::schema::AttrDef {
            name: "outcome".into(),
            ty: labbase::AttrType::Str,
        });
        if i % 2 == 0 {
            attrs.push(labbase::schema::AttrDef {
                name: format!("rev_{i}"),
                ty: labbase::AttrType::Str,
            });
        }
        let txn = db.begin()?;
        db.redefine_step_class(txn, name, attrs)?;
        db.commit(txn)?;
    }
    let evolve_elapsed = t0.elapsed();
    db.checkpoint()?;
    let size_after = store.db_size_bytes()?;

    let max_versions = db.with_catalog(|c| {
        c.step_classes()
            .iter()
            .map(|sc| sc.versions.len() as u32)
            .max()
            .unwrap_or(1)
    });

    // Old instances: sample histories and verify every step still
    // decodes under its pinned version.
    let mut old_ok = 0u64;
    for &m in sim.materials().iter().take(200) {
        for entry in db.history(m)? {
            let info = db.step(entry.step)?;
            let schema = db.step_schema(entry.step)?;
            let current = db.with_catalog(|c| {
                c.step_class(&info.class)
                    .map(|sc| sc.current().version)
                    .unwrap_or(0)
            });
            if info.version < current {
                // All recorded attrs must be in the pinned version.
                let all_known = info
                    .attrs
                    .iter()
                    .all(|(n, _)| schema.iter().any(|a| &a.name == n));
                if all_known {
                    old_ok += 1;
                } else {
                    return Err(BenchError::Config(format!(
                        "step {} lost attributes under evolution",
                        entry.step
                    )));
                }
            }
        }
    }

    Ok(EvolutionResult {
        version: version.name().to_string(),
        redefine_mean_us: evolve_elapsed.as_secs_f64() * 1e6 / redefinitions.max(1) as f64,
        record_step_mean_us: record_elapsed.as_secs_f64() * 1e6 / steps_done.max(1) as f64,
        max_versions,
        old_version_steps_ok: old_ok,
        size_before,
        size_after,
    })
}

/// One point of the clustering ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ClusteringPoint {
    /// Version name.
    pub version: String,
    /// Buffer-pool pages used for the measured pass.
    pub pool_pages: usize,
    /// Tracking lookups performed in the measured round.
    pub lookups: u64,
    /// Simulated faults during the measured round (steady state).
    pub sim_faults: u64,
    /// Faults per 1,000 lookups.
    pub faults_per_k: f64,
    /// Wall milliseconds for the measured round.
    pub elapsed_ms: f64,
}

/// The clustering ablation (DESIGN.md `abl-clustering`): build a 1X
/// database per persistent version, reopen it with successively smaller
/// buffer pools, warm the cache with rounds of the hot tracking query
/// (most-recent lookup + state on uniformly random materials), then
/// measure a steady-state round.
///
/// This isolates the paper's headline claim: with locality control
/// (OStore segments, or Texas+TC's client-code type clustering) the hot
/// records stay dense and the working set fits; without it (plain
/// Texas), material records are diluted across the whole address-ordered
/// heap — page-sized step payloads in between — and the same logical
/// working set is many times larger in pages.
pub fn run_clustering(
    cfg: &BenchConfig,
    pool_sizes: &[usize],
    lookups_per_round: usize,
    base: &Path,
) -> Result<Vec<ClusteringPoint>> {
    const WARM_ROUNDS: usize = 3;
    let mut out = Vec::new();
    for version in ServerVersion::PERSISTENT {
        let dir = version_dir(base, version)?;
        let store = version.make_store(&dir, cfg.buffer_pages)?;
        let db = LabBase::create(store.clone())?;
        let mut sim = LabSim::new(cfg.clone());
        sim.setup(&db)?;
        sim.run_until_clones(&db, cfg.clones_at(1.0) as u64)?;
        db.checkpoint()?;
        drop(db);
        drop(store);

        for &pool in pool_sizes {
            let store = version.open_store(&dir, pool)?;
            let db = LabBase::open(store.clone())?;
            // Same uniform lookup stream for every version and pool size.
            let mut gen = crate::datagen::DataGen::new(cfg.seed ^ 0xC1u64);
            let all: Vec<labbase::MaterialId> = {
                let mut v = db.class_extent("clone", false)?;
                v.extend(db.class_extent("tclone", false)?);
                v
            };
            store.drop_caches()?;
            let mut measured: Option<(u64, f64)> = None;
            for round in 0..=WARM_ROUNDS {
                let before = store.stats();
                let t0 = Instant::now();
                for _ in 0..lookups_per_round {
                    let m = all[gen.index(all.len())];
                    let _ = db.recent(m, "quality")?;
                    let _ = db.state_of(m)?;
                }
                let elapsed = t0.elapsed();
                if round == WARM_ROUNDS {
                    let faults = store.stats().delta(&before).faults;
                    measured = Some((faults, elapsed.as_secs_f64() * 1e3));
                }
            }
            let (faults, elapsed_ms) = measured
                .ok_or_else(|| BenchError::Config("clustering measured round never ran".into()))?;
            out.push(ClusteringPoint {
                version: version.name().to_string(),
                pool_pages: pool,
                lookups: lookups_per_round as u64,
                sim_faults: faults,
                faults_per_k: faults as f64 * 1000.0 / lookups_per_round.max(1) as f64,
                elapsed_ms,
            });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfc-run-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn smoke_build_two_intervals_mm() {
        let cfg = BenchConfig::smoke();
        let dir = base("build-mm");
        let result = run_build(ServerVersion::OStoreMm, &cfg, &[0.5, 1.0], &dir).unwrap();
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].interval, "0.5X");
        assert!(result.rows[0].steps > 0);
        assert!(
            result.rows[1].steps > 0,
            "second interval does its own work"
        );
        assert_eq!(result.rows[0].size_bytes, None, "-mm prints no size");
        assert_eq!(result.rows[0].sim_majflt, 0, "-mm never faults");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_build_persistent_has_size_and_faults_counted() {
        let cfg = BenchConfig::smoke();
        let dir = base("build-tex");
        let result = run_build(ServerVersion::Texas, &cfg, &[0.5], &dir).unwrap();
        let row = &result.rows[0];
        assert!(row.size_bytes.unwrap() > 0);
        assert!(row.page_writes > 0, "checkpoint flushed pages");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_query_mix() {
        let cfg = BenchConfig::smoke();
        let dir = base("qmix");
        let timings = run_query_mix(ServerVersion::OStore, &cfg, &dir).unwrap();
        assert!(timings.len() >= 6, "expected several query families");
        for t in &timings {
            assert!(t.count > 0, "family {} ran", t.query);
        }
        // At least the report families must produce answers.
        assert!(timings.iter().any(|t| t.answers > 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_evolution() {
        let cfg = BenchConfig::smoke();
        let dir = base("evo");
        let r = run_evolution(ServerVersion::OStoreMm, &cfg, &dir, 10).unwrap();
        assert!(r.max_versions > 1);
        assert!(r.redefine_mean_us > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_multiclient_two_counts() {
        let cfg = BenchConfig::smoke();
        let dir = base("mc");
        let points = run_multiclient(&cfg, &[1, 2], &dir).unwrap();
        assert_eq!(points.len(), ServerVersion::ALL.len() * 2);
        for p in &points {
            if p.clients == 1 {
                assert!(p.supported, "{}: one client always runs", p.version);
                assert!(p.steps > 0 && p.steps_per_sec > 0.0);
                assert_eq!(p.per_client.len(), 1);
                assert_eq!(p.per_client[0].steps, p.steps);
            }
        }
        // Single-user backends refuse multi-client points…
        let texas2 = points
            .iter()
            .find(|p| p.version == "Texas" && p.clients == 2)
            .unwrap();
        assert!(!texas2.supported);
        // …while the concurrent ones run them, touching every material
        // once per round.
        for name in ["OStore", "OStore-mm"] {
            let p = points
                .iter()
                .find(|p| p.version == name && p.clients == 2)
                .unwrap();
            assert!(p.supported, "{name} supports two clients");
            assert_eq!(p.per_client.len(), 2);
            let total = cfg.clones_at(1.0).max(2 * MC_STEPS_PER_TXN);
            assert_eq!(p.steps, (total * MC_ROUNDS) as u64);
        }
        // Group commit: the persistent backend forces the WAL fewer
        // times than it commits.
        let ostore = points
            .iter()
            .find(|p| p.version == "OStore" && p.clients == 2)
            .unwrap();
        assert!(ostore.wal_syncs > 0, "WAL forced at least once");
        assert!(
            ostore.wal_syncs <= ostore.commits,
            "group commit batches: {} syncs vs {} commits",
            ostore.wal_syncs,
            ostore.commits
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_snapshot_scan() {
        let cfg = BenchConfig::smoke();
        let dir = base("snap");
        let points = run_snapshot(&cfg, 2, &dir).unwrap();
        assert_eq!(points.len(), ServerVersion::ALL.len());
        let mut concurrent = 0;
        for p in &points {
            assert_eq!(p.writers, 2);
            if !p.supported {
                continue;
            }
            concurrent += 1;
            assert!(p.steps_per_sec_alone > 0.0, "{}: baseline ran", p.version);
            assert!(
                p.steps_per_sec_scanned > 0.0,
                "{}: scanned phase ran",
                p.version
            );
            assert!(
                p.scans >= 1,
                "{}: the scanner completed at least one pass",
                p.version
            );
            assert!(p.rows_read > 0, "{}: scans visited history rows", p.version);
            assert_eq!(
                p.reader_heap_wait_nanos, 0,
                "{}: snapshot reads must not block on heap metadata locks",
                p.version
            );
        }
        assert!(concurrent >= 2, "both OStore variants run the ablation");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn smoke_clustering_two_pools() {
        let cfg = BenchConfig::smoke();
        let dir = base("clust");
        let points = run_clustering(&cfg, &[16, 256], 50, &dir).unwrap();
        assert_eq!(points.len(), 3 * 2);
        for p in &points {
            assert_eq!(p.lookups, 50);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// One point of the concurrency ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ConcurrencyPoint {
    /// Version name.
    pub version: String,
    /// Concurrent reader threads during the build.
    pub readers: usize,
    /// Whether the backend supports concurrent transactions at all.
    pub supported: bool,
    /// Build throughput (workflow steps/sec) with the readers running.
    pub build_steps_per_sec: f64,
    /// Aggregate reader throughput (tracking queries/sec), if supported.
    pub reader_ops_per_sec: f64,
}

/// The concurrency ablation (DESIGN.md `abl-concurrency`): the paper
/// notes that "ObjectStore offers concurrent access with lock-based
/// concurrency control …; Texas does not support concurrent access."
/// Builds the second half of a 1X database while `readers` threads run
/// tracking queries; single-user backends report `supported = false`.
pub fn run_concurrency(
    cfg: &BenchConfig,
    reader_counts: &[usize],
    base: &Path,
) -> Result<Vec<ConcurrencyPoint>> {
    let mut out = Vec::new();
    for version in ServerVersion::ALL {
        for &readers in reader_counts {
            let (db, store) = fresh_db(version, cfg, base)?;
            let mut sim = LabSim::new(cfg.clone());
            sim.setup(&db)?;
            sim.run_until_clones(&db, cfg.clones_at(0.5) as u64)?;
            if readers > 0 && !store.supports_concurrency() {
                out.push(ConcurrencyPoint {
                    version: version.name().to_string(),
                    readers,
                    supported: false,
                    build_steps_per_sec: 0.0,
                    reader_ops_per_sec: 0.0,
                });
                continue;
            }
            let mats: Vec<labbase::MaterialId> = sim.materials().to_vec();
            let db = Arc::new(db);
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let mut handles = Vec::new();
            for r in 0..readers {
                let db = db.clone();
                let mats = mats.clone();
                let stop = stop.clone();
                handles.push(std::thread::spawn(move || -> Result<u64> {
                    let mut ops = 0u64;
                    let mut i = r; // decorrelate thread access patterns
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let m = mats[i % mats.len()];
                        i = i.wrapping_add(7);
                        let _ = db.recent(m, "quality")?;
                        let _ = db.state_of(m)?;
                        ops += 2;
                    }
                    Ok(ops)
                }));
            }
            let steps_before = sim.counters().steps;
            let t0 = Instant::now();
            sim.run_until_clones(&db, cfg.clones_at(1.0) as u64)?;
            let elapsed = t0.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let mut reader_ops = 0u64;
            for h in handles {
                reader_ops += h
                    .join()
                    .map_err(|_| BenchError::Config("reader thread panicked".into()))??;
            }
            let steps = sim.counters().steps - steps_before;
            out.push(ConcurrencyPoint {
                version: version.name().to_string(),
                readers,
                supported: true,
                build_steps_per_sec: if elapsed > 0.0 {
                    steps as f64 / elapsed
                } else {
                    0.0
                },
                reader_ops_per_sec: if elapsed > 0.0 {
                    reader_ops as f64 / elapsed
                } else {
                    0.0
                },
            });
        }
    }
    Ok(out)
}

/// One row of the recovery ablation.
#[derive(Debug, Clone, Serialize)]
pub struct RecoveryPoint {
    /// Version name.
    pub version: String,
    /// Materials existing when the crash hit.
    pub materials_at_crash: u64,
    /// Materials visible after reopening.
    pub materials_recovered: u64,
    /// Materials lost to the crash (Texas: everything after the last
    /// checkpoint; OStore: only uncommitted work).
    pub materials_lost: u64,
    /// WAL bytes written since the last checkpoint — the replay debt
    /// (0 for log-less backends).
    pub wal_bytes_at_crash: u64,
    /// Wall milliseconds to reopen (includes WAL replay for OStore).
    pub reopen_ms: f64,
}

/// The recovery ablation (DESIGN.md `abl-recovery`): checkpoint at 0.5X,
/// keep working to 0.75X, crash (drop without checkpoint), reopen, and
/// compare what each durability design brings back.
pub fn run_recovery(cfg: &BenchConfig, base: &Path) -> Result<Vec<RecoveryPoint>> {
    let mut out = Vec::new();
    for version in ServerVersion::PERSISTENT {
        let dir = version_dir(base, version)?;
        let materials_at_crash;
        let wal_bytes_at_crash;
        {
            let store = version.make_store(&dir, cfg.buffer_pages)?;
            let db = LabBase::create(store.clone())?;
            let mut sim = LabSim::new(BenchConfig {
                checkpoint_every: 0,
                ..cfg.clone()
            });
            sim.setup(&db)?;
            sim.run_until_clones(&db, cfg.clones_at(0.5) as u64)?;
            db.checkpoint()?;
            let wal_at_ckpt = store.stats().wal_bytes;
            sim.run_until_clones(&db, cfg.clones_at(0.75) as u64)?;
            materials_at_crash = sim.counters().materials;
            wal_bytes_at_crash = store.stats().wal_bytes - wal_at_ckpt;
            // Crash: drop without checkpoint.
        }
        let t0 = Instant::now();
        let store = version.open_store(&dir, cfg.buffer_pages)?;
        let db = LabBase::open(store)?;
        let reopen_ms = t0.elapsed().as_secs_f64() * 1e3;
        let recovered = db.count_class("clone", false)? + db.count_class("tclone", false)?;
        out.push(RecoveryPoint {
            version: version.name().to_string(),
            materials_at_crash,
            materials_recovered: recovered,
            materials_lost: materials_at_crash.saturating_sub(recovered),
            wal_bytes_at_crash,
            reopen_ms,
        });
    }
    Ok(out)
}

/// One `abl-scrub` measurement: the cost and verdict of an offline
/// integrity audit over a crashed-and-recovered store image.
#[derive(Debug, Clone, Serialize)]
pub struct ScrubPoint {
    /// Version name.
    pub version: String,
    /// Total pages in the data file.
    pub pages: u32,
    /// Pages with a verified written image.
    pub pages_verified: u32,
    /// Pages quarantined by recovery (skipped by the scrub).
    pub quarantined: u32,
    /// Intact WAL frames verified against their offsets.
    pub wal_frames: u64,
    /// On-disk bytes audited (data + meta + log).
    pub image_bytes: u64,
    /// Wall milliseconds for the full audit.
    pub scrub_ms: f64,
    /// Whether the image audited clean (it must, after a recovery).
    pub clean: bool,
}

/// The scrub ablation (DESIGN.md `abl-scrub`): build to 0.5X, checkpoint,
/// keep working to 0.75X, crash, recover — then run the offline scrubber
/// over the recovered image and time the full end-to-end verification
/// (meta checksum, every page header + LSN floor, every WAL frame).
pub fn run_scrub(cfg: &BenchConfig, base: &Path) -> Result<Vec<ScrubPoint>> {
    let mut out = Vec::new();
    for version in ServerVersion::PERSISTENT {
        let dir = version_dir(base, version)?;
        {
            let store = version.make_store(&dir, cfg.buffer_pages)?;
            let db = LabBase::create(store)?;
            let mut sim = LabSim::new(BenchConfig {
                checkpoint_every: 0,
                ..cfg.clone()
            });
            sim.setup(&db)?;
            sim.run_until_clones(&db, cfg.clones_at(0.5) as u64)?;
            db.checkpoint()?;
            sim.run_until_clones(&db, cfg.clones_at(0.75) as u64)?;
            // Crash: drop without checkpoint.
        }
        // Recover the image, then audit what recovery left behind.
        drop(version.open_store(&dir, cfg.buffer_pages)?);
        let image_bytes: u64 = ["data.pg", "store.meta", "wal.log"]
            .iter()
            .filter_map(|f| std::fs::metadata(dir.join(f)).ok())
            .map(|m| m.len())
            .sum();
        let t0 = Instant::now();
        let report = labflow_storage::scrub_store(&labflow_storage::RealVfs::arc(), &dir)?;
        let scrub_ms = t0.elapsed().as_secs_f64() * 1e3;
        out.push(ScrubPoint {
            version: version.name().to_string(),
            pages: report.pages,
            pages_verified: report.ok,
            quarantined: report.quarantined,
            wal_frames: report.wal_frames,
            image_bytes,
            scrub_ms,
            clean: report.clean(),
        });
    }
    Ok(out)
}

/// Materials each multi-client transaction touches.
const MC_STEPS_PER_TXN: usize = 4;
/// Rounds over the material population: each material receives this many
/// steps over the whole run.
const MC_ROUNDS: usize = 4;
/// Retries allowed per transaction before the run is declared stuck.
const MC_MAX_RETRIES: u64 = 100;
/// WAL idle-flush delay for persistent backends in the multi-client
/// run. No longer a commit-path sleep: the dedicated log-writer thread
/// batches commits by pipelining (everything arriving during an
/// in-flight force joins the next batch), and this only bounds how
/// long non-commit records may sit buffered.
const MC_COMMIT_WINDOW: Duration = Duration::from_micros(500);

/// One point of the multi-client ablation.
#[derive(Debug, Clone, Serialize)]
pub struct MultiClientPoint {
    /// Version name.
    pub version: String,
    /// Concurrent writer clients.
    pub clients: usize,
    /// Whether the backend supports concurrent transactions at all.
    pub supported: bool,
    /// Wall-clock seconds for the measured run.
    pub elapsed_sec: f64,
    /// Workflow steps recorded across all clients.
    pub steps: u64,
    /// Aggregate steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Transactions committed (storage-level, includes the prefill).
    pub commits: u64,
    /// Aborted-and-retried transactions (lock conflicts).
    pub retries: u64,
    /// WAL forces issued — group commit shows up as `wal_syncs` well
    /// below `commits` on persistent backends (0 for `-mm`).
    pub wal_syncs: u64,
    /// Contended heap-metadata lock acquisitions across all clients
    /// (the acquirer found the lock held and blocked).
    pub heap_waits: u64,
    /// Total microseconds all clients spent blocked on heap metadata
    /// locks.
    pub heap_wait_us: u64,
    /// Per-client breakdown.
    pub per_client: Vec<ClientRow>,
}

/// One client's work loop: walk its private slice of the material
/// population in `MC_STEPS_PER_TXN`-sized transactions, recording a step
/// and a state transition per material, retrying the whole transaction on
/// conflict via the session's selective abort.
fn multiclient_worker(db: &LabBase, mine: &[MaterialId], client: u64) -> Result<ClientRow> {
    const STATES: [&str; 4] = ["queued", "running", "done", "archived"];
    let mut row = ClientRow {
        client,
        steps: 0,
        commits: 0,
        retries: 0,
        lock_wait_ms: 0.0,
        commit_wait_ms: 0.0,
        commit_force_ms: 0.0,
        heap_wait_ms: 0.0,
        lock_condvar_waits: 0,
        name_index_wait_ms: 0.0,
    };
    // Wait attribution: the worker thread maps 1:1 to the client, so the
    // thread-local counters' delta over the loop is this client's share.
    let waits0 = labflow_storage::wait_snapshot();
    // Valid times are partitioned per client so the run is deterministic
    // in everything except commit interleaving.
    let mut vt: i64 = client as i64 * 1_000_000;
    for round in 0..MC_ROUNDS {
        let state = STATES[round % STATES.len()];
        for chunk in mine.chunks(MC_STEPS_PER_TXN) {
            let mut attempts = 0u64;
            loop {
                vt += 1;
                let mut s = db.session()?;
                let mut result: Result<()> = Ok(());
                for &m in chunk {
                    result = (|| {
                        s.record_step(
                            "mc_track",
                            vt,
                            &[m],
                            vec![("reading".into(), Value::Real(round as f64))],
                        )?;
                        s.set_state(m, state, vt)?;
                        Ok(())
                    })();
                    if result.is_err() {
                        break;
                    }
                }
                let committed = match result {
                    Ok(()) => s.commit().is_ok(),
                    Err(_) => {
                        s.abort()?;
                        false
                    }
                };
                if committed {
                    row.steps += chunk.len() as u64;
                    row.commits += 1;
                    break;
                }
                row.retries += 1;
                attempts += 1;
                if attempts > MC_MAX_RETRIES {
                    return Err(BenchError::Config(format!(
                        "client {client} exceeded {MC_MAX_RETRIES} retries on one transaction"
                    )));
                }
            }
        }
    }
    let waits = labflow_storage::wait_snapshot().delta(&waits0);
    row.lock_wait_ms = waits.lock_wait_nanos as f64 / 1e6;
    row.commit_wait_ms = waits.commit_wait_nanos as f64 / 1e6;
    row.commit_force_ms = waits.commit_force_nanos as f64 / 1e6;
    row.heap_wait_ms = waits.heap_wait_nanos as f64 / 1e6;
    row.lock_condvar_waits = waits.lock_condvar_waits;
    row.name_index_wait_ms = waits.name_index_wait_nanos as f64 / 1e6;
    Ok(row)
}

/// The multi-client ablation (DESIGN.md `abl-multiclient`): N writer
/// clients record workflow steps against disjoint slices of a prefilled
/// material population, so throughput is limited by the storage layer's
/// concurrency machinery (lock manager, WAL group commit, sharded
/// caches) rather than by logical conflicts. Single-user backends report
/// `supported = false` for every point above one client.
pub fn run_multiclient(
    cfg: &BenchConfig,
    client_counts: &[usize],
    base: &Path,
) -> Result<Vec<MultiClientPoint>> {
    let max_clients = client_counts.iter().copied().max().unwrap_or(1);
    let mut out = Vec::new();
    for version in ServerVersion::ALL {
        for &clients in client_counts {
            if clients == 0 {
                return Err(BenchError::Config("client count must be >= 1".into()));
            }
            let dir = version_dir(base, version)?;
            let opts = Options {
                buffer_pages: cfg.buffer_pages,
                group_commit_window: Some(MC_COMMIT_WINDOW),
                ..Options::default()
            };
            let store = version.make_store_with(&dir, opts)?;
            if clients > 1 && !store.supports_concurrency() {
                out.push(MultiClientPoint {
                    version: version.name().to_string(),
                    clients,
                    supported: false,
                    elapsed_sec: 0.0,
                    steps: 0,
                    steps_per_sec: 0.0,
                    commits: 0,
                    retries: 0,
                    wal_syncs: 0,
                    heap_waits: 0,
                    heap_wait_us: 0,
                    per_client: Vec::new(),
                });
                continue;
            }
            let db = LabBase::create(store.clone())?;

            // Prefill the material population in one bulk transaction.
            // Sized off the max client count so every point works the
            // same population regardless of parallelism.
            let total = cfg.clones_at(1.0).max(max_clients * MC_STEPS_PER_TXN);
            let txn = db.begin()?;
            db.define_material_class(txn, "mc_clone", None)?;
            db.define_step_class(txn, "mc_track", attrs(&[("reading", AttrType::Real)]))?;
            let mut mats = Vec::with_capacity(total);
            for i in 0..total {
                mats.push(db.create_material(txn, "mc_clone", &format!("mc-{i:06}"), 0)?);
            }
            db.commit(txn)?;
            db.checkpoint()?;
            // Warm the shared indexes so every session maintains them
            // incrementally instead of racing to rebuild.
            let _ = db.count_in_state("queued")?;
            let _ = db.find_material("mc-000000")?;

            let stats0 = store.stats();
            let t0 = Instant::now();
            let per_client = std::thread::scope(|scope| -> Result<Vec<ClientRow>> {
                let mut handles = Vec::new();
                for c in 0..clients {
                    // Round-robin partition: disjoint material slices, so
                    // clients contend on infrastructure, not data.
                    let mine: Vec<MaterialId> =
                        mats.iter().skip(c).step_by(clients).copied().collect();
                    let db = &db;
                    handles.push(scope.spawn(move || multiclient_worker(db, &mine, c as u64)));
                }
                let mut rows = Vec::with_capacity(clients);
                for h in handles {
                    rows.push(
                        h.join()
                            .map_err(|_| BenchError::Config("client thread panicked".into()))??,
                    );
                }
                Ok(rows)
            })?;
            let elapsed = t0.elapsed().as_secs_f64();
            let d = store.stats().delta(&stats0);
            let steps: u64 = per_client.iter().map(|r| r.steps).sum();
            let retries: u64 = per_client.iter().map(|r| r.retries).sum();
            out.push(MultiClientPoint {
                version: version.name().to_string(),
                clients,
                supported: true,
                elapsed_sec: elapsed,
                steps,
                steps_per_sec: if elapsed > 0.0 {
                    steps as f64 / elapsed
                } else {
                    0.0
                },
                commits: d.commits,
                retries,
                wal_syncs: d.wal_syncs,
                heap_waits: d.heap_shard_waits,
                heap_wait_us: d.heap_wait_nanos / 1_000,
                per_client,
            });
        }
    }
    Ok(out)
}

/// One point of the snapshot-scan ablation.
#[derive(Debug, Clone, Serialize)]
pub struct SnapshotPoint {
    /// Version name.
    pub version: String,
    /// Concurrent writer clients.
    pub writers: usize,
    /// Whether the backend supports concurrent transactions at all.
    pub supported: bool,
    /// Writer throughput with no scanner running (steps/sec).
    pub steps_per_sec_alone: f64,
    /// Writer throughput with the analytical scanner running.
    pub steps_per_sec_scanned: f64,
    /// `steps_per_sec_scanned / steps_per_sec_alone` — how much of the
    /// writers' throughput the concurrent scan costs.
    pub throughput_ratio: f64,
    /// Full-history scans the reader completed while writers ran.
    pub scans: u64,
    /// History entries visited across all scans.
    pub rows_read: u64,
    /// Mean commits that landed while a scan was running (snapshot
    /// staleness at scan end, in commit-LSN units).
    pub mean_staleness: f64,
    /// Worst-case staleness across scans.
    pub max_staleness: u64,
    /// Nanoseconds the scanner thread spent blocked on contended heap
    /// metadata locks. The MVCC read path never takes them, so this
    /// should be exactly zero.
    pub reader_heap_wait_nanos: u64,
}

/// What the snapshot scanner observed while the writers ran.
#[derive(Debug, Default)]
struct ScanStats {
    scans: u64,
    rows_read: u64,
    staleness_sum: u64,
    staleness_max: u64,
    heap_wait_nanos: u64,
}

/// Run `writers` multi-client workers over disjoint slices of `mats`,
/// returning total steps recorded and elapsed wall-clock seconds.
fn drive_writers(db: &LabBase, mats: &[MaterialId], writers: usize) -> Result<(u64, f64)> {
    let t0 = Instant::now();
    let rows = std::thread::scope(|scope| -> Result<Vec<ClientRow>> {
        let mut handles = Vec::new();
        for c in 0..writers {
            let mine: Vec<MaterialId> = mats.iter().skip(c).step_by(writers).copied().collect();
            handles.push(scope.spawn(move || multiclient_worker(db, &mine, c as u64)));
        }
        let mut rows = Vec::with_capacity(writers);
        for h in handles {
            rows.push(
                h.join()
                    .map_err(|_| BenchError::Config("writer thread panicked".into()))??,
            );
        }
        Ok(rows)
    })?;
    Ok((
        rows.iter().map(|r| r.steps).sum(),
        t0.elapsed().as_secs_f64(),
    ))
}

/// Pause between analytical scans: the reader is paced like a periodic
/// monitoring job rather than a busy loop, so the measured writer cost
/// is MVCC interference (locks, version chains, cache pressure), not
/// CPU starvation from a spinning thread on a small machine.
const SCAN_PAUSE: Duration = Duration::from_millis(25);

/// The analytical reader: repeatedly pin a snapshot and walk the full
/// history of every material through it, until `stop` is set. Always
/// completes at least one scan. Staleness is measured at scan end by
/// comparing a fresh snapshot's LSN against the pinned one — i.e. how
/// many commits the scan's view fell behind while it ran.
fn snapshot_scanner(
    db: &LabBase,
    store: &Arc<dyn StorageManager>,
    stop: &AtomicBool,
    expected_materials: usize,
) -> Result<ScanStats> {
    let mut st = ScanStats::default();
    let waits0 = labflow_storage::wait_snapshot();
    loop {
        let view = db.view()?;
        let mats = view.class_extent("mc_clone", false)?;
        // Writers only update; the population is fixed at prefill, so
        // every consistent cut must see all of it.
        if mats.len() != expected_materials {
            return Err(BenchError::Config(format!(
                "inconsistent snapshot scan: {} materials visible, expected {}",
                mats.len(),
                expected_materials
            )));
        }
        let mut rows = 0u64;
        for m in mats {
            rows += view.history(m)?.len() as u64;
        }
        st.rows_read += rows;
        st.scans += 1;
        if let Some(lsn) = view.lsn() {
            if lsn != u64::MAX {
                let fresh = store.begin_snapshot()?;
                if fresh.lsn != u64::MAX {
                    let stale = fresh.lsn.saturating_sub(lsn);
                    st.staleness_sum += stale;
                    st.staleness_max = st.staleness_max.max(stale);
                }
                store.release_snapshot(fresh);
            }
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(SCAN_PAUSE);
        if stop.load(Ordering::Relaxed) {
            break;
        }
    }
    st.heap_wait_nanos = labflow_storage::wait_snapshot()
        .delta(&waits0)
        .heap_wait_nanos;
    Ok(st)
}

/// The snapshot-scan ablation (DESIGN.md `abl-snapshot`): `writers`
/// clients drive the multi-client update loop while one analytical
/// reader repeatedly scans the full history of the whole population
/// through pinned snapshots. With version-chain reads the scan holds no
/// locks and touches no heap metadata locks, so writer throughput
/// should stay within a few percent of the scanner-free baseline.
pub fn run_snapshot(cfg: &BenchConfig, writers: usize, base: &Path) -> Result<Vec<SnapshotPoint>> {
    if writers == 0 {
        return Err(BenchError::Config("writer count must be >= 1".into()));
    }
    let mut out = Vec::new();
    for version in ServerVersion::ALL {
        let dir = version_dir(base, version)?;
        let opts = Options {
            buffer_pages: cfg.buffer_pages,
            group_commit_window: Some(MC_COMMIT_WINDOW),
            ..Options::default()
        };
        let store = version.make_store_with(&dir, opts)?;
        if !store.supports_concurrency() {
            out.push(SnapshotPoint {
                version: version.name().to_string(),
                writers,
                supported: false,
                steps_per_sec_alone: 0.0,
                steps_per_sec_scanned: 0.0,
                throughput_ratio: 0.0,
                scans: 0,
                rows_read: 0,
                mean_staleness: 0.0,
                max_staleness: 0,
                reader_heap_wait_nanos: 0,
            });
            continue;
        }
        let db = LabBase::create(store.clone())?;

        // Prefill the material population (same shape as the
        // multi-client ablation) and warm the shared indexes.
        let total = cfg.clones_at(1.0).max(writers * MC_STEPS_PER_TXN);
        let txn = db.begin()?;
        db.define_material_class(txn, "mc_clone", None)?;
        db.define_step_class(txn, "mc_track", attrs(&[("reading", AttrType::Real)]))?;
        let mut mats = Vec::with_capacity(total);
        for i in 0..total {
            mats.push(db.create_material(txn, "mc_clone", &format!("mc-{i:06}"), 0)?);
        }
        db.commit(txn)?;
        db.checkpoint()?;
        let _ = db.count_in_state("queued")?;
        let _ = db.find_material("mc-000000")?;

        // Phase 1 — baseline: writers with no reader.
        let (steps_alone, elapsed_alone) = drive_writers(&db, &mats, writers)?;

        // Phase 2 — the same writer work with the scanner running.
        let stop = AtomicBool::new(false);
        let t0 = Instant::now();
        let (writer_rows, scan) =
            std::thread::scope(|scope| -> Result<(Vec<ClientRow>, ScanStats)> {
                let scanner = {
                    let (db, store, stop) = (&db, &store, &stop);
                    scope.spawn(move || snapshot_scanner(db, store, stop, total))
                };
                let mut handles = Vec::new();
                for c in 0..writers {
                    let mine: Vec<MaterialId> =
                        mats.iter().skip(c).step_by(writers).copied().collect();
                    let db = &db;
                    handles.push(scope.spawn(move || multiclient_worker(db, &mine, c as u64)));
                }
                // Collect writer results before `?`-ing so the scanner
                // always sees the stop flag and the scope can close.
                let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
                stop.store(true, Ordering::Relaxed);
                let scan = scanner
                    .join()
                    .map_err(|_| BenchError::Config("scanner thread panicked".into()))??;
                let mut rows = Vec::with_capacity(writers);
                for r in results {
                    rows.push(r.map_err(|_| BenchError::Config("writer thread panicked".into()))??);
                }
                Ok((rows, scan))
            })?;
        let elapsed_scanned = t0.elapsed().as_secs_f64();
        let steps_scanned: u64 = writer_rows.iter().map(|r| r.steps).sum();

        let alone = if elapsed_alone > 0.0 {
            steps_alone as f64 / elapsed_alone
        } else {
            0.0
        };
        let scanned = if elapsed_scanned > 0.0 {
            steps_scanned as f64 / elapsed_scanned
        } else {
            0.0
        };
        out.push(SnapshotPoint {
            version: version.name().to_string(),
            writers,
            supported: true,
            steps_per_sec_alone: alone,
            steps_per_sec_scanned: scanned,
            throughput_ratio: if alone > 0.0 { scanned / alone } else { 0.0 },
            scans: scan.scans,
            rows_read: scan.rows_read,
            mean_staleness: if scan.scans > 0 {
                scan.staleness_sum as f64 / scan.scans as f64
            } else {
                0.0
            },
            max_staleness: scan.staleness_max,
            reader_heap_wait_nanos: scan.heap_wait_nanos,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// abl-server: the networked closed-loop sweep (DESIGN.md `abl-server`).
//
// Same workload shape as the multi-client ablation, but every request
// crosses a real socket boundary: each client thread owns one loopback
// TCP connection (one tenant) into a `labflow_server::Server` wrapped
// around the OStore engine, and the measurement is the full round trip
// — encode, wire, admission, session call, response. A second,
// deliberately throttled pass demonstrates the admission controller:
// offered load far above a tenant's bytes/s quota must shed with typed
// `Overloaded` responses while a paced tenant sails through untouched,
// and the drain must leave zero open sessions and zero snapshot pins.

/// Wall-clock milliseconds each closed-loop point runs.
const SRV_POINT_MILLIS: u64 = 900;
/// Materials prefilled per client slot (each client cycles its own
/// disjoint slice, so clients contend on infrastructure, not data).
const SRV_MATS_PER_CLIENT: usize = 8;
/// Wall-clock milliseconds of the deliberate-overload pass.
const SRV_OVERLOAD_MILLIS: u64 = 700;
/// Bytes/s quota for the overload pass — far below the hammer tenant's
/// offered load, comfortably above the paced tenant's.
const SRV_OVERLOAD_BYTES_PER_SEC: u64 = 4096;
/// Gap between the paced tenant's requests (~20 req/s ≈ 1 KiB/s, a
/// quarter of the quota).
const SRV_PACED_GAP: Duration = Duration::from_millis(50);
/// "Bounded" for the admitted-latency acceptance check: p99 of
/// admitted requests under overload must stay below this, i.e. shed
/// load must not queue behind admitted work.
const SRV_ADMITTED_P99_BOUND_US: f64 = 250_000.0;

/// One point of the networked closed-loop sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ServerPoint {
    /// Concurrent client connections (one tenant each).
    pub clients: usize,
    /// Wall-clock seconds measured.
    pub elapsed_sec: f64,
    /// Transactions committed across all clients.
    pub txns: u64,
    /// Committed transactions per second.
    pub txns_per_sec: f64,
    /// Admitted requests (each txn is begin + step + state + commit).
    pub requests: u64,
    /// Admitted requests per second.
    pub requests_per_sec: f64,
    /// Transactions retried after a typed `Retry` (lock conflict).
    pub retries: u64,
    /// Round-trip latency of admitted requests, µs.
    pub p50_us: f64,
    /// 99th percentile round trip, µs.
    pub p99_us: f64,
    /// 99.9th percentile round trip, µs.
    pub p999_us: f64,
    /// Worst round trip, µs.
    pub max_us: f64,
    /// Mean round trip, µs.
    pub mean_us: f64,
}

/// Per-tenant admission row (a serializable mirror of
/// [`labflow_server::TenantRow`]).
#[derive(Debug, Clone, Serialize)]
pub struct AdmissionTenantRow {
    /// Tenant id.
    pub tenant: u32,
    /// Role in the overload pass (hammer / paced / dangling).
    pub role: String,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed by the bytes/s bucket.
    pub shed_bytes: u64,
    /// Requests shed by the in-flight cap.
    pub shed_inflight: u64,
    /// Session begins refused by the session cap.
    pub shed_sessions: u64,
    /// Wire bytes received from the tenant.
    pub bytes_in: u64,
    /// Wire bytes sent to the tenant.
    pub bytes_out: u64,
}

/// Result of the deliberate-overload pass.
#[derive(Debug, Clone, Serialize)]
pub struct ServerOverload {
    /// The bytes/s quota every tenant ran under.
    pub bytes_per_sec_quota: u64,
    /// Wall-clock seconds measured.
    pub elapsed_sec: f64,
    /// Hammer tenant: requests admitted.
    pub hammer_admitted: u64,
    /// Hammer tenant: requests shed with `Overloaded`.
    pub hammer_shed: u64,
    /// Paced tenant: requests admitted.
    pub paced_admitted: u64,
    /// Paced tenant: requests shed (should be 0 — isolation).
    pub paced_shed: u64,
    /// p50 of admitted requests, µs.
    pub admitted_p50_us: f64,
    /// p99 of admitted requests, µs — must stay bounded under shed.
    pub admitted_p99_us: f64,
    /// Worst admitted round trip, µs.
    pub admitted_max_us: f64,
    /// Requests shed for any reason, any tenant (server counters).
    pub shed_total: u64,
    /// Per-tenant admission counters.
    pub tenants: Vec<AdmissionTenantRow>,
    /// Sessions still open after the drain (must be 0).
    pub open_sessions_after: u64,
    /// Snapshot pins still registered after the drain (must be 0).
    pub open_snapshots_after: usize,
}

/// The whole `abl-server` artifact: the sweep plus the overload pass.
#[derive(Debug, Clone, Serialize)]
pub struct ServerResult {
    /// One row per client count.
    pub points: Vec<ServerPoint>,
    /// The deliberate-overload admission demonstration.
    pub overload: ServerOverload,
}

use labflow_server::{Client, ClientError, ClientResult, Server, ServerConfig, TenantQuotas};

fn net(e: ClientError) -> BenchError {
    BenchError::Config(format!("server client: {e}"))
}

/// `Retry` and `Overloaded` are the two typed shed/conflict responses a
/// well-behaved client absorbs by backing off.
fn transient(e: &ClientError) -> bool {
    matches!(
        e,
        ClientError::Retry { .. } | ClientError::Overloaded { .. }
    )
}

/// What one closed-loop client accumulated.
#[derive(Default)]
struct SrvRow {
    txns: u64,
    requests: u64,
    retries: u64,
    hist: crate::hist::LatencyHist,
}

/// Issue one request, timing the full round trip; only admitted
/// (successful) requests enter the histogram.
fn timed<T>(
    c: &mut Client,
    row: &mut SrvRow,
    f: impl FnOnce(&mut Client) -> ClientResult<T>,
) -> ClientResult<T> {
    let t0 = Instant::now();
    let r = f(c);
    if r.is_ok() {
        row.hist.record(t0.elapsed());
        row.requests += 1;
    }
    r
}

/// One client's closed loop: cycle the private material slice in
/// single-step transactions until the deadline, retrying on typed
/// conflicts via abort-and-rerun.
fn server_worker(
    addr: std::net::SocketAddr,
    tenant: u32,
    mats: &[u64],
    deadline: Instant,
) -> Result<SrvRow> {
    const STATES: [&str; 4] = ["queued", "running", "done", "archived"];
    let mut c = Client::connect(addr, tenant).map_err(net)?;
    let mut row = SrvRow::default();
    // Valid times are partitioned per tenant so the run is deterministic
    // in everything except commit interleaving.
    let mut vt: i64 = i64::from(tenant) << 24;
    let mut mat_cycle = mats.iter().copied().cycle();
    let mut state_cycle = STATES.iter().copied().cycle();
    while Instant::now() < deadline {
        let (Some(m), Some(state)) = (mat_cycle.next(), state_cycle.next()) else {
            return Err(BenchError::Config("server worker got an empty material slice".into()));
        };
        vt += 4;
        let attempt = (|c: &mut Client, row: &mut SrvRow| -> ClientResult<()> {
            timed(c, row, |c| c.begin())?;
            timed(c, row, |c| {
                c.record_step(
                    "srv_track",
                    vt,
                    &[m],
                    vec![("reading".into(), Value::Real(vt as f64))],
                )
            })?;
            timed(c, row, |c| c.set_state(m, state, vt + 1))?;
            timed(c, row, |c| c.commit())?;
            Ok(())
        })(&mut c, &mut row);
        match attempt {
            Ok(()) => row.txns += 1,
            Err(e) if transient(&e) => {
                row.retries += 1;
                // Roll back whatever the partial transaction touched;
                // "no transaction open" is a fine answer here.
                let _ = c.abort();
            }
            Err(e) => return Err(net(e)),
        }
    }
    Ok(row)
}

/// One point of the sweep: a fresh OStore engine behind a fresh server,
/// `clients` closed-loop connections for [`SRV_POINT_MILLIS`].
fn run_server_point(
    cfg: &BenchConfig,
    clients: usize,
    max_clients: usize,
    base: &Path,
) -> Result<ServerPoint> {
    let dir = version_dir(base, ServerVersion::OStore)?;
    let opts = Options {
        buffer_pages: cfg.buffer_pages,
        group_commit_window: Some(MC_COMMIT_WINDOW),
        ..Options::default()
    };
    let store = ServerVersion::OStore.make_store_with(&dir, opts)?;
    let db = Arc::new(LabBase::create(store.clone())?);

    // Prefill sized off the max client count so every point works the
    // same population regardless of parallelism.
    let total = max_clients * SRV_MATS_PER_CLIENT;
    let txn = db.begin()?;
    db.define_material_class(txn, "srv_clone", None)?;
    db.define_step_class(txn, "srv_track", attrs(&[("reading", AttrType::Real)]))?;
    let mut mats = Vec::with_capacity(total);
    for i in 0..total {
        mats.push(
            db.create_material(txn, "srv_clone", &format!("srv-{i:05}"), 0)?
                .oid()
                .raw(),
        );
    }
    db.commit(txn)?;
    db.checkpoint()?;
    let _ = db.count_in_state("queued")?;
    let _ = db.find_material("srv-00000")?;

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            quotas: TenantQuotas {
                max_sessions: 0,
                max_inflight: 0,
                bytes_per_sec: 0,
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_millis(SRV_POINT_MILLIS);
    let t0 = Instant::now();
    let rows = std::thread::scope(|scope| -> Result<Vec<SrvRow>> {
        let mut handles = Vec::new();
        for c in 0..clients {
            // Round-robin partition, one tenant per connection.
            let mine: Vec<u64> = mats.iter().skip(c).step_by(clients).copied().collect();
            handles.push(scope.spawn(move || server_worker(addr, (c + 1) as u32, &mine, deadline)));
        }
        let mut rows = Vec::with_capacity(clients);
        for h in handles {
            rows.push(
                h.join()
                    .map_err(|_| BenchError::Config("client thread panicked".into()))??,
            );
        }
        Ok(rows)
    })?;
    let elapsed = t0.elapsed().as_secs_f64();
    server.shutdown()?;
    if db.open_sessions() != 0 || db.store().open_snapshots() != 0 {
        return Err(BenchError::Config(format!(
            "drain left {} sessions / {} snapshots open at {clients} clients",
            db.open_sessions(),
            db.store().open_snapshots()
        )));
    }

    let mut hist = crate::hist::LatencyHist::new();
    let mut txns = 0u64;
    let mut requests = 0u64;
    let mut retries = 0u64;
    for r in &rows {
        hist.merge(&r.hist);
        txns += r.txns;
        requests += r.requests;
        retries += r.retries;
    }
    Ok(ServerPoint {
        clients,
        elapsed_sec: elapsed,
        txns,
        txns_per_sec: if elapsed > 0.0 {
            txns as f64 / elapsed
        } else {
            0.0
        },
        requests,
        requests_per_sec: if elapsed > 0.0 {
            requests as f64 / elapsed
        } else {
            0.0
        },
        retries,
        p50_us: hist.quantile_us(0.50),
        p99_us: hist.quantile_us(0.99),
        p999_us: hist.quantile_us(0.999),
        max_us: hist.max_us(),
        mean_us: hist.mean_us(),
    })
}

/// The deliberate-overload pass: every tenant gets the same small
/// bytes/s quota; the hammer tenant offers far more than that, the
/// paced tenant stays under it, and a third tenant leaves a transaction
/// dangling so the drain has something to abort.
fn run_server_overload() -> Result<ServerOverload> {
    use labflow_storage::MemStore;

    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = Arc::new(LabBase::create(store)?);
    let txn = db.begin()?;
    db.define_material_class(txn, "srv_clone", None)?;
    db.commit(txn)?;

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            quotas: TenantQuotas {
                max_sessions: 0,
                max_inflight: 0,
                bytes_per_sec: SRV_OVERLOAD_BYTES_PER_SEC,
            },
            ..ServerConfig::default()
        },
    )?;
    let addr = server.local_addr();
    let deadline = Instant::now() + Duration::from_millis(SRV_OVERLOAD_MILLIS);
    let t0 = Instant::now();

    // (admitted, shed, admitted-RTT histogram) per driving tenant.
    type Drive = (u64, u64, crate::hist::LatencyHist);
    let drive = |tenant: u32, gap: Option<Duration>| -> Result<Drive> {
        let mut c = Client::connect(addr, tenant).map_err(net)?;
        let (mut admitted, mut shed) = (0u64, 0u64);
        let mut hist = crate::hist::LatencyHist::new();
        while Instant::now() < deadline {
            let t = Instant::now();
            match c.ping() {
                Ok(()) => {
                    hist.record(t.elapsed());
                    admitted += 1;
                }
                Err(ClientError::Overloaded { .. }) => {
                    shed += 1;
                    // A closed-loop hammer backs off a token's worth,
                    // not the suggested retry window — the point is
                    // sustained offered load above the quota.
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(net(e)),
            }
            if let Some(gap) = gap {
                std::thread::sleep(gap);
            }
        }
        Ok((admitted, shed, hist))
    };

    let ((hammer, paced), dangling) =
        std::thread::scope(|scope| -> Result<((Drive, Drive), Client)> {
            let hammer = scope.spawn(|| drive(1, None));
            let paced = scope.spawn(|| drive(2, Some(SRV_PACED_GAP)));
            // Tenant 3 leaves a transaction open across the shutdown so the
            // drain's selective abort is exercised, not just asserted.
            let mut dangling = Client::connect(addr, 3).map_err(net)?;
            dangling.begin().map_err(net)?;
            dangling
                .create_material("srv_clone", "srv-dangling", 0)
                .map_err(net)?;
            let hammer = hammer
                .join()
                .map_err(|_| BenchError::Config("hammer thread panicked".into()))??;
            let paced = paced
                .join()
                .map_err(|_| BenchError::Config("paced thread panicked".into()))??;
            Ok(((hammer, paced), dangling))
        })?;
    let elapsed = t0.elapsed().as_secs_f64();

    let snap = server.admission();
    server.shutdown()?;
    // The dangling client outlives the drain on purpose: its open
    // transaction must be aborted server-side, not by a disconnect.
    drop(dangling);
    let open_sessions_after = db.open_sessions();
    let open_snapshots_after = db.store().open_snapshots();
    if open_sessions_after != 0 || open_snapshots_after != 0 {
        return Err(BenchError::Config(format!(
            "drain left {open_sessions_after} sessions / {open_snapshots_after} snapshots open"
        )));
    }
    if db.find_material("srv-dangling")?.is_some() {
        return Err(BenchError::Config(
            "drain failed to abort the dangling transaction".into(),
        ));
    }
    if snap.shed_total() == 0 {
        return Err(BenchError::Config(
            "overload pass shed nothing — quota not enforced".into(),
        ));
    }
    let (hammer_admitted, hammer_shed, hist) = hammer;
    let (paced_admitted, paced_shed, _) = paced;
    if hammer_shed == 0 {
        return Err(BenchError::Config(
            "hammer tenant was never shed despite offered load above quota".into(),
        ));
    }
    let admitted_p99_us = hist.quantile_us(0.99);
    if admitted_p99_us > SRV_ADMITTED_P99_BOUND_US {
        return Err(BenchError::Config(format!(
            "admitted p99 {admitted_p99_us:.0}µs exceeds the {SRV_ADMITTED_P99_BOUND_US:.0}µs \
             bound — shed load is queueing behind admitted work"
        )));
    }

    let role = |tenant: u32| match tenant {
        1 => "hammer",
        2 => "paced",
        3 => "dangling",
        _ => "?",
    };
    let tenants = snap
        .tenants
        .iter()
        .map(|t| AdmissionTenantRow {
            tenant: t.tenant,
            role: role(t.tenant).to_string(),
            admitted: t.admitted,
            shed_bytes: t.shed_bytes,
            shed_inflight: t.shed_inflight,
            shed_sessions: t.shed_sessions,
            bytes_in: t.bytes_in,
            bytes_out: t.bytes_out,
        })
        .collect();
    Ok(ServerOverload {
        bytes_per_sec_quota: SRV_OVERLOAD_BYTES_PER_SEC,
        elapsed_sec: elapsed,
        hammer_admitted,
        hammer_shed,
        paced_admitted,
        paced_shed,
        admitted_p50_us: hist.quantile_us(0.50),
        admitted_p99_us,
        admitted_max_us: hist.max_us(),
        shed_total: snap.shed_total(),
        tenants,
        open_sessions_after,
        open_snapshots_after,
    })
}

/// Run the networked closed-loop sweep plus the overload pass.
pub fn run_server(cfg: &BenchConfig, client_counts: &[usize], base: &Path) -> Result<ServerResult> {
    let max_clients = client_counts.iter().copied().max().unwrap_or(1);
    let mut points = Vec::new();
    for &clients in client_counts {
        if clients == 0 {
            return Err(BenchError::Config("client count must be >= 1".into()));
        }
        points.push(run_server_point(cfg, clients, max_clients, base)?);
    }
    let overload = run_server_overload()?;
    Ok(ServerResult { points, overload })
}

#[cfg(test)]
mod server_tests {
    use super::*;
    use std::path::PathBuf;

    fn base(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfc-srv-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn smoke_server_sweep_and_overload() {
        let cfg = BenchConfig::smoke();
        let dir = base("sweep");
        let result = run_server(&cfg, &[1, 2], &dir).unwrap();
        assert_eq!(result.points.len(), 2);
        for p in &result.points {
            assert!(p.txns > 0, "{} clients committed work", p.clients);
            assert!(p.requests >= 4 * p.txns, "four admitted requests per txn");
            assert!(p.txns_per_sec > 0.0);
            assert!(
                p.p50_us <= p.p99_us && p.p99_us <= p.p999_us,
                "quantiles monotone"
            );
        }
        let o = &result.overload;
        assert!(o.hammer_shed > 0, "hammer tenant must be shed");
        assert!(
            o.hammer_admitted > 0,
            "burst allowance admits some hammer requests"
        );
        assert_eq!(o.paced_shed, 0, "paced tenant under quota is never shed");
        assert!(o.paced_admitted > 0);
        assert_eq!(o.open_sessions_after, 0);
        assert_eq!(o.open_snapshots_after, 0);
        assert!(o.shed_total >= o.hammer_shed);
        let hammer_row = o.tenants.iter().find(|t| t.tenant == 1).unwrap();
        assert_eq!(
            hammer_row.shed_bytes, o.hammer_shed,
            "server counted every shed"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_clients_is_a_config_error() {
        let cfg = BenchConfig::smoke();
        let dir = base("zero");
        assert!(run_server(&cfg, &[0], &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// abl-replication: WAL shipping to warm followers (DESIGN.md
// `abl-replication`).
//
// An in-process primary ships its WAL to 1/2/4 follower engines through
// the same verify-and-apply pipeline the networked replica binary runs
// (`labflow_repl::Follower` fed from `wal_stream_from`), skipping only
// the wire framing that `abl-server` already measures. Two passes per
// follower count:
//
//   * an asynchronous pass — a full-speed writer with quorum 0, where
//     the cost of replication is *lag*: how far behind the primary's
//     flush each follower's durable apply runs;
//   * a quorum pass — every commit additionally waits until a majority
//     of followers have durably applied it, which converts lag into
//     commit latency (the `ack_quorum` trade the server exposes).
//
// The primary is never checkpointed: checkpointing truncates the WAL
// and would rewind the stream (the documented re-seed case).

/// Wall-clock milliseconds of the asynchronous (quorum-0) pass.
const REPL_POINT_MILLIS: u64 = 500;
/// Transactions of the quorum pass (each waits for the majority ack).
const REPL_QUORUM_TXNS: u64 = 32;
/// Ship chunk cap, bytes.
const REPL_CHUNK_CAP: usize = 1 << 16;
/// Pump idle sleep while the primary has nothing new to ship.
const REPL_PUMP_IDLE: Duration = Duration::from_micros(200);
/// Materials prefilled for the writer to cycle.
const REPL_MATS: usize = 16;
/// Safety bound on catch-up and quorum waits: a pump that dies must
/// fail the experiment, not hang it.
const REPL_WAIT_CAP: Duration = Duration::from_secs(10);

/// One follower count of the replication ablation.
#[derive(Debug, Clone, Serialize)]
pub struct ReplicationPoint {
    /// Followers replaying the primary's WAL.
    pub followers: usize,
    /// Majority quorum the quorum pass waited for.
    pub ack_quorum: usize,
    /// Wall-clock seconds of the asynchronous pass.
    pub elapsed_sec: f64,
    /// Transactions the asynchronous writer committed.
    pub txns: u64,
    /// Asynchronous commit throughput.
    pub txns_per_sec: f64,
    /// WAL bytes shipped over the whole point (both passes).
    pub shipped_bytes: u64,
    /// Chunks ingested across all followers.
    pub chunks: u64,
    /// Asynchronous commit latency (primary-durable only), µs.
    pub commit_p50_us: f64,
    /// 99th percentile asynchronous commit, µs.
    pub commit_p99_us: f64,
    /// Apply lag behind the primary flush, µs — median.
    pub lag_p50_us: f64,
    /// Apply lag, 99th percentile µs.
    pub lag_p99_us: f64,
    /// Worst observed apply lag, µs.
    pub lag_max_us: f64,
    /// Time for every follower to drain the backlog once the
    /// asynchronous writer stopped, milliseconds.
    pub catchup_ms: f64,
    /// Transactions of the quorum pass.
    pub quorum_txns: u64,
    /// Commit-plus-majority-ack latency, µs — median.
    pub quorum_p50_us: f64,
    /// 99th percentile commit-plus-ack, µs.
    pub quorum_p99_us: f64,
    /// Worst commit-plus-ack, µs.
    pub quorum_max_us: f64,
}

/// What one pump thread accumulated: ingest count plus the follower's
/// durable-offset progression (elapsed-since-t0, offset) for the lag
/// reconstruction.
struct PumpOut {
    chunks: u64,
    progress: Vec<(Duration, u64)>,
}

/// What the writer side of one replication point accumulated.
struct WriterOut {
    commit_hist: crate::hist::LatencyHist,
    quorum_hist: crate::hist::LatencyHist,
    /// (elapsed-since-t0, primary flushed offset) after each commit.
    series: Vec<(Duration, u64)>,
    txns: u64,
    elapsed: f64,
    catchup_ms: f64,
}

fn repl_err(e: impl std::fmt::Display) -> BenchError {
    BenchError::Config(format!("replication: {e}"))
}

/// Ship the primary's WAL into one follower until `stop` is set *and*
/// the follower has drained everything the primary flushed.
fn repl_pump(
    pri: &Arc<dyn StorageManager>,
    follower: &labflow_repl::Follower,
    stop: &AtomicBool,
    t0: Instant,
) -> Result<PumpOut> {
    let mut out = PumpOut {
        chunks: 0,
        progress: Vec::new(),
    };
    loop {
        let durable = follower.durable_lsn();
        let chunk = pri
            .wal_stream_from(durable, REPL_CHUNK_CAP)
            .map_err(repl_err)?;
        if chunk.is_empty() {
            if stop.load(Ordering::Relaxed) && pri.replication_lsn().map_err(repl_err)? == durable {
                return Ok(out);
            }
            std::thread::sleep(REPL_PUMP_IDLE);
            continue;
        }
        follower
            .ingest(pri.store_epoch(), chunk.start, &chunk.bytes)
            .map_err(repl_err)?;
        out.chunks += 1;
        out.progress.push((t0.elapsed(), chunk.end));
    }
}

/// Wait until `pred` holds, bounded by [`REPL_WAIT_CAP`].
fn repl_wait(what: &str, mut pred: impl FnMut() -> bool) -> Result<()> {
    let cap = Instant::now() + REPL_WAIT_CAP;
    while !pred() {
        if Instant::now() > cap {
            return Err(repl_err(format!("{what} did not complete within {REPL_WAIT_CAP:?}")));
        }
        std::thread::sleep(Duration::from_micros(20));
    }
    Ok(())
}

/// One follower count: fresh primary, `n` fresh followers seeded at the
/// primary's post-create offset, the asynchronous pass, the drain, the
/// quorum pass, and a state-by-state consistency check of every replica.
fn run_replication_point(cfg: &BenchConfig, n: usize, base: &Path) -> Result<ReplicationPoint> {
    const STATES: [&str; 4] = ["queued", "running", "done", "archived"];
    let opts = || Options {
        buffer_pages: cfg.buffer_pages,
        sync_commit: true,
        ..Options::default()
    };
    let mk = |name: &str| -> Result<Arc<dyn StorageManager>> {
        let dir = base.join(name);
        if dir.exists() {
            std::fs::remove_dir_all(&dir)?;
        }
        std::fs::create_dir_all(&dir)?;
        ServerVersion::OStore.make_store_with(&dir, opts())
    };

    let pri = mk(&format!("repl-{n}-primary"))?;
    // Followers seed at the primary's post-create offset: a fresh image
    // is logically identical to the primary before its first commit, so
    // the stream replays everything from the schema bootstrap on.
    let from0 = pri.replication_lsn().map_err(repl_err)?;
    let mut followers = Vec::with_capacity(n);
    for i in 0..n {
        let store = mk(&format!("repl-{n}-follower-{i}"))?;
        followers.push(labflow_repl::Follower::new(store, from0));
    }

    let db = LabBase::create(pri.clone())?;
    let txn = db.begin()?;
    db.define_material_class(txn, "repl_clone", None)?;
    db.define_step_class(txn, "repl_track", attrs(&[("reading", AttrType::Real)]))?;
    let mut mats = Vec::with_capacity(REPL_MATS);
    for i in 0..REPL_MATS {
        mats.push(db.create_material(txn, "repl_clone", &format!("repl-{i:03}"), 0)?);
    }
    db.commit(txn)?;

    let stop = AtomicBool::new(false);
    let quorum = n / 2 + 1;
    let point = std::thread::scope(|scope| -> Result<ReplicationPoint> {
        let t0 = Instant::now();
        let (pri_ref, stop_ref) = (&pri, &stop);
        let pumps: Vec<_> = followers
            .iter()
            .map(|f| scope.spawn(move || repl_pump(pri_ref, f, stop_ref, t0)))
            .collect();

        // The writer runs in a closure so an error path still sets
        // `stop` and joins the pumps — a scope that never releases its
        // threads would hang the experiment instead of failing it.
        let work = (|| -> Result<WriterOut> {
            let mut commit_hist = crate::hist::LatencyHist::new();
            let mut series: Vec<(Duration, u64)> = Vec::new();
            let mut txns = 0u64;
            let mut vt: i64 = 0;
            let mut mat_cycle = mats.iter().copied().cycle();
            let mut state_cycle = STATES.iter().copied().cycle();
            // One single-step transaction; returns the commit duration
            // and the primary's post-commit flushed offset.
            let mut step = |vt: i64| -> Result<(Duration, u64)> {
                let (Some(m), Some(state)) = (mat_cycle.next(), state_cycle.next()) else {
                    return Err(repl_err("empty material cycle"));
                };
                let txn = db.begin()?;
                db.record_step(
                    txn,
                    "repl_track",
                    vt,
                    &[m],
                    vec![("reading".into(), Value::Real(vt as f64))],
                )?;
                db.set_state(txn, m, state, vt + 1)?;
                let t = Instant::now();
                db.commit(txn)?;
                let commit = t.elapsed();
                Ok((commit, pri.replication_lsn().map_err(repl_err)?))
            };

            // Asynchronous pass: full-speed writer, commits are done
            // when the primary's WAL is; followers trail behind.
            let deadline = Instant::now() + Duration::from_millis(REPL_POINT_MILLIS);
            while Instant::now() < deadline {
                vt += 4;
                let (commit, lsn) = step(vt)?;
                commit_hist.record(commit);
                series.push((t0.elapsed(), lsn));
                txns += 1;
            }
            let elapsed = t0.elapsed().as_secs_f64();

            // Drain: how long the backlog takes to clear once the
            // writer stops offering load.
            let lsn_a = pri.replication_lsn().map_err(repl_err)?;
            let t_drain = Instant::now();
            repl_wait("async catch-up", || {
                followers.iter().all(|f| f.durable_lsn() >= lsn_a)
            })?;
            let catchup_ms = t_drain.elapsed().as_secs_f64() * 1e3;

            // Quorum pass: each commit additionally waits until a
            // majority of followers have durably applied it — the
            // server's `ack_quorum` semantics without the wire.
            let mut quorum_hist = crate::hist::LatencyHist::new();
            for _ in 0..REPL_QUORUM_TXNS {
                vt += 4;
                let (commit, lsn) = step(vt)?;
                let t_ack = Instant::now();
                repl_wait("quorum ack", || {
                    followers.iter().filter(|f| f.durable_lsn() >= lsn).count() >= quorum
                })?;
                quorum_hist.record(commit + t_ack.elapsed());
            }
            Ok(WriterOut {
                commit_hist,
                quorum_hist,
                series,
                txns,
                elapsed,
                catchup_ms,
            })
        })();

        stop.store(true, Ordering::Relaxed);
        let mut outs = Vec::with_capacity(n);
        let mut pump_failure = None;
        for pump in pumps {
            match pump.join() {
                Err(_) => pump_failure = Some(repl_err("pump thread panicked")),
                Ok(Err(e)) => pump_failure = Some(e),
                Ok(Ok(out)) => outs.push(out),
            }
        }
        // A dead pump is the root cause of any writer-side timeout —
        // report it over the symptom.
        if let Some(e) = pump_failure {
            return Err(e);
        }
        let w = work?;

        let mut chunks = 0u64;
        let mut lag_hist = crate::hist::LatencyHist::new();
        for out in outs {
            chunks += out.chunks;
            // Reconstruct apply lag: a chunk ending at offset L became
            // shippable when the first commit whose post-commit flush
            // reached L returned; the ingest completing at `t` therefore
            // ran `t - t_commit` behind the primary.
            for (t, l) in out.progress {
                if l <= from0 {
                    continue;
                }
                let idx = w.series.partition_point(|&(_, lsn)| lsn < l);
                let Some(&(t_commit, _)) = w.series.get(idx) else {
                    continue; // quorum-pass chunks: latency measured there
                };
                lag_hist.record(t.saturating_sub(t_commit));
            }
        }

        let shipped = pri.replication_lsn().map_err(repl_err)? - from0;
        Ok(ReplicationPoint {
            followers: n,
            ack_quorum: quorum,
            elapsed_sec: w.elapsed,
            txns: w.txns,
            txns_per_sec: if w.elapsed > 0.0 {
                w.txns as f64 / w.elapsed
            } else {
                0.0
            },
            shipped_bytes: shipped,
            chunks,
            commit_p50_us: w.commit_hist.quantile_us(0.50),
            commit_p99_us: w.commit_hist.quantile_us(0.99),
            lag_p50_us: lag_hist.quantile_us(0.50),
            lag_p99_us: lag_hist.quantile_us(0.99),
            lag_max_us: lag_hist.max_us(),
            catchup_ms: w.catchup_ms,
            quorum_txns: REPL_QUORUM_TXNS,
            quorum_p50_us: w.quorum_hist.quantile_us(0.50),
            quorum_p99_us: w.quorum_hist.quantile_us(0.99),
            quorum_max_us: w.quorum_hist.max_us(),
        })
    })?;

    // Every follower must now be a faithful replica: same state counts,
    // same name lookups, read-only.
    for (i, f) in followers.iter().enumerate() {
        let replica = LabBase::open(Arc::clone(f.store()))?;
        replica.set_read_only(true);
        replica.refresh_replica_caches()?;
        for s in STATES {
            let (p, r) = (db.count_in_state(s)?, replica.count_in_state(s)?);
            if p != r {
                return Err(repl_err(format!(
                    "follower {i} diverged: {r} materials in '{s}', primary has {p}"
                )));
            }
        }
        let raw = |m: Option<MaterialId>| m.map(|m| m.oid().raw());
        if raw(replica.find_material("repl-000")?) != raw(db.find_material("repl-000")?) {
            return Err(repl_err(format!("follower {i} lost a material name")));
        }
    }
    Ok(point)
}

/// Run the replication ablation across `follower_counts`.
pub fn run_replication(
    cfg: &BenchConfig,
    follower_counts: &[usize],
    base: &Path,
) -> Result<Vec<ReplicationPoint>> {
    let mut points = Vec::new();
    for &n in follower_counts {
        if n == 0 {
            return Err(BenchError::Config("follower count must be >= 1".into()));
        }
        points.push(run_replication_point(cfg, n, base)?);
    }
    Ok(points)
}

#[cfg(test)]
mod replication_tests {
    use super::*;
    use std::path::PathBuf;

    fn base(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lfc-repl-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn smoke_replication_point() {
        let cfg = BenchConfig::smoke();
        let dir = base("smoke");
        let points = run_replication(&cfg, &[1, 2], &dir).unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.txns > 0, "{} followers: writer committed", p.followers);
            assert_eq!(p.quorum_txns, REPL_QUORUM_TXNS);
            assert!(p.shipped_bytes > 0);
            assert!(p.chunks > 0);
            assert!(
                p.lag_p50_us <= p.lag_p99_us && p.lag_p99_us <= p.lag_max_us,
                "lag quantiles monotone"
            );
            assert!(
                p.quorum_p50_us >= p.commit_p50_us,
                "waiting for the quorum cannot beat not waiting"
            );
        }
        assert_eq!(points[0].ack_quorum, 1);
        assert_eq!(points[1].ack_quorum, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_followers_is_a_config_error() {
        let cfg = BenchConfig::smoke();
        let dir = base("zero");
        assert!(run_replication(&cfg, &[0], &dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
