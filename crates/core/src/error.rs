//! Benchmark error type.

use std::fmt;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, BenchError>;

/// Errors from the benchmark layer.
#[derive(Debug)]
pub enum BenchError {
    /// Storage-manager error.
    Storage(labflow_storage::StorageError),
    /// LabBase error.
    Lab(labbase::LabError),
    /// Workflow-engine error.
    Workflow(labflow_workflow::WorkflowError),
    /// Query-language error.
    Lql(lql::LqlError),
    /// Configuration problem.
    Config(String),
    /// I/O error (result files, store directories).
    Io(std::io::Error),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Storage(e) => write!(f, "storage: {e}"),
            BenchError::Lab(e) => write!(f, "labbase: {e}"),
            BenchError::Workflow(e) => write!(f, "workflow: {e}"),
            BenchError::Lql(e) => write!(f, "lql: {e}"),
            BenchError::Config(msg) => write!(f, "config: {msg}"),
            BenchError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Storage(e) => Some(e),
            BenchError::Lab(e) => Some(e),
            BenchError::Workflow(e) => Some(e),
            BenchError::Lql(e) => Some(e),
            BenchError::Io(e) => Some(e),
            BenchError::Config(_) => None,
        }
    }
}

impl From<labflow_storage::StorageError> for BenchError {
    fn from(e: labflow_storage::StorageError) -> Self {
        BenchError::Storage(e)
    }
}
impl From<labbase::LabError> for BenchError {
    fn from(e: labbase::LabError) -> Self {
        BenchError::Lab(e)
    }
}
impl From<labflow_workflow::WorkflowError> for BenchError {
    fn from(e: labflow_workflow::WorkflowError) -> Self {
        BenchError::Workflow(e)
    }
}
impl From<lql::LqlError> for BenchError {
    fn from(e: lql::LqlError) -> Self {
        BenchError::Lql(e)
    }
}
impl From<std::io::Error> for BenchError {
    fn from(e: std::io::Error) -> Self {
        BenchError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_variants() {
        let cases: Vec<BenchError> = vec![
            BenchError::Storage(labflow_storage::StorageError::SingleUser),
            BenchError::Lab(labbase::LabError::NoMaterials),
            BenchError::Workflow(labflow_workflow::WorkflowError::UnknownStep("x".into())),
            BenchError::Lql(lql::LqlError::NoTransaction),
            BenchError::Config("bad".into()),
            BenchError::Io(std::io::Error::other("io")),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }
}
