//! Paper-style table and figure renderers.
//!
//! The Section-10 results table prints one column per server version and
//! one row per resource, grouped by workload interval — the exact layout
//! the capture preserves:
//!
//! ```text
//! Database   Server Version
//! Intvl  Resource       OStore  Texas+TC  Texas  Ostore-mm  Texas-mm
//! 0.5X   elapsed sec     1,424     1,469  1,402      1,384     1,407
//! ...
//! ```

use crate::metrics::ResourceRow;
use crate::runner::{
    BuildResult, ClusteringPoint, ConcurrencyPoint, EvolutionResult, MultiClientPoint, QueryTiming,
    RecoveryPoint, ReplicationPoint, ServerResult, SnapshotPoint,
};

/// Thousands-separated integer, the paper's number style.
pub fn commas(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// A named resource row: label plus the renderer extracting its cell.
type ResourceRenderer<'a> = (&'a str, Box<dyn Fn(&ResourceRow) -> String>);

fn pad_left(s: &str, width: usize) -> String {
    format!("{s:>width$}")
}

fn pad_right(s: &str, width: usize) -> String {
    format!("{s:<width$}")
}

/// Render the Section-10 build table: intervals × resources × versions.
pub fn build_table(results: &[BuildResult]) -> String {
    let versions: Vec<&str> = results.iter().map(|r| r.version.as_str()).collect();
    let mut intervals: Vec<String> = Vec::new();
    for r in results {
        for row in &r.rows {
            if !intervals.contains(&row.interval) {
                intervals.push(row.interval.clone());
            }
        }
    }
    let col = 12usize;
    let mut out = String::new();
    out.push_str("Database                         Server Version\n");
    out.push_str(&pad_right("Intvl  Resource", 24));
    for v in &versions {
        out.push_str(&pad_left(v, col));
    }
    out.push('\n');

    let find = |version: &str, interval: &str| -> Option<&ResourceRow> {
        results
            .iter()
            .find(|r| r.version == version)
            .and_then(|r| r.rows.iter().find(|row| row.interval == interval))
    };

    for interval in &intervals {
        let resources: [ResourceRenderer<'_>; 9] = [
            ("elapsed sec", Box::new(|r| format!("{:.1}", r.elapsed_sec))),
            (
                "user cpu sec",
                Box::new(|r| format!("{:.1}", r.user_cpu_sec)),
            ),
            ("sys cpu sec", Box::new(|r| format!("{:.1}", r.sys_cpu_sec))),
            ("majflt (sim)", Box::new(|r| commas(r.sim_majflt))),
            ("page writes", Box::new(|r| commas(r.page_writes))),
            ("steps/sec", Box::new(|r| format!("{:.0}", r.steps_per_sec))),
            ("step p99 µs", Box::new(|r| format!("{:.0}", r.step_p99_us))),
            (
                "query p99 µs",
                Box::new(|r| format!("{:.0}", r.query_p99_us)),
            ),
            (
                "size (bytes)",
                Box::new(|r| r.size_bytes.map(commas).unwrap_or_else(|| "—".to_string())),
            ),
        ];
        for (i, (name, render)) in resources.iter().enumerate() {
            let label = if i == 0 {
                format!("{interval:<6} {name}")
            } else {
                format!("       {name}")
            };
            out.push_str(&pad_right(&label, 24));
            for v in &versions {
                let cell = find(v, interval)
                    .map(render)
                    .unwrap_or_else(|| "-".to_string());
                out.push_str(&pad_left(&cell, col));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Render the throughput figure: steps/sec vs database scale, one series
/// per version (ASCII series, plus the raw numbers).
pub fn throughput_figure(results: &[BuildResult]) -> String {
    let mut out = String::new();
    out.push_str("Throughput vs database size (steps/second per interval)\n\n");
    let width = 46usize;
    let max = results
        .iter()
        .flat_map(|r| r.rows.iter().map(|row| row.steps_per_sec))
        .fold(1.0f64, f64::max);
    for r in results {
        out.push_str(&format!("{}\n", r.version));
        for row in &r.rows {
            let bar = ((row.steps_per_sec / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "  {:<6} {:>9.0} |{}\n",
                row.interval,
                row.steps_per_sec,
                "#".repeat(bar.min(width))
            ));
        }
    }
    out
}

/// Render the query-mix table: one row per family, versions as columns,
/// mean µs per execution (and faults in a second block).
pub fn query_table(timings: &[QueryTiming]) -> String {
    let mut versions: Vec<&str> = Vec::new();
    let mut queries: Vec<&str> = Vec::new();
    for t in timings {
        if !versions.contains(&t.version.as_str()) {
            versions.push(&t.version);
        }
        if !queries.contains(&t.query.as_str()) {
            queries.push(&t.query);
        }
    }
    let col = 12usize;
    let mut out = String::new();
    for (title, metric) in [
        ("mean µs per execution", 0usize),
        ("simulated faults per family", 1usize),
    ] {
        out.push_str(&format!("Query mix — {title}\n"));
        out.push_str(&pad_right("query family", 24));
        for v in &versions {
            out.push_str(&pad_left(v, col));
        }
        out.push('\n');
        for q in &queries {
            out.push_str(&pad_right(q, 24));
            for v in &versions {
                let cell = timings
                    .iter()
                    .find(|t| t.version == *v && t.query == *q)
                    .map(|t| {
                        if metric == 0 {
                            format!("{:.1}", t.mean_us)
                        } else {
                            commas(t.sim_faults)
                        }
                    })
                    .unwrap_or_else(|| "-".into());
                out.push_str(&pad_left(&cell, col));
            }
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Render the evolution table.
pub fn evolution_table(results: &[EvolutionResult]) -> String {
    let mut out = String::new();
    out.push_str("Schema evolution (redefine step class mid-stream)\n");
    out.push_str(&format!(
        "{:<12}{:>16}{:>18}{:>10}{:>14}{:>14}\n",
        "version", "redefine µs", "record_step µs", "max ver", "size before", "size after"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<12}{:>16.1}{:>18.1}{:>10}{:>14}{:>14}\n",
            r.version,
            r.redefine_mean_us,
            r.record_step_mean_us,
            r.max_versions,
            r.size_before.map(commas).unwrap_or_else(|| "—".into()),
            r.size_after.map(commas).unwrap_or_else(|| "—".into()),
        ));
    }
    out
}

/// Render the clustering-ablation table.
pub fn clustering_table(points: &[ClusteringPoint]) -> String {
    let mut out = String::new();
    out.push_str("Clustering ablation — steady-state tracking lookups, faults per 1,000 lookups\n");
    let mut pools: Vec<usize> = Vec::new();
    let mut versions: Vec<&str> = Vec::new();
    for p in points {
        if !pools.contains(&p.pool_pages) {
            pools.push(p.pool_pages);
        }
        if !versions.contains(&p.version.as_str()) {
            versions.push(&p.version);
        }
    }
    pools.sort_unstable();
    out.push_str(&pad_right("pool pages", 14));
    for v in &versions {
        out.push_str(&pad_left(v, 12));
    }
    out.push('\n');
    for pool in pools {
        out.push_str(&pad_right(&commas(pool as u64), 14));
        for v in &versions {
            let cell = points
                .iter()
                .find(|p| p.pool_pages == pool && p.version == *v)
                .map(|p| format!("{:.1}", p.faults_per_k))
                .unwrap_or_else(|| "-".into());
            out.push_str(&pad_left(&cell, 12));
        }
        out.push('\n');
    }
    out
}

/// Render the concurrency-ablation table.
pub fn concurrency_table(points: &[ConcurrencyPoint]) -> String {
    let mut out = String::new();
    out.push_str("Concurrency ablation — build throughput with reader threads\n");
    out.push_str(&format!(
        "{:<12}{:>9}{:>16}{:>18}\n",
        "version", "readers", "build steps/s", "reader queries/s"
    ));
    for p in points {
        if p.supported {
            out.push_str(&format!(
                "{:<12}{:>9}{:>16.0}{:>18.0}\n",
                p.version, p.readers, p.build_steps_per_sec, p.reader_ops_per_sec
            ));
        } else {
            out.push_str(&format!(
                "{:<12}{:>9}{:>16}{:>18}\n",
                p.version, p.readers, "—", "— (single-user)"
            ));
        }
    }
    out
}

/// Render the recovery-ablation table.
pub fn recovery_table(points: &[RecoveryPoint]) -> String {
    let mut out = String::new();
    out.push_str("Recovery ablation — crash after checkpoint + quarter-interval of work\n");
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}{:>10}{:>16}{:>12}\n",
        "version", "at crash", "recovered", "lost", "WAL debt (B)", "reopen ms"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<12}{:>14}{:>14}{:>10}{:>16}{:>12.1}\n",
            p.version,
            commas(p.materials_at_crash),
            commas(p.materials_recovered),
            commas(p.materials_lost),
            commas(p.wal_bytes_at_crash),
            p.reopen_ms,
        ));
    }
    out
}

/// Render the scrub ablation table: what the offline audit of each
/// recovered image covered, how long it took, and the verdict.
pub fn scrub_table(points: &[crate::runner::ScrubPoint]) -> String {
    let mut out = String::new();
    out.push_str("Scrub ablation — offline integrity audit of a recovered store image\n");
    out.push_str(&format!(
        "{:<12}{:>9}{:>10}{:>13}{:>12}{:>14}{:>11}{:>8}\n",
        "version",
        "pages",
        "verified",
        "quarantined",
        "wal frames",
        "image (B)",
        "scrub ms",
        "clean"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<12}{:>9}{:>10}{:>13}{:>12}{:>14}{:>11.1}{:>8}\n",
            p.version,
            commas(p.pages as u64),
            commas(p.pages_verified as u64),
            commas(p.quarantined as u64),
            commas(p.wal_frames),
            commas(p.image_bytes),
            p.scrub_ms,
            if p.clean { "yes" } else { "NO" },
        ));
    }
    out
}

/// Render the multi-client ablation table: aggregate steps/sec per
/// client count, speedup relative to each version's one-client point,
/// and the group-commit evidence (WAL syncs vs commits). Single-user
/// backends print an em dash for every multi-client cell.
pub fn multiclient_table(points: &[MultiClientPoint]) -> String {
    let mut versions: Vec<&str> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for p in points {
        if !versions.contains(&p.version.as_str()) {
            versions.push(&p.version);
        }
        if !counts.contains(&p.clients) {
            counts.push(p.clients);
        }
    }
    counts.sort_unstable();
    let find = |v: &str, c: usize| points.iter().find(|p| p.version == v && p.clients == c);
    let col = 12usize;

    let mut out = String::new();
    out.push_str("Multi-client ablation — aggregate step throughput vs writer clients\n");
    out.push_str(&pad_right("clients", 14));
    for v in &versions {
        out.push_str(&pad_left(v, col));
    }
    out.push('\n');
    for &c in &counts {
        out.push_str(&pad_right(&c.to_string(), 14));
        for v in &versions {
            let cell = find(v, c)
                .map(|p| {
                    if p.supported {
                        format!("{:.0}", p.steps_per_sec)
                    } else {
                        "—".to_string()
                    }
                })
                .unwrap_or_else(|| "-".into());
            out.push_str(&pad_left(&cell, col));
        }
        out.push('\n');
    }

    out.push_str("\nSpeedup vs 1 client\n");
    out.push_str(&pad_right("clients", 14));
    for v in &versions {
        out.push_str(&pad_left(v, col));
    }
    out.push('\n');
    for &c in &counts {
        out.push_str(&pad_right(&c.to_string(), 14));
        for v in &versions {
            let baseline = find(v, 1).filter(|p| p.supported && p.steps_per_sec > 0.0);
            let cell = match (find(v, c), baseline) {
                (Some(p), Some(b)) if p.supported => {
                    format!("{:.2}x", p.steps_per_sec / b.steps_per_sec)
                }
                (Some(_), _) => "—".to_string(),
                (None, _) => "-".to_string(),
            };
            out.push_str(&pad_left(&cell, col));
        }
        out.push('\n');
    }

    out.push_str("\nGroup commit — WAL syncs / commits / retries per point\n");
    out.push_str(&format!(
        "{:<12}{:>9}{:>12}{:>12}{:>10}{:>18}\n",
        "version", "clients", "wal syncs", "commits", "retries", "steps"
    ));
    for p in points {
        if p.supported {
            out.push_str(&format!(
                "{:<12}{:>9}{:>12}{:>12}{:>10}{:>18}\n",
                p.version,
                p.clients,
                commas(p.wal_syncs),
                commas(p.commits),
                commas(p.retries),
                commas(p.steps),
            ));
        } else {
            out.push_str(&format!(
                "{:<12}{:>9}{:>12}{:>12}{:>10}{:>18}\n",
                p.version, p.clients, "—", "—", "—", "— (single-user)"
            ));
        }
    }

    // Heap metadata contention: how often any client found a heap lock
    // (object-table shard, segment placement state) held by another
    // thread, and the total time blocked there. With the sharded heap
    // these should stay near zero even at 8 clients.
    out.push_str("\nHeap contention — contended metadata lock acquisitions per point\n");
    out.push_str(&format!(
        "{:<12}{:>9}{:>14}{:>16}\n",
        "version", "clients", "contended", "blocked µs"
    ));
    for p in points {
        if p.supported {
            out.push_str(&format!(
                "{:<12}{:>9}{:>14}{:>16}\n",
                p.version,
                p.clients,
                commas(p.heap_waits),
                commas(p.heap_wait_us),
            ));
        } else {
            out.push_str(&format!(
                "{:<12}{:>9}{:>14}{:>16}\n",
                p.version, p.clients, "—", "—"
            ));
        }
    }

    // Per-client wait attribution: where each writer's wall-clock went
    // while it was not making progress (blocked on object locks, queued
    // in WAL group commit, or blocked on heap metadata locks).
    let attributed: Vec<&MultiClientPoint> = points
        .iter()
        .filter(|p| p.supported && !p.per_client.is_empty())
        .collect();
    if !attributed.is_empty() {
        out.push_str("\nWait attribution — per client, ms blocked\n");
        out.push_str(
            "('commit wait' is pure queue wait on the log-writer; 'force' is time this\n \
             client's own thread spent inside a physical log force, e.g. steal guards)\n",
        );
        out.push_str(&format!(
            "{:<12}{:>9}{:>9}{:>12}{:>12}{:>12}{:>12}{:>9}{:>12}{:>10}{:>10}\n",
            "version",
            "clients",
            "client",
            "commits",
            "retries",
            "lock wait",
            "commit wait",
            "force",
            "heap wait",
            "cv waits",
            "name idx"
        ));
        for p in attributed {
            for r in &p.per_client {
                out.push_str(&format!(
                    "{:<12}{:>9}{:>9}{:>12}{:>12}{:>12.1}{:>12.1}{:>9.1}{:>12.1}{:>10}{:>10.1}\n",
                    p.version,
                    p.clients,
                    r.client,
                    commas(r.commits),
                    commas(r.retries),
                    r.lock_wait_ms,
                    r.commit_wait_ms,
                    r.commit_force_ms,
                    r.heap_wait_ms,
                    commas(r.lock_condvar_waits),
                    r.name_index_wait_ms,
                ));
            }
        }
    }
    out
}

/// The snapshot-scan ablation table (`abl-snapshot`): writer throughput
/// with and without the concurrent full-history scanner, plus what the
/// scanner saw (scans completed, rows visited, snapshot staleness) and
/// what it cost (heap metadata blocking, which must be zero).
pub fn snapshot_table(points: &[SnapshotPoint]) -> String {
    let mut out = String::new();
    out.push_str("Snapshot-scan ablation — writer throughput vs a concurrent analytical scan\n");
    out.push_str(&format!(
        "{:<12}{:>9}{:>12}{:>12}{:>9}{:>8}{:>14}{:>12}{:>12}{:>14}\n",
        "version",
        "writers",
        "alone st/s",
        "scan st/s",
        "ratio",
        "scans",
        "rows read",
        "stale mean",
        "stale max",
        "rd heap µs"
    ));
    for p in points {
        if p.supported {
            out.push_str(&format!(
                "{:<12}{:>9}{:>12.0}{:>12.0}{:>9}{:>8}{:>14}{:>12.1}{:>12}{:>14}\n",
                p.version,
                p.writers,
                p.steps_per_sec_alone,
                p.steps_per_sec_scanned,
                format!("{:.2}x", p.throughput_ratio),
                commas(p.scans),
                commas(p.rows_read),
                p.mean_staleness,
                commas(p.max_staleness),
                commas(p.reader_heap_wait_nanos / 1_000),
            ));
        } else {
            out.push_str(&format!(
                "{:<12}{:>9}{:>12}{:>12}{:>9}{:>8}{:>14}{:>12}{:>12}{:>14}\n",
                p.version, p.writers, "—", "—", "—", "—", "—", "—", "—", "single-user"
            ));
        }
    }
    out.push_str(
        "\nstale mean/max: commits the pinned snapshot fell behind while one scan ran.\n\
         rd heap µs: scanner time blocked on heap metadata locks — 0 means the read\n\
         path is latch-free against the writers.\n",
    );
    out
}

/// The fixed storage schema of paper Table 1, rendered as text.
pub fn table1_storage_schema() -> String {
    "\
Table 1: the fixed storage-manager schema (user schema is data)

  class          fields
  -------------  -----------------------------------------------------
  sm_material    class, name, created, state, state_time,
                 history_head -> history node, recent -> recent record,
                 ext_next -> sm_material (class extent)
  sm_step        class, version, valid_time,
                 materials: [-> sm_material]  (the involves relation),
                 attrs: [(name, value)]
  material_set   name, members: [-> sm_material]

  access structures (Section 7):
  history node   step -> sm_step, valid_time, next -> history node
  recent record  [(attr, valid_time, step -> sm_step, value)]
"
    .to_string()
}

/// The networked closed-loop sweep (`abl-server`): round-trip
/// throughput and tail latency per client count, plus the admission
/// table from the deliberate-overload pass.
pub fn server_table(result: &ServerResult) -> String {
    let mut out = String::new();
    out.push_str(
        "Networked front end — closed-loop clients over loopback TCP (OStore engine)\n",
    );
    out.push_str(&format!(
        "{:<10}{:>10}{:>10}{:>9}{:>10}{:>10}{:>11}{:>10}\n",
        "clients", "txn/s", "req/s", "retries", "p50 µs", "p99 µs", "p99.9 µs", "max µs"
    ));
    for p in &result.points {
        out.push_str(&format!(
            "{:<10}{:>10.0}{:>10.0}{:>9}{:>10.0}{:>10.0}{:>11.0}{:>10.0}\n",
            p.clients,
            p.txns_per_sec,
            p.requests_per_sec,
            p.retries,
            p.p50_us,
            p.p99_us,
            p.p999_us,
            p.max_us
        ));
    }
    out.push_str(
        "\neach txn is one begin/step/state/commit round; latency is the full wire\n\
         round trip of admitted requests.\n",
    );

    let o = &result.overload;
    out.push_str(&format!(
        "\nAdmission — deliberate overload ({} B/s per-tenant quota, {:.2}s)\n",
        o.bytes_per_sec_quota, o.elapsed_sec
    ));
    out.push_str(&format!(
        "{:<8}{:<10}{:>10}{:>12}{:>14}{:>14}{:>11}{:>11}\n",
        "tenant", "role", "admitted", "shed bytes", "shed inflight", "shed sessions", "bytes in",
        "bytes out"
    ));
    for t in &o.tenants {
        out.push_str(&format!(
            "{:<8}{:<10}{:>10}{:>12}{:>14}{:>14}{:>11}{:>11}\n",
            t.tenant,
            t.role,
            commas(t.admitted),
            commas(t.shed_bytes),
            commas(t.shed_inflight),
            commas(t.shed_sessions),
            commas(t.bytes_in),
            commas(t.bytes_out)
        ));
    }
    out.push_str(&format!(
        "\nhammer: {} admitted / {} shed · paced: {} admitted / {} shed\n\
         admitted p50/p99/max: {:.0}/{:.0}/{:.0} µs — shed load never queues behind\n\
         admitted work. post-drain open sessions/snapshots: {}/{}.\n",
        commas(o.hammer_admitted),
        commas(o.hammer_shed),
        commas(o.paced_admitted),
        commas(o.paced_shed),
        o.admitted_p50_us,
        o.admitted_p99_us,
        o.admitted_max_us,
        o.open_sessions_after,
        o.open_snapshots_after
    ));
    out
}

/// The replication ablation (`abl-replication`): apply lag behind a
/// full-speed writer and commit latency once every commit waits for a
/// majority of followers.
pub fn replication_table(points: &[ReplicationPoint]) -> String {
    let mut out = String::new();
    out.push_str("WAL-shipping replication — in-process followers replaying the primary (OStore)\n");
    out.push_str(&format!(
        "{:<11}{:>7}{:>9}{:>12}{:>8}{:>11}{:>11}{:>11}{:>12}\n",
        "followers", "quorum", "txn/s", "shipped B", "chunks", "lag p50 µs", "lag p99 µs",
        "lag max µs", "catch-up ms"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<11}{:>7}{:>9.0}{:>12}{:>8}{:>11.0}{:>11.0}{:>11.0}{:>12.1}\n",
            p.followers,
            p.ack_quorum,
            p.txns_per_sec,
            commas(p.shipped_bytes),
            p.chunks,
            p.lag_p50_us,
            p.lag_p99_us,
            p.lag_max_us,
            p.catchup_ms
        ));
    }
    out.push_str(
        "\nlag: time between a commit returning on the primary and a follower\n\
         durably applying the chunk that carries it (asynchronous pass).\n",
    );
    out.push_str(&format!(
        "\nCommit latency — primary-durable (quorum 0) vs majority-acked\n{:<11}{:>14}{:>14}{:>16}{:>16}{:>14}\n",
        "followers", "async p50 µs", "async p99 µs", "quorum p50 µs", "quorum p99 µs", "quorum max µs"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<11}{:>14.0}{:>14.0}{:>16.0}{:>16.0}{:>14.0}\n",
            p.followers, p.commit_p50_us, p.commit_p99_us, p.quorum_p50_us, p.quorum_p99_us,
            p.quorum_max_us
        ));
    }
    out.push_str(
        "\neach quorum commit waits until a majority of followers have durably\n\
         applied it; every replica is checked state-by-state against the\n\
         primary at the end of the point.\n",
    );
    out
}

/// The two-level EER schema of paper Figure 1, rendered as text.
pub fn fig1_schema() -> String {
    "\
Figure 1: two-level EER schema

  generic level
      +----------+    involves     +----------+
      | material |<--------------->|   step   |
      +----------+     (m : n)     +----------+
        ^   ^  is-a                  ^   ^  is-a
        |   |                        |   |
  lab-specific level                 |   |
      +-------+ +--------+   +------------------+ +--------------------+
      | clone | | tclone |   | determine_       | | assemble_sequence, |
      +-------+ +--------+   |   sequence, ...  | | associate_tclone,..|
                             +------------------+ +--------------------+

  materials carry workflow states; steps carry versioned attribute sets;
  a material's attributes derive from the steps that processed it.
"
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::ResourceRow;

    fn row(version: &str, interval: &str, elapsed: f64) -> ResourceRow {
        ResourceRow {
            version: version.into(),
            interval: interval.into(),
            elapsed_sec: elapsed,
            user_cpu_sec: elapsed * 0.9,
            sys_cpu_sec: 0.1,
            os_majflt: 0,
            sim_majflt: 1234,
            page_reads: 100,
            page_writes: 2000,
            size_bytes: if version.ends_with("-mm") {
                None
            } else {
                Some(16_629_760)
            },
            steps: 5000,
            queries: 10000,
            materials: 900,
            steps_per_sec: 5000.0 / elapsed,
            step_p50_us: 20.0,
            step_p99_us: 180.0,
            query_p99_us: 40.0,
        }
    }

    fn sample_results() -> Vec<BuildResult> {
        ["OStore", "Texas+TC", "Texas", "OStore-mm", "Texas-mm"]
            .iter()
            .map(|v| BuildResult {
                version: v.to_string(),
                rows: vec![row(v, "0.5X", 1.5), row(v, "1.0X", 2.5)],
            })
            .collect()
    }

    #[test]
    fn commas_formats() {
        assert_eq!(commas(0), "0");
        assert_eq!(commas(999), "999");
        assert_eq!(commas(1000), "1,000");
        assert_eq!(commas(16_629_760), "16,629,760");
    }

    #[test]
    fn build_table_shape() {
        let table = build_table(&sample_results());
        assert!(table.contains("OStore"));
        assert!(table.contains("Texas+TC"));
        assert!(table.contains("0.5X"));
        assert!(table.contains("elapsed sec"));
        assert!(table.contains("16,629,760"));
        assert!(table.contains("—"), "mm versions print an em dash for size");
    }

    #[test]
    fn throughput_figure_has_bars() {
        let fig = throughput_figure(&sample_results());
        assert!(fig.contains("#"));
        assert!(fig.contains("1.0X"));
    }

    #[test]
    fn query_table_shape() {
        let timings = vec![
            QueryTiming {
                version: "OStore".into(),
                query: "recent lookup".into(),
                count: 500,
                total_ms: 5.0,
                mean_us: 10.0,
                sim_faults: 42,
                answers: 480,
            },
            QueryTiming {
                version: "Texas".into(),
                query: "recent lookup".into(),
                count: 500,
                total_ms: 9.0,
                mean_us: 18.0,
                sim_faults: 900,
                answers: 480,
            },
        ];
        let t = query_table(&timings);
        assert!(t.contains("recent lookup"));
        assert!(t.contains("18.0"));
        assert!(t.contains("900"));
    }

    #[test]
    fn multiclient_table_shape() {
        let point = |version: &str, clients: usize, supported: bool, sps: f64| MultiClientPoint {
            version: version.into(),
            clients,
            supported,
            elapsed_sec: 1.0,
            steps: if supported { 4000 } else { 0 },
            steps_per_sec: if supported { sps } else { 0.0 },
            commits: if supported { 1001 } else { 0 },
            retries: 0,
            wal_syncs: if supported { 400 } else { 0 },
            heap_waits: if supported { 17 } else { 0 },
            heap_wait_us: if supported { 230 } else { 0 },
            per_client: Vec::new(),
        };
        let mut points = vec![
            point("OStore", 1, true, 1000.0),
            point("OStore", 4, true, 2500.0),
            point("Texas", 1, true, 1200.0),
            point("Texas", 4, false, 0.0),
        ];
        points[1].per_client = vec![crate::metrics::ClientRow {
            client: 0,
            steps: 1000,
            commits: 250,
            retries: 3,
            lock_wait_ms: 12.25,
            commit_wait_ms: 4.5,
            commit_force_ms: 2.25,
            heap_wait_ms: 1.75,
            lock_condvar_waits: 4321,
            name_index_wait_ms: 6.5,
        }];
        let t = multiclient_table(&points);
        assert!(t.contains("2.50x"), "speedup row renders: {t}");
        assert!(t.contains("—"), "single-user cells print an em dash");
        assert!(t.contains("1,001"));
        assert!(t.contains("Wait attribution"), "wait section renders: {t}");
        assert!(
            t.contains("12.2") || t.contains("12.3"),
            "lock wait ms renders: {t}"
        );
        assert!(t.contains("heap wait"), "heap wait column renders: {t}");
        assert!(
            t.contains("1.8") || t.contains("1.7"),
            "heap wait ms renders: {t}"
        );
        assert!(t.contains("force"), "force column renders: {t}");
        assert!(
            t.contains("2.2") || t.contains("2.3"),
            "force ms renders: {t}"
        );
        assert!(t.contains("cv waits"), "condvar wait column renders: {t}");
        assert!(t.contains("4,321"), "condvar wait count renders: {t}");
        assert!(t.contains("name idx"), "name index column renders: {t}");
        assert!(t.contains("6.5"), "name index ms renders: {t}");
        assert!(
            t.contains("Heap contention"),
            "heap contention section renders: {t}"
        );
        assert!(t.contains("230"), "blocked µs renders: {t}");
    }

    #[test]
    fn snapshot_table_shape() {
        let points = vec![
            SnapshotPoint {
                version: "OStore".into(),
                writers: 4,
                supported: true,
                steps_per_sec_alone: 10000.0,
                steps_per_sec_scanned: 9500.0,
                throughput_ratio: 0.95,
                scans: 12,
                rows_read: 48000,
                mean_staleness: 33.5,
                max_staleness: 71,
                reader_heap_wait_nanos: 0,
            },
            SnapshotPoint {
                version: "Texas".into(),
                writers: 4,
                supported: false,
                steps_per_sec_alone: 0.0,
                steps_per_sec_scanned: 0.0,
                throughput_ratio: 0.0,
                scans: 0,
                rows_read: 0,
                mean_staleness: 0.0,
                max_staleness: 0,
                reader_heap_wait_nanos: 0,
            },
        ];
        let t = snapshot_table(&points);
        assert!(t.contains("0.95x"), "ratio renders: {t}");
        assert!(t.contains("48,000"), "rows read renders: {t}");
        assert!(t.contains("33.5"), "mean staleness renders: {t}");
        assert!(t.contains("single-user"), "unsupported row renders: {t}");
        assert!(t.contains("latch-free"), "legend renders: {t}");
    }

    #[test]
    fn static_artifacts_render() {
        assert!(table1_storage_schema().contains("sm_step"));
        assert!(table1_storage_schema().contains("material_set"));
        assert!(fig1_schema().contains("involves"));
    }

    #[test]
    fn evolution_and_clustering_tables() {
        let evo = evolution_table(&[EvolutionResult {
            version: "OStore".into(),
            redefine_mean_us: 12.5,
            record_step_mean_us: 40.0,
            max_versions: 7,
            old_version_steps_ok: 10,
            size_before: Some(1000),
            size_after: Some(1100),
        }]);
        assert!(evo.contains("OStore"));
        assert!(evo.contains("12.5"));

        let cl = clustering_table(&[ClusteringPoint {
            version: "Texas".into(),
            pool_pages: 128,
            lookups: 1000,
            sim_faults: 500,
            faults_per_k: 500.0,
            elapsed_ms: 3.0,
        }]);
        assert!(cl.contains("Texas"));
        assert!(cl.contains("500.0"));
    }
}
