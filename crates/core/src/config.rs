//! Benchmark configuration: server versions, scale factors, and the
//! workload knobs of LabFlow-1.

use std::path::Path;
use std::sync::Arc;

use labflow_storage::{MemStore, OStore, Options, StorageManager, Texas, TexasTc};

use crate::error::{BenchError, Result};

/// The five server versions of the paper's Section 10.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum ServerVersion {
    /// ObjectStore-like: segments, lock manager, WAL.
    OStore,
    /// Texas-like: address-order heap, swizzling, single-user.
    Texas,
    /// Texas with client-implemented clustering.
    TexasTc,
    /// Main-memory OStore (storage management compiled out).
    OStoreMm,
    /// Main-memory Texas.
    TexasMm,
}

impl ServerVersion {
    /// All five versions, in the paper's column order.
    pub const ALL: [ServerVersion; 5] = [
        ServerVersion::OStore,
        ServerVersion::TexasTc,
        ServerVersion::Texas,
        ServerVersion::OStoreMm,
        ServerVersion::TexasMm,
    ];

    /// The persistent versions only.
    pub const PERSISTENT: [ServerVersion; 3] =
        [ServerVersion::OStore, ServerVersion::TexasTc, ServerVersion::Texas];

    /// Column name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ServerVersion::OStore => "OStore",
            ServerVersion::Texas => "Texas",
            ServerVersion::TexasTc => "Texas+TC",
            ServerVersion::OStoreMm => "OStore-mm",
            ServerVersion::TexasMm => "Texas-mm",
        }
    }

    /// Parse a version from its table name (case-insensitive).
    pub fn parse(s: &str) -> Option<ServerVersion> {
        match s.to_ascii_lowercase().as_str() {
            "ostore" => Some(ServerVersion::OStore),
            "texas" => Some(ServerVersion::Texas),
            "texas+tc" | "texastc" | "texas_tc" => Some(ServerVersion::TexasTc),
            "ostore-mm" | "ostoremm" | "ostore_mm" => Some(ServerVersion::OStoreMm),
            "texas-mm" | "texasmm" | "texas_mm" => Some(ServerVersion::TexasMm),
            _ => None,
        }
    }

    /// Whether the version persists data to disk.
    pub fn is_persistent(self) -> bool {
        matches!(self, ServerVersion::OStore | ServerVersion::Texas | ServerVersion::TexasTc)
    }

    /// Instantiate the storage manager. Persistent versions create their
    /// store under `dir`; `-mm` versions ignore it.
    pub fn make_store(
        self,
        dir: &Path,
        buffer_pages: usize,
    ) -> Result<Arc<dyn StorageManager>> {
        self.make_store_with(dir, Options { buffer_pages, ..Options::default() })
    }

    /// Instantiate the storage manager with explicit [`Options`] (e.g. a
    /// group-commit window for the multi-client experiment). `-mm`
    /// versions ignore the options entirely.
    pub fn make_store_with(self, dir: &Path, opts: Options) -> Result<Arc<dyn StorageManager>> {
        let store: Arc<dyn StorageManager> = match self {
            ServerVersion::OStore => Arc::new(OStore::create(dir, opts)?),
            ServerVersion::Texas => Arc::new(Texas::create(dir, opts)?),
            ServerVersion::TexasTc => Arc::new(TexasTc::create(dir, opts)?),
            ServerVersion::OStoreMm => Arc::new(MemStore::ostore_mm()),
            ServerVersion::TexasMm => Arc::new(MemStore::texas_mm()),
        };
        Ok(store)
    }

    /// Reopen a persistent store (crash-recovery path).
    pub fn open_store(
        self,
        dir: &Path,
        buffer_pages: usize,
    ) -> Result<Arc<dyn StorageManager>> {
        let opts = Options { buffer_pages, ..Options::default() };
        let store: Arc<dyn StorageManager> = match self {
            ServerVersion::OStore => Arc::new(OStore::open(dir, opts)?),
            ServerVersion::Texas => Arc::new(Texas::open(dir, opts)?),
            ServerVersion::TexasTc => Arc::new(TexasTc::open(dir, opts)?),
            _ => return Err(BenchError::Config("-mm versions cannot be reopened".into())),
        };
        Ok(store)
    }

}

/// Benchmark configuration.
#[derive(Clone, Debug)]
pub struct BenchConfig {
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// Clones injected at scale 1X.
    pub base_clones: usize,
    /// Buffer-pool pages for persistent backends. The paper's machines
    /// had memory small relative to the database; this knob plays that
    /// role (default 2048 pages = 8 MiB).
    pub buffer_pages: usize,
    /// Interleaved tracking queries per workflow step executed.
    pub queries_per_step: f64,
    /// Probability that a step arrives with an out-of-order valid time.
    pub out_of_order_rate: f64,
    /// Maximum backdating (ticks) for out-of-order arrivals.
    pub out_of_order_ticks: i64,
    /// Checkpoint every this many workflow steps (0 = only at interval
    /// boundaries).
    pub checkpoint_every: usize,
    /// Redefine a step class every this many workflow steps (0 = never).
    pub evolution_every: usize,
    /// Reads needed before a clone's assembly is attempted.
    pub reads_per_assembly: usize,
    /// New clones injected per simulation tick.
    pub arrivals_per_tick: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            seed: 0x1ABF_1011,
            base_clones: 1000,
            buffer_pages: 2048,
            queries_per_step: 2.0,
            out_of_order_rate: 0.05,
            out_of_order_ticks: 40,
            checkpoint_every: 2_000,
            evolution_every: 1_500,
            reads_per_assembly: 6,
            arrivals_per_tick: 4,
        }
    }
}

impl BenchConfig {
    /// A tiny configuration for tests and smoke runs.
    pub fn smoke() -> Self {
        BenchConfig {
            base_clones: 16,
            buffer_pages: 64,
            checkpoint_every: 200,
            evolution_every: 120,
            ..BenchConfig::default()
        }
    }

    /// Clones injected at `scale` (e.g. 0.5, 1.0, 2.0).
    pub fn clones_at(&self, scale: f64) -> usize {
        ((self.base_clones as f64) * scale).round().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for v in ServerVersion::ALL {
            assert_eq!(ServerVersion::parse(v.name()), Some(v));
        }
        assert_eq!(ServerVersion::parse("nope"), None);
    }

    #[test]
    fn make_store_all_versions() {
        let base = std::env::temp_dir().join(format!("lfc-cfg-{}", std::process::id()));
        for v in ServerVersion::ALL {
            let dir = base.join(v.name().replace('+', "p"));
            std::fs::remove_dir_all(&dir).ok();
            let store = v.make_store(&dir, 64).unwrap();
            assert_eq!(store.name(), v.name());
            assert_eq!(store.is_persistent(), v.is_persistent());
        }
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn mm_cannot_reopen() {
        let dir = std::env::temp_dir().join("never");
        assert!(ServerVersion::OStoreMm.open_store(&dir, 64).is_err());
    }

    #[test]
    fn scale_arithmetic() {
        let cfg = BenchConfig { base_clones: 100, ..BenchConfig::default() };
        assert_eq!(cfg.clones_at(0.5), 50);
        assert_eq!(cfg.clones_at(1.0), 100);
        assert_eq!(cfg.clones_at(2.0), 200);
        assert_eq!(cfg.clones_at(0.001), 1, "never zero");
    }
}
