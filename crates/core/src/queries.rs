//! The Section-8 query families timed by the query-mix experiment.
//!
//! Each family is a named closure over the built database; the runner
//! times them per server version with a cold cache. Families cover the
//! paper's groups: workflow tracking, most-recent retrieval, historical
//! (as-of) queries, set/list generation, counting, and report
//! generation — plus a family that goes through the LQL deductive
//! language end-to-end, as the paper's queries are specified.

use labbase::LabBase;
use labflow_workflow::genome;
use lql::{stdlib::labflow_program, Session};

use crate::error::Result;
use crate::workload::LabSim;

/// A named query family. `run` returns `(executions, answers)`.
pub struct QueryFamily {
    /// Family name (rows of the query-mix table).
    pub name: &'static str,
    /// Execute the family against a built database.
    #[allow(clippy::type_complexity)]
    pub run: fn(&LabBase, &mut LabSim) -> Result<(u64, u64)>,
}

/// All query families, in table order.
pub fn families() -> Vec<QueryFamily> {
    vec![
        QueryFamily { name: "recent lookup", run: recent_lookup },
        QueryFamily { name: "tracking", run: tracking },
        QueryFamily { name: "as-of (history)", run: as_of },
        QueryFamily { name: "state counts", run: state_counts },
        QueryFamily { name: "report: sequences", run: report_sequences },
        QueryFamily { name: "report: finished", run: report_finished },
        QueryFamily { name: "counting: materials", run: counting_materials },
        QueryFamily { name: "counting: steps", run: counting_steps },
        QueryFamily { name: "set generation", run: set_generation },
        QueryFamily { name: "LQL view mix", run: lql_mix },
    ]
}

/// Most-recent attribute lookups on random materials (the hottest lab
/// query; O(1) object reads through the recent cache).
fn recent_lookup(db: &LabBase, sim: &mut LabSim) -> Result<(u64, u64)> {
    let mats = sim.sample_materials(500);
    let mut answers = 0u64;
    for (i, m) in mats.iter().enumerate() {
        let attr = ["sequence", "quality", "outcome"][i % 3];
        if db.recent(*m, attr)?.is_some() {
            answers += 1;
        }
    }
    Ok((mats.len() as u64, answers))
}

/// Workflow tracking: where is the material and how much has happened
/// to it.
fn tracking(db: &LabBase, sim: &mut LabSim) -> Result<(u64, u64)> {
    let mats = sim.sample_materials(300);
    let mut answers = 0u64;
    for m in &mats {
        if db.state_of(*m)?.is_some() {
            answers += 1;
        }
        answers += db.history_len(*m)? as u64;
    }
    Ok((mats.len() as u64, answers))
}

/// Historical as-of queries: walk history by valid time, touching step
/// payloads in the cold segment.
fn as_of(db: &LabBase, sim: &mut LabSim) -> Result<(u64, u64)> {
    let mats = sim.sample_materials(150);
    let mut answers = 0u64;
    for m in &mats {
        let at = sim.sample_time();
        if db.as_of(*m, "quality", at)?.is_some() {
            answers += 1;
        }
    }
    Ok((mats.len() as u64, answers))
}

/// Workflow monitoring: queue lengths per state.
fn state_counts(db: &LabBase, _sim: &mut LabSim) -> Result<(u64, u64)> {
    let states = [
        genome::RECEIVED,
        genome::WAITING_FOR_ASSEMBLY,
        genome::WAITING_FOR_SEQUENCING,
        genome::WAITING_FOR_INCORPORATION,
        genome::FINISHED,
        genome::INCORPORATED,
    ];
    let mut answers = 0u64;
    let mut count = 0u64;
    for _ in 0..20 {
        for s in states {
            answers += db.count_in_state(s)? as u64;
            count += 1;
        }
    }
    Ok((count, answers))
}

/// Report: every clone's current sequence (set/list generation over the
/// extent — a full scan of materials + recents).
fn report_sequences(db: &LabBase, _sim: &mut LabSim) -> Result<(u64, u64)> {
    let rows = db.collect_attr("clone", "sequence")?;
    Ok((1, rows.len() as u64))
}

/// Report: clones finished in the recent window.
fn report_finished(db: &LabBase, sim: &mut LabSim) -> Result<(u64, u64)> {
    let since = sim.clock() / 2;
    let rows = db.changed_since("clone", genome::FINISHED, since)?;
    Ok((1, rows.len() as u64))
}

/// Counting by extent scan (touches every material record).
fn counting_materials(db: &LabBase, _sim: &mut LabSim) -> Result<(u64, u64)> {
    let clones = db.count_class_scan("clone")?;
    let tclones = db.count_class_scan("tclone")?;
    Ok((2, clones + tclones))
}

/// Counting step instances by scanning histories (the paper's
/// `setof`-style counting; heavy, touches the cold segment).
fn counting_steps(db: &LabBase, _sim: &mut LabSim) -> Result<(u64, u64)> {
    let n = db.count_steps_scan("determine_sequence")?;
    Ok((1, n))
}

/// Set generation: build a named material set of clones whose latest
/// assembly coverage beats a threshold (BLAST-style result capture).
fn set_generation(db: &LabBase, _sim: &mut LabSim) -> Result<(u64, u64)> {
    let set_name = "qm_high_coverage";
    let txn = db.begin()?;
    // Re-runnable: drop a previous run's set.
    if db.set_names().iter().any(|n| n == set_name) {
        db.drop_set(txn, set_name)?;
    }
    db.create_set(txn, set_name)?;
    let mut members = Vec::new();
    for (m, v) in db.collect_attr("clone", "coverage")? {
        if matches!(v, labbase::Value::Real(c) if c >= 4.0) {
            members.push(m);
        }
    }
    db.add_all_to_set(txn, set_name, &members)?;
    db.commit(txn)?;
    Ok((1, members.len() as u64))
}

/// The same workload expressed through the LQL deductive language
/// (paper Section 8's presentation), using the stdlib views.
fn lql_mix(db: &LabBase, sim: &mut LabSim) -> Result<(u64, u64)> {
    let program = labflow_program();
    let session = Session::new(db, &program);
    let mut count = 0u64;
    let mut answers = 0u64;

    // Queue monitoring via the counting view.
    for state in ["finished", "waiting_for_sequencing", "waiting_for_assembly"] {
        let rows = session.query(&format!("count_in_state(clone, {state}, N)"))?;
        answers += rows.len() as u64;
        count += 1;
    }
    // Tracking + most-recent on a sample of materials by name.
    for m in sim.sample_materials(20) {
        let info = db.material(m)?;
        let rows = session.query(&format!(
            "material_name(M, \"{}\"), history_size(M, N)",
            info.name
        ))?;
        answers += rows.len() as u64;
        count += 1;
    }
    // Set generation via setof over a sampled material's history
    // (joined through the name index; LQL has no oid literal syntax).
    for m in sim.sample_materials(10) {
        let info = db.material(m)?;
        let rows = session.query(&format!(
            "material_name(M, \"{}\"), sequences_of(M, Set)",
            info.name
        ))?;
        answers += rows.len() as u64;
        count += 1;
    }
    Ok((count, answers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BenchConfig, ServerVersion};

    #[test]
    fn families_all_run_on_a_smoke_db() {
        let cfg = BenchConfig::smoke();
        let store = ServerVersion::OStoreMm
            .make_store(&std::env::temp_dir().join("unused"), 64)
            .unwrap();
        let db = LabBase::create(store).unwrap();
        let mut sim = LabSim::new(cfg);
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, 8).unwrap();
        sim.drain(&db, 10_000).unwrap();
        for family in families() {
            let (count, _answers) = (family.run)(&db, &mut sim)
                .unwrap_or_else(|e| panic!("family '{}' failed: {e}", family.name));
            assert!(count > 0, "family '{}' did nothing", family.name);
        }
    }

    #[test]
    fn set_generation_is_rerunnable() {
        let cfg = BenchConfig::smoke();
        let store = ServerVersion::OStoreMm
            .make_store(&std::env::temp_dir().join("unused"), 64)
            .unwrap();
        let db = LabBase::create(store).unwrap();
        let mut sim = LabSim::new(cfg);
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, 6).unwrap();
        sim.drain(&db, 10_000).unwrap();
        let (_, a1) = set_generation(&db, &mut sim).unwrap();
        let (_, a2) = set_generation(&db, &mut sim).unwrap();
        assert_eq!(a1, a2, "idempotent on an unchanged database");
    }
}
