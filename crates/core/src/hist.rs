//! A small log-bucketed latency histogram for per-operation timing.
//!
//! The Section-10 tables aggregate whole intervals; a production
//! benchmark also wants the latency *distribution* of the hot operations
//! (step insertion, tracking queries). Buckets grow geometrically from
//! 1 µs, so the histogram covers nanoseconds to minutes in 64 buckets
//! with bounded (~3%-per-decade... strictly ≤ bucket-width) error.

use std::time::Duration;

use serde::Serialize;

/// Number of buckets; bucket `i` covers `[floor(1.35^i) µs, floor(1.35^(i+1)) µs)`.
const BUCKETS: usize = 64;
const GROWTH: f64 = 1.35;

/// A latency histogram over microsecond-scale samples.
#[derive(Clone, Debug, Serialize)]
pub struct LatencyHist {
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
    max_us: f64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist { counts: vec![0; BUCKETS], total: 0, sum_us: 0.0, max_us: 0.0 }
    }
}

impl LatencyHist {
    /// An empty histogram.
    pub fn new() -> LatencyHist {
        LatencyHist::default()
    }

    fn bucket_for(us: f64) -> usize {
        if us < 1.0 {
            return 0;
        }
        let idx = us.ln() / GROWTH.ln();
        (idx as usize).min(BUCKETS - 1)
    }

    /// Lower bound of bucket `i`, in µs.
    fn bucket_floor(i: usize) -> f64 {
        GROWTH.powi(i as i32)
    }

    /// Record one sample.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_secs_f64() * 1e6;
        self.counts[Self::bucket_for(us)] += 1;
        self.total += 1;
        self.sum_us += us;
        if us > self.max_us {
            self.max_us = us;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean in µs.
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us / self.total as f64
        }
    }

    /// Maximum observed, in µs.
    pub fn max_us(&self) -> f64 {
        self.max_us
    }

    /// Approximate quantile (`q` in `[0, 1]`), in µs: the lower bound of
    /// the bucket holding the q-th sample. Returns 0 when empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0.0 } else { Self::bucket_floor(i) };
            }
        }
        self.max_us
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHist) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        if other.max_us > self.max_us {
            self.max_us = other.max_us;
        }
    }

    /// One-line summary: `n=…, mean=…µs p50=… p95=… p99=… max=…`.
    pub fn summary(&self) -> String {
        format!(
            "n={} mean={:.1}µs p50={:.0}µs p95={:.0}µs p99={:.0}µs max={:.0}µs",
            self.total,
            self.mean_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.95),
            self.quantile_us(0.99),
            self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert_eq!(h.quantile_us(0.5), 0.0);
        assert!(h.summary().starts_with("n=0"));
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHist::new();
        for v in [10u64, 20, 30, 40] {
            h.record(us(v));
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean_us() - 25.0).abs() < 1e-9);
        assert!((h.max_us() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_accurate() {
        let mut h = LatencyHist::new();
        // 100 samples at ~10µs, 10 at ~1000µs.
        for _ in 0..100 {
            h.record(us(10));
        }
        for _ in 0..10 {
            h.record(us(1000));
        }
        let p50 = h.quantile_us(0.50);
        assert!((5.0..=14.0).contains(&p50), "p50 {p50} should be ~10µs");
        let p99 = h.quantile_us(0.99);
        assert!((700.0..=1400.0).contains(&p99), "p99 {p99} should be ~1000µs");
        // Quantiles are monotone.
        let qs: Vec<f64> = [0.1, 0.5, 0.9, 0.99, 1.0]
            .iter()
            .map(|&q| h.quantile_us(q))
            .collect();
        for w in qs.windows(2) {
            assert!(w[0] <= w[1], "quantiles must be monotone: {qs:?}");
        }
    }

    #[test]
    fn merge_combines() {
        let mut a = LatencyHist::new();
        let mut b = LatencyHist::new();
        a.record(us(10));
        b.record(us(1000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.max_us() - 1000.0).abs() < 1e-9);
        assert!((a.mean_us() - 505.0).abs() < 1e-9);
    }

    #[test]
    fn extremes_do_not_panic() {
        let mut h = LatencyHist::new();
        h.record(Duration::from_nanos(1));
        h.record(Duration::from_secs(3600));
        assert_eq!(h.count(), 2);
        assert!(h.quantile_us(1.0) >= h.quantile_us(0.0));
    }
}
