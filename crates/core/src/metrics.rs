//! Resource metering: the paper's `elapsed sec`, `user cpu sec`,
//! `sys cpu sec`, `majflt`, and `size (bytes)` rows.
//!
//! CPU times and OS major faults come from `/proc/self/stat`; the
//! simulated fault count (buffer-pool misses that touched the backing
//! file) comes from the storage manager's own counters — the same event
//! the paper's memory-starved machines observed as OS `majflt`
//! (DESIGN.md, substitution table).

use std::time::Instant;

use labflow_storage::StatsSnapshot;
use serde::Serialize;

use crate::error::Result;

/// CPU/fault numbers from `/proc/self/stat` (whole process).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct ProcStat {
    /// User CPU seconds.
    pub user_sec: f64,
    /// System CPU seconds.
    pub sys_sec: f64,
    /// OS major page faults.
    pub majflt: u64,
}

impl ProcStat {
    /// Read the current process counters. Returns zeros on platforms
    /// without procfs.
    pub fn read() -> ProcStat {
        match std::fs::read_to_string("/proc/self/stat") {
            Ok(line) => Self::parse(&line).unwrap_or_default(),
            Err(_) => ProcStat::default(),
        }
    }

    /// Parse a `/proc/<pid>/stat` line. Fields (1-based): 12 = majflt,
    /// 14 = utime, 15 = stime, in clock ticks.
    fn parse(line: &str) -> Option<ProcStat> {
        // comm (field 2) may contain spaces; skip past the closing paren.
        let rest = &line[line.rfind(')')? + 1..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // rest starts at field 3, so field N lives at index N - 3.
        let majflt: u64 = fields.get(12 - 3)?.parse().ok()?;
        let utime: f64 = fields.get(14 - 3)?.parse::<u64>().ok()? as f64;
        let stime: f64 = fields.get(15 - 3)?.parse::<u64>().ok()? as f64;
        let hz = 100.0; // USER_HZ is 100 on every Linux we target
        Some(ProcStat { user_sec: utime / hz, sys_sec: stime / hz, majflt })
    }

    /// `self - earlier`, counter-wise.
    pub fn delta(&self, earlier: &ProcStat) -> ProcStat {
        ProcStat {
            user_sec: (self.user_sec - earlier.user_sec).max(0.0),
            sys_sec: (self.sys_sec - earlier.sys_sec).max(0.0),
            majflt: self.majflt.saturating_sub(earlier.majflt),
        }
    }
}

/// One row of the Section-10 results: the resources one server version
/// consumed over one workload interval.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceRow {
    /// Server-version name ("OStore", …).
    pub version: String,
    /// Interval label ("0.5X", …).
    pub interval: String,
    /// Wall-clock seconds.
    pub elapsed_sec: f64,
    /// User CPU seconds.
    pub user_cpu_sec: f64,
    /// System CPU seconds.
    pub sys_cpu_sec: f64,
    /// OS major faults (near zero on modern machines; kept for fidelity).
    pub os_majflt: u64,
    /// Simulated major faults: buffer-pool misses that touched the file.
    pub sim_majflt: u64,
    /// Pages physically read / written.
    pub page_reads: u64,
    /// Pages physically written.
    pub page_writes: u64,
    /// Database size in bytes (`None` for `-mm` versions: "—").
    pub size_bytes: Option<u64>,
    /// Workflow steps recorded in the interval.
    pub steps: u64,
    /// Interleaved queries answered in the interval.
    pub queries: u64,
    /// Materials live at interval end.
    pub materials: u64,
    /// Steps per wall-clock second over the interval.
    pub steps_per_sec: f64,
    /// Median step-insertion latency over the interval, µs.
    pub step_p50_us: f64,
    /// 99th-percentile step-insertion latency, µs.
    pub step_p99_us: f64,
    /// 99th-percentile tracking-query latency, µs.
    pub query_p99_us: f64,
}

/// One client's share of a multi-client run (`abl-multiclient`).
#[derive(Debug, Clone, Serialize)]
pub struct ClientRow {
    /// Client index (0-based).
    pub client: u64,
    /// Workflow steps this client recorded.
    pub steps: u64,
    /// Transactions this client committed.
    pub commits: u64,
    /// Transactions this client aborted and retried (lock conflicts).
    pub retries: u64,
    /// Milliseconds this client's thread spent blocked on object locks.
    pub lock_wait_ms: f64,
    /// Milliseconds spent parked in WAL group commit waiting for the
    /// log-writer thread to cover this client's ticket (pure queue
    /// wait; the physical force runs on the log-writer).
    pub commit_wait_ms: f64,
    /// Milliseconds this client's own thread spent *performing* a
    /// physical log force — nonzero only when a buffer-pool steal
    /// guard forced the log mid-transaction.
    pub commit_force_ms: f64,
    /// Milliseconds this client's thread spent blocked on heap metadata
    /// locks (object-table shards, segment placement state).
    pub heap_wait_ms: f64,
    /// Times this client's thread actually parked on a lock-manager
    /// shard condvar. Paired with `lock_wait_ms` it separates many
    /// short sleeps from few long ones.
    pub lock_condvar_waits: u64,
    /// Milliseconds this client spent waiting on (or rebuilding) the
    /// labbase material name index in `find_material`.
    pub name_index_wait_ms: f64,
}

/// Meter capturing a measurement interval.
pub struct Meter {
    start: Instant,
    proc0: ProcStat,
    stats0: StatsSnapshot,
}

impl Meter {
    /// Start measuring.
    pub fn start(stats: StatsSnapshot) -> Meter {
        Meter { start: Instant::now(), proc0: ProcStat::read(), stats0: stats }
    }

    /// Finish the interval and produce a row.
    #[allow(clippy::too_many_arguments)]
    pub fn finish(
        self,
        version: &str,
        interval: &str,
        stats: StatsSnapshot,
        size_bytes: Option<u64>,
        steps: u64,
        queries: u64,
        materials: u64,
    ) -> Result<ResourceRow> {
        let elapsed = self.start.elapsed().as_secs_f64();
        let proc = ProcStat::read().delta(&self.proc0);
        let d = stats.delta(&self.stats0);
        Ok(ResourceRow {
            version: version.to_string(),
            interval: interval.to_string(),
            elapsed_sec: elapsed,
            user_cpu_sec: proc.user_sec,
            sys_cpu_sec: proc.sys_sec,
            os_majflt: proc.majflt,
            sim_majflt: d.faults,
            page_reads: d.page_reads,
            page_writes: d.page_writes,
            size_bytes,
            steps,
            queries,
            materials,
            steps_per_sec: if elapsed > 0.0 { steps as f64 / elapsed } else { 0.0 },
            step_p50_us: 0.0,
            step_p99_us: 0.0,
            query_p99_us: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_proc_stat_line() {
        // A real-ish stat line with a parenthesized comm with spaces.
        let line = "1234 (my prog) S 1 1 1 0 -1 4194560 500 0 77 0 250 40 0 0 20 0 1 0 100 \
                    1000000 200 18446744073709551615 1 1 0 0 0 0 0 0 0 0 0 0 17 3 0 0 0 0 0";
        let p = ProcStat::parse(line).unwrap();
        assert_eq!(p.majflt, 77);
        assert!((p.user_sec - 2.5).abs() < 1e-9);
        assert!((p.sys_sec - 0.4).abs() < 1e-9);
    }

    #[test]
    fn read_does_not_panic_and_is_monotone() {
        let a = ProcStat::read();
        // Burn a little CPU.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = ProcStat::read();
        let d = b.delta(&a);
        assert!(d.user_sec >= 0.0 && d.sys_sec >= 0.0);
    }

    #[test]
    fn meter_produces_row() {
        let stats = StatsSnapshot::default();
        let m = Meter::start(stats);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let after = StatsSnapshot { faults: 10, page_reads: 8, ..Default::default() };
        let row = m.finish("OStore", "0.5X", after, Some(1024), 100, 50, 20).unwrap();
        assert_eq!(row.step_p99_us, 0.0, "latencies filled in by the runner");
        assert_eq!(row.version, "OStore");
        assert!(row.elapsed_sec > 0.0);
        assert_eq!(row.sim_majflt, 10);
        assert_eq!(row.page_reads, 8);
        assert!(row.steps_per_sec > 0.0);
        assert_eq!(row.size_bytes, Some(1024));
    }

    #[test]
    fn bad_stat_lines_are_rejected() {
        assert!(ProcStat::parse("garbage").is_none());
        assert!(ProcStat::parse("1 (x) R 1").is_none());
    }
}
