//! The LabFlow-1 workload generator: a discrete-event simulation of the
//! genome lab that produces the benchmark's stream of workflow steps and
//! interleaved tracking queries (paper Section 9).
//!
//! "We therefore need to provide a simple yet realistic sequence of
//! events, both to build the database and to serve as a workload." The
//! simulator ticks through lab days: clones arrive, batches of materials
//! are picked from their waiting states and processed by the Appendix-B
//! steps (with weighted success/failure/retry outcomes), transposition
//! spawns tclones, assemblies consume sequenced reads, and finished
//! clones are BLAST-searched. Unlike the TPC benchmarks' independent
//! debit/credit transactions, the stream is *history-driven*: what
//! happens next depends on the states materials are in.

use std::collections::HashMap;

use labbase::{LabBase, MaterialId, ValidTime, Value};
use labflow_workflow::{genome, CoInvolved, WorkflowEngine, WorkflowGraph};

use crate::config::BenchConfig;
use crate::datagen::DataGen;
use crate::error::{BenchError, Result};
use crate::hist::LatencyHist;

/// Progress counters for one simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCounters {
    /// Workflow step instances recorded.
    pub steps: u64,
    /// Interleaved queries answered.
    pub queries: u64,
    /// Clones injected so far.
    pub clones_injected: u64,
    /// Materials created (clones + tclones).
    pub materials: u64,
    /// Schema evolutions performed.
    pub evolutions: u64,
    /// Checkpoints requested.
    pub checkpoints: u64,
    /// Simulation ticks elapsed.
    pub ticks: u64,
}

/// The lab simulator. Owns the workflow graph, the RNG, and all
/// in-memory lab bookkeeping; drives a [`LabBase`] it does not own.
pub struct LabSim {
    cfg: BenchConfig,
    graph: WorkflowGraph,
    gen: DataGen,
    clock: ValidTime,
    counters: SimCounters,
    /// Every material ever created (query sampling pool).
    pool: Vec<MaterialId>,
    /// tclone -> parent clone.
    parent_of: HashMap<MaterialId, MaterialId>,
    /// clone -> tclones sequenced and waiting for incorporation.
    ready_reads: HashMap<MaterialId, Vec<MaterialId>>,
    /// clone -> tclones still being processed (not ready, not dead).
    in_flight: HashMap<MaterialId, usize>,
    /// Steps executed since the last evolution / checkpoint.
    since_evolution: usize,
    since_checkpoint: usize,
    /// Which step classes currently carry the evolved extra attribute.
    evolved: HashMap<String, bool>,
    name_counter: u64,
    /// Per-step-execution latency (since the last `take_latencies`).
    step_lat: LatencyHist,
    /// Per-query latency (since the last `take_latencies`).
    query_lat: LatencyHist,
}

impl LabSim {
    /// Create a simulator for `cfg` (deterministic in `cfg.seed`).
    pub fn new(cfg: BenchConfig) -> LabSim {
        LabSim {
            gen: DataGen::new(cfg.seed),
            cfg,
            graph: genome::genome_workflow(),
            clock: 0,
            counters: SimCounters::default(),
            pool: Vec::new(),
            parent_of: HashMap::new(),
            ready_reads: HashMap::new(),
            in_flight: HashMap::new(),
            since_evolution: 0,
            since_checkpoint: 0,
            evolved: HashMap::new(),
            name_counter: 0,
            step_lat: LatencyHist::new(),
            query_lat: LatencyHist::new(),
        }
    }

    /// Take and reset the step / query latency histograms (interval
    /// accounting in the runner).
    pub fn take_latencies(&mut self) -> (LatencyHist, LatencyHist) {
        (
            std::mem::take(&mut self.step_lat),
            std::mem::take(&mut self.query_lat),
        )
    }

    /// The workflow graph in use.
    pub fn graph(&self) -> &WorkflowGraph {
        &self.graph
    }

    /// Progress counters.
    pub fn counters(&self) -> SimCounters {
        self.counters
    }

    /// The simulated valid-time clock.
    pub fn clock(&self) -> ValidTime {
        self.clock
    }

    /// All materials created so far (query sampling pool).
    pub fn materials(&self) -> &[MaterialId] {
        &self.pool
    }

    /// Sample `n` materials uniformly (with replacement) from the pool.
    pub fn sample_materials(&mut self, n: usize) -> Vec<MaterialId> {
        if self.pool.is_empty() {
            return Vec::new();
        }
        (0..n).map(|_| self.pool[self.gen.index(self.pool.len())]).collect()
    }

    /// A uniform valid time within the simulated history.
    pub fn sample_time(&mut self) -> ValidTime {
        self.gen.int_in(0, self.clock.max(1))
    }

    /// Register the workflow schema in a fresh database.
    pub fn setup(&self, db: &LabBase) -> Result<()> {
        let engine = WorkflowEngine::new(&self.graph)?;
        let txn = db.begin()?;
        engine.setup(db, txn)?;
        db.commit(txn)?;
        Ok(())
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.name_counter += 1;
        format!("{prefix}-{:07}", self.name_counter)
    }

    /// Valid time for a new event: usually the clock, occasionally
    /// backdated (out-of-order entry, paper Section 7).
    fn event_time(&mut self) -> ValidTime {
        if self.gen.chance(self.cfg.out_of_order_rate) {
            (self.clock - self.gen.int_in(1, self.cfg.out_of_order_ticks)).max(0)
        } else {
            self.clock
        }
    }

    /// Run the simulation until `target` clones have been injected (the
    /// pipeline keeps flowing; it is not drained). Interval snapshots are
    /// taken between calls.
    pub fn run_until_clones(&mut self, db: &LabBase, target: u64) -> Result<()> {
        let graph = self.graph.clone();
        let engine = WorkflowEngine::new(&graph)?;
        while self.counters.clones_injected < target {
            self.tick(db, &engine, true)?;
        }
        Ok(())
    }

    /// Keep ticking without new arrivals until every clone is finished
    /// or `max_ticks` pass. Returns the number of unfinished clones.
    pub fn drain(&mut self, db: &LabBase, max_ticks: u64) -> Result<u64> {
        let graph = self.graph.clone();
        let engine = WorkflowEngine::new(&graph)?;
        for _ in 0..max_ticks {
            let busy = self.tick(db, &engine, false)?;
            if !busy {
                break;
            }
        }
        let mut unfinished = 0;
        for state in [
            genome::RECEIVED,
            genome::READY_FOR_TRANSPOSITION,
            genome::WAITING_FOR_ASSEMBLY,
            genome::WAITING_FOR_BLAST,
        ] {
            unfinished += db.count_in_state(state)? as u64;
        }
        Ok(unfinished)
    }

    /// One lab day. Returns whether any step was executed.
    fn tick(&mut self, db: &LabBase, engine: &WorkflowEngine<'_>, arrivals: bool) -> Result<bool> {
        self.clock += 1;
        self.counters.ticks += 1;
        let mut busy = false;

        if arrivals {
            let txn = db.begin()?;
            for _ in 0..self.cfg.arrivals_per_tick {
                let name = self.fresh_name("clone");
                let m = engine.inject(db, txn, "clone", &name, genome::RECEIVED, self.clock)?;
                self.pool.push(m);
                self.counters.clones_injected += 1;
                self.counters.materials += 1;
            }
            db.commit(txn)?;
            busy = true;
        }

        busy |= self.run_step_batch(db, engine, "prep_clone")?;
        busy |= self.run_transposition(db, engine)?;
        busy |= self.run_step_batch(db, engine, "associate_tclone")?;
        busy |= self.run_step_batch(db, engine, "prep_tclone")?;
        busy |= self.run_step_batch(db, engine, "determine_sequence")?;
        busy |= self.run_assembly(db, engine)?;
        busy |= self.run_step_batch(db, engine, "blast_search")?;
        Ok(busy)
    }

    /// Whether the step class currently carries the evolved attribute.
    fn has_evolved_attr(&self, db: &LabBase, step: &str) -> bool {
        db.with_catalog(|c| {
            c.step_class(step)
                .map(|sc| sc.current().attr("protocol_rev").is_some())
                .unwrap_or(false)
        })
    }

    /// Generate result attributes for one execution of `step`.
    fn attrs_for(&mut self, db: &LabBase, step: &str, parent: Option<MaterialId>) -> Vec<(String, Value)> {
        let mut attrs: Vec<(String, Value)> = match step {
            "prep_clone" => vec![
                ("concentration".into(), Value::Real(self.gen.int_in(20, 400) as f64)),
                ("volume_ul".into(), Value::Real(self.gen.int_in(10, 100) as f64)),
                ("operator".into(), Value::Str(self.gen.operator().into())),
            ],
            "transposon_insertion" => vec![
                ("transposon".into(), Value::Str(self.gen.transposon().into())),
                ("plate".into(), Value::Str(self.gen.plate())),
            ],
            "associate_tclone" => vec![
                (
                    "parent".into(),
                    parent.map(|p| Value::Ref(p.oid())).unwrap_or(Value::Null),
                ),
                ("well".into(), Value::Str(self.gen.well())),
            ],
            "prep_tclone" => vec![
                ("yield_ng".into(), Value::Real(self.gen.int_in(50, 900) as f64)),
                ("gel_lane".into(), Value::Int(self.gen.int_in(1, 16))),
            ],
            "determine_sequence" => vec![
                ("sequence".into(), Value::Dna(self.gen.read_sequence())),
                ("quality".into(), Value::Real(self.gen.quality())),
                (
                    "read_length".into(),
                    Value::Int(self.gen.int_in(300, 700)),
                ),
                ("machine".into(), Value::Str(self.gen.machine().into())),
            ],
            "assemble_sequence" => vec![
                ("sequence".into(), Value::Dna(self.gen.assembled_sequence())),
                ("coverage".into(), Value::Real(self.gen.int_in(20, 90) as f64 / 10.0)),
            ],
            "blast_search" => {
                let hits = self.gen.blast_hits();
                let top = DataGen::top_score(&hits);
                vec![
                    ("hits".into(), hits),
                    ("top_score".into(), Value::Real(top)),
                    ("db_version".into(), Value::Str(format!("GenBank-{}", 80 + self.clock / 500))),
                ]
            }
            _ => Vec::new(),
        };
        if self.has_evolved_attr(db, step) {
            attrs.push((
                "protocol_rev".into(),
                Value::Str(format!("rev-{}", self.counters.evolutions)),
            ));
        }
        attrs
    }

    /// After a step execution: bump counters, maybe evolve the schema or
    /// checkpoint, and run interleaved tracking queries.
    fn after_step(&mut self, db: &LabBase) -> Result<()> {
        self.counters.steps += 1;
        self.since_evolution += 1;
        self.since_checkpoint += 1;

        if self.cfg.evolution_every > 0 && self.since_evolution >= self.cfg.evolution_every {
            self.since_evolution = 0;
            self.evolve_schema(db)?;
        }
        if self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every {
            self.since_checkpoint = 0;
            db.checkpoint().map_err(BenchError::from)?;
            self.counters.checkpoints += 1;
        }
        let n = self.cfg.queries_per_step;
        let count = n.floor() as usize + usize::from(self.gen.chance(n.fract()));
        self.run_queries(db, count)?;
        Ok(())
    }

    /// Redefine a randomly chosen step class, toggling the
    /// `protocol_rev` attribute — the paper's constant re-engineering.
    fn evolve_schema(&mut self, db: &LabBase) -> Result<()> {
        let steps: Vec<String> = self.graph.steps.iter().map(|s| s.name.clone()).collect();
        let step = steps[self.gen.index(steps.len())].clone();
        let base = self
            .graph
            .step(&step)
            .ok_or_else(|| {
                BenchError::Config(format!("step class '{step}' missing from workflow graph"))
            })?
            .attrs
            .clone();
        let currently = self.evolved.get(&step).copied().unwrap_or(false);
        let mut attrs = base;
        attrs.push(labbase::schema::AttrDef {
            name: "outcome".into(),
            ty: labbase::AttrType::Str,
        });
        if !currently {
            attrs.push(labbase::schema::AttrDef {
                name: "protocol_rev".into(),
                ty: labbase::AttrType::Str,
            });
        }
        let txn = db.begin()?;
        db.redefine_step_class(txn, &step, attrs)?;
        db.commit(txn)?;
        self.evolved.insert(step, !currently);
        self.counters.evolutions += 1;
        Ok(())
    }

    /// The interleaved tracking-query mix (paper Section 8 families).
    fn run_queries(&mut self, db: &LabBase, count: usize) -> Result<()> {
        if self.pool.is_empty() {
            return Ok(());
        }
        for _ in 0..count {
            let m = self.pool[self.gen.index(self.pool.len())];
            let q0 = std::time::Instant::now();
            match self.gen.index(10) {
                // Most-recent lookup: the hottest query.
                0..=4 => {
                    let attr = ["sequence", "quality", "outcome"][self.gen.index(3)];
                    let _ = db.recent(m, attr)?;
                }
                // Tracking: where is the material, how deep is its history.
                5 | 6 => {
                    let _ = db.state_of(m)?;
                    let _ = db.history_len(m)?;
                }
                // Historical as-of query (walks history, touches steps).
                7 => {
                    let at = self.gen.int_in(0, self.clock.max(1));
                    let _ = db.as_of(m, "quality", at)?;
                }
                // Workflow monitoring: how long is a queue?
                8 => {
                    let states = [
                        genome::WAITING_FOR_SEQUENCING,
                        genome::WAITING_FOR_INCORPORATION,
                        genome::WAITING_FOR_ASSEMBLY,
                        genome::RECEIVED,
                    ];
                    let _ = db.count_in_state(states[self.gen.index(states.len())])?;
                }
                // Provenance: read the newest event's payload.
                _ => {
                    if let Some(entry) = db.history(m)?.first() {
                        let _ = db.step(entry.step)?;
                    }
                }
            }
            self.query_lat.record(q0.elapsed());
            self.counters.queries += 1;
        }
        Ok(())
    }

    /// Generic batch executor for per-material steps.
    fn run_step_batch(
        &mut self,
        db: &LabBase,
        engine: &WorkflowEngine<'_>,
        step: &str,
    ) -> Result<bool> {
        let batch = engine.pick_batch(db, step)?;
        if batch.is_empty() {
            return Ok(false);
        }
        let txn = db.begin()?;
        for m in &batch {
            let outcome = {
                let sample = self.gen.unit();
                engine.choose_outcome(step, sample)?.to_string()
            };
            let parent = self.parent_of.get(m).copied();
            let attrs = self.attrs_for(db, step, parent);
            let vt = self.event_time();
            // associate_tclone co-involves the parent clone (the
            // `involves` relationship the paper names).
            let co: Vec<CoInvolved> = if step == "associate_tclone" {
                parent
                    .map(|p| vec![CoInvolved { material: p, to_state: None }])
                    .unwrap_or_default()
            } else {
                Vec::new()
            };
            let s0 = std::time::Instant::now();
            engine.execute(db, txn, step, &[*m], &outcome, attrs, &co, vt)?;
            self.step_lat.record(s0.elapsed());
            // Track each tclone's fate so assembly knows when a clone has
            // no more reads coming.
            if let Some(p) = parent {
                match (step, outcome.as_str()) {
                    ("determine_sequence", "ok") => {
                        self.ready_reads.entry(p).or_default().push(*m);
                        self.dec_in_flight(p);
                    }
                    ("determine_sequence", "off_target") | ("prep_tclone", "fail") => {
                        self.dec_in_flight(p);
                    }
                    _ => {}
                }
            }
        }
        db.commit(txn)?;
        for _ in &batch {
            self.after_step(db)?;
        }
        Ok(true)
    }

    /// transposon_insertion: per clone, spawning tclones.
    fn run_transposition(&mut self, db: &LabBase, engine: &WorkflowEngine<'_>) -> Result<bool> {
        let batch = engine.pick_batch(db, "transposon_insertion")?;
        if batch.is_empty() {
            return Ok(false);
        }
        let spawn = self
            .graph
            .step("transposon_insertion")
            .and_then(|s| s.spawns.clone())
            .ok_or_else(|| {
                BenchError::Config("transposon_insertion step defines no spawns".into())
            })?;
        let txn = db.begin()?;
        for clone in &batch {
            let attrs = self.attrs_for(db, "transposon_insertion", None);
            let vt = self.event_time();
            engine.execute(db, txn, "transposon_insertion", &[*clone], "ok", attrs, &[], vt)?;
            let n = self.gen.int_in(spawn.min as i64, spawn.max as i64) as usize;
            for _ in 0..n {
                let name = self.fresh_name("tclone");
                let tc = engine.inject(db, txn, &spawn.class, &name, &spawn.initial, vt)?;
                self.pool.push(tc);
                self.parent_of.insert(tc, *clone);
                *self.in_flight.entry(*clone).or_default() += 1;
                self.counters.materials += 1;
            }
        }
        db.commit(txn)?;
        for _ in &batch {
            self.after_step(db)?;
        }
        Ok(true)
    }

    fn dec_in_flight(&mut self, clone: MaterialId) {
        if let Some(n) = self.in_flight.get_mut(&clone) {
            *n = n.saturating_sub(1);
        }
    }

    /// assemble_sequence: per clone with enough sequenced reads; the
    /// reads are co-involved and incorporated. Incomplete assemblies
    /// trigger picking a few more tclones (the lab's rework loop).
    fn run_assembly(&mut self, db: &LabBase, engine: &WorkflowEngine<'_>) -> Result<bool> {
        let candidates = engine.pick_batch(db, "assemble_sequence")?;
        let mut ready: Vec<MaterialId> = Vec::new();
        let mut starved: Vec<MaterialId> = Vec::new();
        for c in candidates {
            let have = self.ready_reads.get(&c).map(|r| r.len()).unwrap_or(0);
            let flying = self.in_flight.get(&c).copied().unwrap_or(0);
            if have >= self.cfg.reads_per_assembly {
                ready.push(c);
            } else if flying == 0 {
                // No more reads will arrive on their own.
                if have >= 1 {
                    ready.push(c); // assemble with what we have
                } else {
                    starved.push(c); // pick more subclones
                }
            }
        }
        if ready.is_empty() && starved.is_empty() {
            return Ok(false);
        }
        if !starved.is_empty() {
            let txn = db.begin()?;
            for clone in &starved {
                let vt = self.clock;
                for _ in 0..self.cfg.reads_per_assembly.div_ceil(2).max(2) {
                    let name = self.fresh_name("tclone");
                    let tc = engine.inject(db, txn, "tclone", &name, genome::PICKED, vt)?;
                    self.pool.push(tc);
                    self.parent_of.insert(tc, *clone);
                    *self.in_flight.entry(*clone).or_default() += 1;
                    self.counters.materials += 1;
                }
            }
            db.commit(txn)?;
        }
        if ready.is_empty() {
            return Ok(true);
        }
        let txn = db.begin()?;
        for clone in &ready {
            let reads = self.ready_reads.remove(clone).unwrap_or_default();
            let outcome = {
                let sample = self.gen.unit();
                engine.choose_outcome("assemble_sequence", sample)?.to_string()
            };
            let mut attrs = self.attrs_for(db, "assemble_sequence", None);
            attrs.push(("n_reads".into(), Value::Int(reads.len() as i64)));
            let co: Vec<CoInvolved> = reads
                .iter()
                .map(|&tc| CoInvolved {
                    material: tc,
                    to_state: Some(genome::INCORPORATED.into()),
                })
                .collect();
            let vt = self.event_time();
            engine.execute(db, txn, "assemble_sequence", &[*clone], &outcome, attrs, &co, vt)?;
            if outcome == "incomplete" {
                // Pick more subclones to finish the job.
                for _ in 0..self.cfg.reads_per_assembly.div_ceil(2) {
                    let name = self.fresh_name("tclone");
                    let tc = engine.inject(db, txn, "tclone", &name, genome::PICKED, vt)?;
                    self.pool.push(tc);
                    self.parent_of.insert(tc, *clone);
                    *self.in_flight.entry(*clone).or_default() += 1;
                    self.counters.materials += 1;
                }
            }
        }
        db.commit(txn)?;
        for _ in &ready {
            self.after_step(db)?;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerVersion;

    fn sim_db() -> (LabSim, LabBase) {
        let cfg = BenchConfig::smoke();
        let store = ServerVersion::OStoreMm
            .make_store(&std::env::temp_dir().join("unused"), 64)
            .unwrap();
        let db = LabBase::create(store).unwrap();
        let sim = LabSim::new(cfg);
        sim.setup(&db).unwrap();
        (sim, db)
    }

    #[test]
    fn smoke_run_injects_and_processes() {
        let (mut sim, db) = sim_db();
        sim.run_until_clones(&db, 8).unwrap();
        let c = sim.counters();
        assert_eq!(c.clones_injected, 8);
        assert!(c.steps > 8, "steps executed: {}", c.steps);
        assert!(c.materials > 8, "tclones spawned");
        assert!(c.queries > 0, "queries interleaved");
        assert_eq!(db.count_class("clone", false).unwrap(), 8);
        assert!(db.count_class("tclone", false).unwrap() > 0);
    }

    #[test]
    fn drain_finishes_every_clone() {
        let (mut sim, db) = sim_db();
        sim.run_until_clones(&db, 6).unwrap();
        let unfinished = sim.drain(&db, 10_000).unwrap();
        assert_eq!(unfinished, 0, "all clones should reach a terminal state");
        assert_eq!(
            db.count_in_state(genome::FINISHED).unwrap() as u64,
            sim.counters().clones_injected,
            "every clone finished"
        );
        // Finished clones have assembled sequences and BLAST hits.
        let finished = db.in_state(genome::FINISHED, 10).unwrap();
        for c in finished {
            assert!(db.recent(c, "sequence").unwrap().is_some());
            assert!(db.recent(c, "hits").unwrap().is_some());
            assert!(db.history_len(c).unwrap() >= 5);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed: u64| {
            let cfg = BenchConfig { seed, ..BenchConfig::smoke() };
            let store = ServerVersion::OStoreMm
                .make_store(&std::env::temp_dir().join("unused"), 64)
                .unwrap();
            let db = LabBase::create(store).unwrap();
            let mut sim = LabSim::new(cfg);
            sim.setup(&db).unwrap();
            sim.run_until_clones(&db, 5).unwrap();
            let c = sim.counters();
            (c.steps, c.materials, c.queries, db.stats().allocs)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn evolution_happens_and_old_steps_keep_versions() {
        let cfg = BenchConfig { evolution_every: 20, ..BenchConfig::smoke() };
        let store = ServerVersion::OStoreMm
            .make_store(&std::env::temp_dir().join("unused"), 64)
            .unwrap();
        let db = LabBase::create(store).unwrap();
        let mut sim = LabSim::new(cfg);
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, 8).unwrap();
        assert!(sim.counters().evolutions > 0, "schema evolved during the run");
        // At least one step class has multiple versions now.
        let multi = db.with_catalog(|c| {
            c.step_classes().iter().any(|sc| sc.versions.len() > 1)
        });
        assert!(multi);
    }

    #[test]
    fn out_of_order_arrivals_keep_histories_sorted() {
        let cfg = BenchConfig { out_of_order_rate: 0.5, ..BenchConfig::smoke() };
        let store = ServerVersion::OStoreMm
            .make_store(&std::env::temp_dir().join("unused"), 64)
            .unwrap();
        let db = LabBase::create(store).unwrap();
        let mut sim = LabSim::new(cfg);
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, 6).unwrap();
        // Every material's history must be newest-first by valid time.
        for &m in sim.materials() {
            let h = db.history(m).unwrap();
            for w in h.windows(2) {
                assert!(w[0].valid_time >= w[1].valid_time, "history out of order");
            }
        }
    }

    #[test]
    fn recent_cache_agrees_with_derivation_after_full_run() {
        let (mut sim, db) = sim_db();
        sim.run_until_clones(&db, 6).unwrap();
        sim.drain(&db, 10_000).unwrap();
        for &m in sim.materials().iter().take(60) {
            for attr in ["sequence", "quality", "outcome"] {
                let cached = db.recent(m, attr).unwrap();
                let derived = db.recent_uncached(m, attr).unwrap();
                match (cached, derived) {
                    (Some(a), Some(b)) => {
                        assert_eq!(a.value, b.value, "cache/derivation disagree on {attr}");
                        assert_eq!(a.valid_time, b.valid_time);
                    }
                    (None, None) => {}
                    (a, b) => panic!("presence mismatch for {attr}: {a:?} vs {b:?}"),
                }
            }
        }
    }
}
