//! The experiment registry: one entry per table and figure of the paper
//! (plus the ablation), as indexed in DESIGN.md and EXPERIMENTS.md.
//!
//! Each experiment renders a human-readable artifact (the table/figure
//! text) and a machine-readable JSON blob for EXPERIMENTS.md bookkeeping.

use std::path::Path;

use serde_json::json;

use crate::config::{BenchConfig, ServerVersion};
use crate::error::{BenchError, Result};
use crate::report;
use crate::runner;

/// A rendered experiment.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id (DESIGN.md index).
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// The rendered table/figure.
    pub text: String,
    /// Machine-readable results.
    pub json: serde_json::Value,
}

/// All experiment ids, in DESIGN.md order.
pub const ALL_IDS: [&str; 15] = [
    "fig1-schema",
    "tab1-storage-schema",
    "figB-workflow-graph",
    "tab-build",
    "fig-throughput",
    "tab-query-mix",
    "tab-evolution",
    "abl-clustering",
    "abl-concurrency",
    "abl-recovery",
    "abl-multiclient",
    "abl-scrub",
    "abl-snapshot",
    "abl-server",
    "abl-replication",
];

/// Client counts swept by `abl-multiclient`.
pub const MULTICLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Writer clients driven against the analytical scanner in
/// `abl-snapshot`.
pub const SNAPSHOT_WRITERS: usize = 4;

/// Client connections swept by `abl-server` over loopback.
pub const SERVER_CLIENTS: [usize; 4] = [1, 4, 16, 64];

/// Follower counts swept by `abl-replication`.
pub const REPLICATION_FOLLOWERS: [usize; 3] = [1, 2, 4];

/// The build intervals of the Section-10 tables.
pub const BUILD_INTERVALS: [f64; 4] = [0.5, 1.0, 1.5, 2.0];

/// Run one experiment by id. `work_dir` receives the store directories.
pub fn run(id: &str, cfg: &BenchConfig, work_dir: &Path) -> Result<ExperimentReport> {
    match id {
        "fig1-schema" => Ok(ExperimentReport {
            id: "fig1-schema",
            title: "Figure 1: two-level EER schema",
            text: report::fig1_schema(),
            json: json!({"structural": true}),
        }),
        "tab1-storage-schema" => Ok(ExperimentReport {
            id: "tab1-storage-schema",
            title: "Table 1: fixed storage schema",
            text: report::table1_storage_schema(),
            json: json!({"structural": true}),
        }),
        "figB-workflow-graph" => {
            let graph = labflow_workflow::genome::genome_workflow();
            let problems = graph.validate();
            if !problems.is_empty() {
                return Err(BenchError::Config(format!("graph invalid: {problems:?}")));
            }
            let text = graph.render();
            Ok(ExperimentReport {
                id: "figB-workflow-graph",
                title: "Appendix B: the genome-mapping workflow graph",
                json: json!({
                    "classes": graph.classes.len(),
                    "states": graph.states.len(),
                    "steps": graph.steps.len(),
                }),
                text,
            })
        }
        "tab-build" => {
            let results =
                runner::run_build_all(&ServerVersion::ALL, cfg, &BUILD_INTERVALS, work_dir)?;
            let text = report::build_table(&results);
            let json =
                serde_json::to_value(&results).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "tab-build",
                title: "Section 10: database build, all intervals × all server versions",
                text,
                json,
            })
        }
        "fig-throughput" => {
            let results =
                runner::run_build_all(&ServerVersion::ALL, cfg, &BUILD_INTERVALS, work_dir)?;
            let text = report::throughput_figure(&results);
            let json =
                serde_json::to_value(&results).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "fig-throughput",
                title: "Throughput vs database size (the locality crossover)",
                text,
                json,
            })
        }
        "tab-query-mix" => {
            let mut all = Vec::new();
            for v in ServerVersion::ALL {
                all.extend(runner::run_query_mix(v, cfg, work_dir)?);
            }
            let text = report::query_table(&all);
            let json = serde_json::to_value(&all).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "tab-query-mix",
                title: "Section 8 query families, timed per server version",
                text,
                json,
            })
        }
        "tab-evolution" => {
            let mut all = Vec::new();
            for v in ServerVersion::ALL {
                all.push(runner::run_evolution(v, cfg, work_dir, 50)?);
            }
            let text = report::evolution_table(&all);
            let json = serde_json::to_value(&all).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "tab-evolution",
                title: "Section 8.1: schema evolution mid-stream",
                text,
                json,
            })
        }
        "abl-clustering" => {
            // Pool sweep: ~6%, 12%, 25%, 50%, 100% of the default pool.
            let pools: Vec<usize> = [16, 8, 4, 2, 1]
                .iter()
                .map(|d| (cfg.buffer_pages / d).max(8))
                .collect();
            let points = runner::run_clustering(cfg, &pools, 400, work_dir)?;
            let text = report::clustering_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-clustering",
                title: "Ablation: clustering control vs cache size",
                text,
                json,
            })
        }
        "abl-concurrency" => {
            let points = runner::run_concurrency(cfg, &[0, 2, 4], work_dir)?;
            let text = report::concurrency_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-concurrency",
                title: "Ablation: concurrent readers during the build",
                text,
                json,
            })
        }
        "abl-recovery" => {
            let points = runner::run_recovery(cfg, work_dir)?;
            let text = report::recovery_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-recovery",
                title: "Ablation: crash recovery per durability design",
                text,
                json,
            })
        }
        "abl-scrub" => {
            let points = runner::run_scrub(cfg, work_dir)?;
            if let Some(bad) = points.iter().find(|p| !p.clean) {
                return Err(BenchError::Config(format!(
                    "scrub found unquarantined damage in the recovered {} image",
                    bad.version
                )));
            }
            let text = report::scrub_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-scrub",
                title: "Ablation: offline scrub of a recovered store image",
                text,
                json,
            })
        }
        "abl-multiclient" => {
            let points = runner::run_multiclient(cfg, &MULTICLIENT_COUNTS, work_dir)?;
            let text = report::multiclient_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-multiclient",
                title: "Ablation: multi-writer clients with WAL group commit",
                text,
                json,
            })
        }
        "abl-snapshot" => {
            let points = runner::run_snapshot(cfg, SNAPSHOT_WRITERS, work_dir)?;
            let text = report::snapshot_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-snapshot",
                title: "Ablation: snapshot scans vs writer throughput (MVCC read path)",
                text,
                json,
            })
        }
        "abl-server" => {
            let result = runner::run_server(cfg, &SERVER_CLIENTS, work_dir)?;
            let text = report::server_table(&result);
            let json =
                serde_json::to_value(&result).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-server",
                title: "Ablation: networked front end — closed-loop tails and admission control",
                text,
                json,
            })
        }
        "abl-replication" => {
            let points = runner::run_replication(cfg, &REPLICATION_FOLLOWERS, work_dir)?;
            let text = report::replication_table(&points);
            let json =
                serde_json::to_value(&points).map_err(|e| BenchError::Config(e.to_string()))?;
            Ok(ExperimentReport {
                id: "abl-replication",
                title: "Ablation: WAL-shipping replication — apply lag and ack-quorum commits",
                text,
                json,
            })
        }
        other => Err(BenchError::Config(format!(
            "unknown experiment '{other}'; known: {}",
            ALL_IDS.join(", ")
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_experiments_run_instantly() {
        let cfg = BenchConfig::smoke();
        let dir = std::env::temp_dir();
        for id in ["fig1-schema", "tab1-storage-schema", "figB-workflow-graph"] {
            let r = run(id, &cfg, &dir).unwrap();
            assert_eq!(r.id, id);
            assert!(!r.text.is_empty());
        }
    }

    #[test]
    fn unknown_id_is_an_error() {
        let cfg = BenchConfig::smoke();
        assert!(run("tab-nope", &cfg, &std::env::temp_dir()).is_err());
    }

    #[test]
    fn ids_list_is_consistent() {
        assert_eq!(ALL_IDS.len(), 15);
        let cfg = BenchConfig::smoke();
        // Every listed id is at least recognized (structural ones run;
        // the heavy ones are exercised by integration tests / harness).
        for id in ALL_IDS {
            if id.starts_with("fig1") || id.starts_with("tab1") || id.starts_with("figB") {
                assert!(run(id, &cfg, &std::env::temp_dir()).is_ok());
            }
        }
    }
}
