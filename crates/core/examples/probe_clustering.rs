//! Calibration probe for the clustering ablation: prints steady-state
//! fault rates per backend at a few (scale, pool) points. Used while
//! tuning `abl-clustering`'s pool sweep; kept as a diagnostic.
use labflow_core::{runner, BenchConfig};

fn main() {
    for (clones, pool, sample) in [(100usize, 32usize, 3000usize), (100, 96, 3000), (100, 320, 3000), (200, 96, 3000)] {
        let cfg = BenchConfig {
            base_clones: clones,
            buffer_pages: 1024, // build pool (big); read pools swept below
            ..BenchConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("probe-clust-{clones}-{pool}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let points = runner::run_clustering(&cfg, &[pool], sample, &dir).unwrap();
        println!("clones={clones} pool={pool} lookups={sample}");
        for p in &points {
            println!("  {:<10} faults/1k={:>8.1}  total_faults={:>7}",
                p.version, p.faults_per_k, p.sim_faults);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
