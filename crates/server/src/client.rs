//! A blocking client for the labflow wire protocol.
//!
//! One [`Client`] wraps one connection and issues one request at a
//! time; request ids are checked against response ids so a desynced
//! stream surfaces as a typed [`ClientError::Protocol`] instead of
//! silently mismatched answers. Shed responses surface as
//! [`ClientError::Overloaded`] (back off) and transient contention as
//! [`ClientError::Retry`] (reissue), so closed-loop drivers can
//! implement honest retry policies.
//!
//! Two opt-in resilience layers sit on top of the raw call:
//!
//! * a [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   deterministic jitter, honoring the server's `retry_after_ms` hint
//!   on [`ClientError::Overloaded`]; and
//! * a single transparent reconnect, applied only to idempotent
//!   read-side requests (ping, lookups, replication pulls) and never
//!   while a transaction is open on the connection — a dropped socket
//!   mid-transaction must surface, because the server will abort the
//!   orphaned session and silently reissuing writes could double-apply.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use labbase::Value;

use crate::proto::{Request, Response};
use crate::tenant::AdmissionSnapshot;
use crate::wire::{self, Event, Frame, WireError, PROTO_V1};

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// A frame-layer fault (includes I/O).
    Wire(WireError),
    /// The server reported a database error.
    Server {
        /// One of the `proto::EC_*` codes.
        code: u16,
        /// Rendered message.
        message: String,
    },
    /// Transient contention; reissue the request (or the transaction).
    Retry {
        /// What collided.
        reason: String,
    },
    /// Admission control shed the request.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after_ms: u32,
    },
    /// The response did not match the request (wrong id or wrong
    /// payload shape).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Retry { reason } => write!(f, "retry: {reason}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Client-side result alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// Opt-in retry policy for [`Client::call`]: bounded attempts with
/// exponential backoff and deterministic jitter. `Overloaded` responses
/// are always retried up to the attempt cap, sleeping at least the
/// server's `retry_after_ms` hint; `Retry` responses are retried only
/// outside a transaction (inside one, the whole transaction must be
/// reissued by the caller, so the typed error is returned as-is).
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts per call, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles on each further retry.
    pub base_backoff: Duration,
    /// Ceiling on the exponential portion of the backoff (the server's
    /// `retry_after_ms` hint is honored even above this).
    pub max_backoff: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

/// The primary's replication status as returned by
/// [`Client::repl_status`].
#[derive(Debug)]
pub struct ReplStatus {
    /// The server store's current epoch.
    pub epoch: u64,
    /// The flushed WAL offset followers can stream up to.
    pub lsn: u64,
    /// `(follower id, highest durably acked offset)` per subscriber,
    /// sorted by follower id.
    pub followers: Vec<(u64, u64)>,
}

/// A shipped WAL chunk as returned by [`Client::repl_subscribe`].
#[derive(Debug)]
pub struct ShippedChunk {
    /// The primary's store epoch when the chunk was cut.
    pub epoch: u64,
    /// WAL offset of the chunk's first byte.
    pub start: u64,
    /// WAL offset one past the chunk's last byte (`start == end` means
    /// the follower is caught up).
    pub end: u64,
    /// Raw frame bytes; the follower verifies them with
    /// `decode_shipped` before applying anything.
    pub bytes: Vec<u8>,
}

/// One blocking connection to a labflow server.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    tenant: u32,
    next_id: u64,
    retry: Option<RetryPolicy>,
    jitter: u64,
    in_txn: bool,
}

impl Client {
    /// Connect to `addr`, billing all requests to `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: u32) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        let addr = stream.peer_addr().map_err(WireError::Io)?;
        Self::configure(&stream)?;
        Ok(Client {
            stream,
            addr,
            tenant,
            next_id: 1,
            retry: None,
            jitter: 1,
            in_txn: false,
        })
    }

    fn configure(stream: &TcpStream) -> ClientResult<()> {
        stream.set_nodelay(true).map_err(WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(WireError::Io)?;
        stream
            .set_write_timeout(Some(Duration::from_millis(50)))
            .map_err(WireError::Io)?;
        Ok(())
    }

    /// The tenant id this client bills to.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Install a retry policy; `None` restores fail-fast behaviour.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        // A zero xorshift seed would stick at zero; force it odd.
        self.jitter = policy.as_ref().map_or(1, |p| p.jitter_seed | 1);
        self.retry = policy;
    }

    /// Whether this connection believes it has a transaction open.
    pub fn in_txn(&self) -> bool {
        self.in_txn
    }

    /// Issue one request and wait for its response, applying the
    /// reconnect and retry layers described in the module docs.
    pub fn call(&mut self, req: &Request) -> ClientResult<Response> {
        let mut attempts = 0u32;
        let mut reconnected = false;
        loop {
            attempts += 1;
            let result = self.call_once(req);
            match &result {
                // One transparent reconnect, for idempotent requests
                // only, and never while a transaction is open.
                Err(ClientError::Wire(_))
                    if !reconnected && !self.in_txn && is_idempotent(req) =>
                {
                    reconnected = true;
                    if self.reconnect().is_ok() {
                        continue;
                    }
                }
                Err(ClientError::Overloaded { retry_after_ms })
                    if self.should_retry(attempts) =>
                {
                    let hint = Duration::from_millis(u64::from(*retry_after_ms));
                    self.backoff_sleep(attempts, hint);
                    continue;
                }
                Err(ClientError::Retry { .. })
                    if !self.in_txn && self.should_retry(attempts) =>
                {
                    self.backoff_sleep(attempts, Duration::ZERO);
                    continue;
                }
                _ => {}
            }
            self.note_txn_edge(req, &result);
            return result;
        }
    }

    /// Track transaction state from request/response edges so the
    /// reconnect layer knows when reissuing is unsafe.
    fn note_txn_edge(&mut self, req: &Request, result: &ClientResult<Response>) {
        match req {
            Request::Begin => {
                if matches!(result, Ok(Response::Ok)) {
                    self.in_txn = true;
                }
            }
            Request::Commit | Request::Abort => match result {
                // The server closes the session on commit/abort whether
                // the call succeeds or fails with a database error; only
                // a shed (never dispatched) or a wire/protocol fault
                // leaves its state open or unknown.
                Ok(_)
                | Err(ClientError::Server { .. })
                | Err(ClientError::Retry { .. }) => self.in_txn = false,
                Err(ClientError::Overloaded { .. })
                | Err(ClientError::Wire(_))
                | Err(ClientError::Protocol(_)) => {}
            },
            _ => {}
        }
    }

    fn should_retry(&self, attempts: u32) -> bool {
        self.retry
            .as_ref()
            .is_some_and(|p| attempts < p.max_attempts.max(1))
    }

    /// Sleep before the next retry: the exponential backoff (capped at
    /// `max_backoff`) floored by the server's hint, plus up to 50%
    /// deterministic jitter so synchronized retriers spread out.
    fn backoff_sleep(&mut self, attempts: u32, hint: Duration) {
        let Some(policy) = &self.retry else { return };
        let shift = attempts.saturating_sub(1).min(16);
        let backoff = policy
            .base_backoff
            .saturating_mul(1u32 << shift)
            .min(policy.max_backoff);
        let wait = backoff.max(hint);
        let span = u64::try_from(wait.as_micros() / 2).unwrap_or(u64::MAX);
        let jitter =
            Duration::from_micros(if span == 0 { 0 } else { self.next_jitter() % span });
        std::thread::sleep(wait + jitter);
    }

    fn next_jitter(&mut self) -> u64 {
        let mut x = self.jitter;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.jitter = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Replace the dead socket with a fresh connection to the same
    /// address. Request ids keep counting up, so a straggling response
    /// from the old connection can never match a new request.
    fn reconnect(&mut self) -> ClientResult<()> {
        let stream = TcpStream::connect(self.addr).map_err(WireError::Io)?;
        Self::configure(&stream)?;
        self.stream = stream;
        Ok(())
    }

    /// Test hook: shut down the underlying socket without telling the
    /// client, simulating a connection dropped by the network.
    #[cfg(test)]
    pub(crate) fn sever(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }

    /// Issue one request on the current connection and wait for its
    /// response — no retries, no reconnects.
    fn call_once(&mut self, req: &Request) -> ClientResult<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame {
            version: PROTO_V1,
            code: req.opcode(),
            request_id: id,
            tenant: self.tenant,
            body: req.encode_body(),
        };
        let mut w = &self.stream;
        wire::write_frame(&mut w, &frame)?;
        // A request may legitimately take a while (big queries, lock
        // waits), but a server that never answers should not hang the
        // client forever: bound the idle wait at ~2 minutes.
        let mut idle_ticks = 0u32;
        loop {
            let mut r = &self.stream;
            match wire::read_event(&mut r)? {
                Event::Idle => {
                    idle_ticks += 1;
                    if idle_ticks > 2400 {
                        return Err(ClientError::Wire(WireError::Stalled));
                    }
                    continue;
                }
                Event::Frame(resp) => {
                    if resp.request_id != id && resp.request_id != 0 {
                        return Err(ClientError::Protocol(format!(
                            "response for request {} while waiting for {}",
                            resp.request_id, id
                        )));
                    }
                    return match Response::decode(resp.code, &resp.body)? {
                        Response::Error { code, message } => {
                            Err(ClientError::Server { code, message })
                        }
                        Response::Retry { reason } => Err(ClientError::Retry { reason }),
                        Response::Overloaded { retry_after_ms } => {
                            Err(ClientError::Overloaded { retry_after_ms })
                        }
                        ok => Ok(ok),
                    };
                }
            }
        }
    }

    fn expect_ok(&mut self, req: &Request) -> ClientResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Begin a transaction on this connection.
    pub fn begin(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Begin)
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Commit)
    }

    /// Abort the open transaction.
    pub fn abort(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Abort)
    }

    /// Create a material; returns its raw oid.
    pub fn create_material(
        &mut self,
        class: &str,
        name: &str,
        created: i64,
    ) -> ClientResult<u64> {
        let req = Request::CreateMaterial {
            class: class.into(),
            name: name.into(),
            created,
        };
        match self.call(&req)? {
            Response::Material(oid) => Ok(oid),
            other => Err(unexpected("Material", &other)),
        }
    }

    /// Record a workflow step; returns the step's raw oid.
    pub fn record_step(
        &mut self,
        class: &str,
        valid_time: i64,
        materials: &[u64],
        attrs: Vec<(String, Value)>,
    ) -> ClientResult<u64> {
        let req = Request::RecordStep {
            class: class.into(),
            valid_time,
            materials: materials.to_vec(),
            attrs,
        };
        match self.call(&req)? {
            Response::Step(oid) => Ok(oid),
            other => Err(unexpected("Step", &other)),
        }
    }

    /// Set a material's workflow state.
    pub fn set_state(&mut self, material: u64, state: &str, valid_time: i64) -> ClientResult<()> {
        self.expect_ok(&Request::SetState {
            material,
            state: state.into(),
            valid_time,
        })
    }

    /// Define a material class.
    pub fn define_material_class(
        &mut self,
        name: &str,
        parent: Option<&str>,
    ) -> ClientResult<()> {
        self.expect_ok(&Request::DefineMaterialClass {
            name: name.into(),
            parent: parent.map(str::to_string),
        })
    }

    /// Define a step class.
    pub fn define_step_class(
        &mut self,
        name: &str,
        attrs: &[(&str, labbase::AttrType)],
    ) -> ClientResult<()> {
        self.expect_ok(&Request::DefineStepClass {
            name: name.into(),
            attrs: attrs.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        })
    }

    /// Create a material set.
    pub fn create_set(&mut self, set: &str) -> ClientResult<()> {
        self.expect_ok(&Request::CreateSet { set: set.into() })
    }

    /// Add a material to a set.
    pub fn add_to_set(&mut self, set: &str, material: u64) -> ClientResult<()> {
        self.expect_ok(&Request::AddToSet { set: set.into(), material })
    }

    /// A material's workflow state.
    pub fn state_of(&mut self, material: u64) -> ClientResult<Option<String>> {
        match self.call(&Request::StateOf { material })? {
            Response::State(s) => Ok(s),
            other => Err(unexpected("State", &other)),
        }
    }

    /// Most-recent value of `attr`: `(value, valid_time, step oid)`.
    pub fn recent(
        &mut self,
        material: u64,
        attr: &str,
    ) -> ClientResult<Option<(Value, i64, u64)>> {
        match self.call(&Request::Recent { material, attr: attr.into() })? {
            Response::RecentValue(v) => Ok(v),
            other => Err(unexpected("RecentValue", &other)),
        }
    }

    /// A material's history as `(step oid, valid_time)`, newest first.
    pub fn history(&mut self, material: u64) -> ClientResult<Vec<(u64, i64)>> {
        match self.call(&Request::History { material })? {
            Response::History(h) => Ok(h),
            other => Err(unexpected("History", &other)),
        }
    }

    /// Look up a material by external name.
    pub fn find_material(&mut self, name: &str) -> ClientResult<Option<u64>> {
        match self.call(&Request::FindMaterial { name: name.into() })? {
            Response::MaybeMaterial(m) => Ok(m),
            other => Err(unexpected("MaybeMaterial", &other)),
        }
    }

    /// Count materials in a workflow state.
    pub fn count_in_state(&mut self, state: &str) -> ClientResult<u64> {
        match self.call(&Request::CountInState { state: state.into() })? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected("Count", &other)),
        }
    }

    /// Run an LQL query; rows are `(variable, rendered term)` pairs.
    pub fn query(&mut self, lql: &str) -> ClientResult<Vec<Vec<(String, String)>>> {
        match self.call(&Request::Query { lql: lql.into() })? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Fetch the server's admission counters.
    pub fn admission_stats(&mut self) -> ClientResult<AdmissionSnapshot> {
        match self.call(&Request::AdmissionStats)? {
            Response::Admission(snap) => Ok(snap),
            other => Err(unexpected("Admission", &other)),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Shutdown)
    }

    /// Pull a WAL chunk starting at offset `from` (the follower side of
    /// the replication pump). Registers `follower` in the primary's ack
    /// table on first use.
    pub fn repl_subscribe(
        &mut self,
        follower: u64,
        from: u64,
        max_bytes: u32,
    ) -> ClientResult<ShippedChunk> {
        match self.call(&Request::ReplSubscribe { follower, from, max_bytes })? {
            Response::ReplChunk { epoch, start, end, bytes } => {
                Ok(ShippedChunk { epoch, start, end, bytes })
            }
            other => Err(unexpected("ReplChunk", &other)),
        }
    }

    /// Report this follower's durably applied WAL offset to the primary.
    pub fn repl_ack(&mut self, follower: u64, lsn: u64) -> ClientResult<()> {
        self.expect_ok(&Request::ReplAck { follower, lsn })
    }

    /// The server's replication status: the store epoch, the flushed
    /// WAL offset, and every subscriber's acked offset.
    pub fn repl_status(&mut self) -> ClientResult<ReplStatus> {
        match self.call(&Request::ReplStatus)? {
            Response::ReplState { epoch, lsn, followers } => {
                Ok(ReplStatus { epoch, lsn, followers })
            }
            other => Err(unexpected("ReplState", &other)),
        }
    }

    /// Ask a follower server to promote itself to primary.
    pub fn repl_promote(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::ReplPromote)
    }
}

/// Requests the reconnect layer may transparently reissue: pure reads,
/// the liveness probe, and the replication pull/ack pair (pulls are
/// reads; acks are monotonic-max on the primary, so a duplicate is a
/// no-op). Everything that can mutate database state is excluded.
fn is_idempotent(req: &Request) -> bool {
    matches!(
        req,
        Request::Ping
            | Request::StateOf { .. }
            | Request::Recent { .. }
            | Request::History { .. }
            | Request::FindMaterial { .. }
            | Request::CountInState { .. }
            | Request::Query { .. }
            | Request::AdmissionStats
            | Request::ReplSubscribe { .. }
            | Request::ReplAck { .. }
            | Request::ReplStatus
    )
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
