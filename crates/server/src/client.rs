//! A blocking client for the labflow wire protocol.
//!
//! One [`Client`] wraps one connection and issues one request at a
//! time; request ids are checked against response ids so a desynced
//! stream surfaces as a typed [`ClientError::Protocol`] instead of
//! silently mismatched answers. Shed responses surface as
//! [`ClientError::Overloaded`] (back off) and transient contention as
//! [`ClientError::Retry`] (reissue), so closed-loop drivers can
//! implement honest retry policies.

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use labbase::Value;

use crate::proto::{Request, Response};
use crate::tenant::AdmissionSnapshot;
use crate::wire::{self, Event, Frame, WireError, PROTO_V1};

/// Errors surfaced by the client.
#[derive(Debug)]
pub enum ClientError {
    /// A frame-layer fault (includes I/O).
    Wire(WireError),
    /// The server reported a database error.
    Server {
        /// One of the `proto::EC_*` codes.
        code: u16,
        /// Rendered message.
        message: String,
    },
    /// Transient contention; reissue the request (or the transaction).
    Retry {
        /// What collided.
        reason: String,
    },
    /// Admission control shed the request.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after_ms: u32,
    },
    /// The response did not match the request (wrong id or wrong
    /// payload shape).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "wire: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Retry { reason } => write!(f, "retry: {reason}"),
            ClientError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// Client-side result alias.
pub type ClientResult<T> = Result<T, ClientError>;

/// One blocking connection to a labflow server.
pub struct Client {
    stream: TcpStream,
    tenant: u32,
    next_id: u64,
}

impl Client {
    /// Connect to `addr`, billing all requests to `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: u32) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr).map_err(WireError::Io)?;
        stream.set_nodelay(true).map_err(WireError::Io)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(WireError::Io)?;
        stream
            .set_write_timeout(Some(Duration::from_millis(50)))
            .map_err(WireError::Io)?;
        Ok(Client { stream, tenant, next_id: 1 })
    }

    /// The tenant id this client bills to.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// Issue one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> ClientResult<Response> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = Frame {
            version: PROTO_V1,
            code: req.opcode(),
            request_id: id,
            tenant: self.tenant,
            body: req.encode_body(),
        };
        let mut w = &self.stream;
        wire::write_frame(&mut w, &frame)?;
        // A request may legitimately take a while (big queries, lock
        // waits), but a server that never answers should not hang the
        // client forever: bound the idle wait at ~2 minutes.
        let mut idle_ticks = 0u32;
        loop {
            let mut r = &self.stream;
            match wire::read_event(&mut r)? {
                Event::Idle => {
                    idle_ticks += 1;
                    if idle_ticks > 2400 {
                        return Err(ClientError::Wire(WireError::Stalled));
                    }
                    continue;
                }
                Event::Frame(resp) => {
                    if resp.request_id != id && resp.request_id != 0 {
                        return Err(ClientError::Protocol(format!(
                            "response for request {} while waiting for {}",
                            resp.request_id, id
                        )));
                    }
                    return match Response::decode(resp.code, &resp.body)? {
                        Response::Error { code, message } => {
                            Err(ClientError::Server { code, message })
                        }
                        Response::Retry { reason } => Err(ClientError::Retry { reason }),
                        Response::Overloaded { retry_after_ms } => {
                            Err(ClientError::Overloaded { retry_after_ms })
                        }
                        ok => Ok(ok),
                    };
                }
            }
        }
    }

    fn expect_ok(&mut self, req: &Request) -> ClientResult<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            other => Err(unexpected("Ok", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> ClientResult<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Begin a transaction on this connection.
    pub fn begin(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Begin)
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Commit)
    }

    /// Abort the open transaction.
    pub fn abort(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Abort)
    }

    /// Create a material; returns its raw oid.
    pub fn create_material(
        &mut self,
        class: &str,
        name: &str,
        created: i64,
    ) -> ClientResult<u64> {
        let req = Request::CreateMaterial {
            class: class.into(),
            name: name.into(),
            created,
        };
        match self.call(&req)? {
            Response::Material(oid) => Ok(oid),
            other => Err(unexpected("Material", &other)),
        }
    }

    /// Record a workflow step; returns the step's raw oid.
    pub fn record_step(
        &mut self,
        class: &str,
        valid_time: i64,
        materials: &[u64],
        attrs: Vec<(String, Value)>,
    ) -> ClientResult<u64> {
        let req = Request::RecordStep {
            class: class.into(),
            valid_time,
            materials: materials.to_vec(),
            attrs,
        };
        match self.call(&req)? {
            Response::Step(oid) => Ok(oid),
            other => Err(unexpected("Step", &other)),
        }
    }

    /// Set a material's workflow state.
    pub fn set_state(&mut self, material: u64, state: &str, valid_time: i64) -> ClientResult<()> {
        self.expect_ok(&Request::SetState {
            material,
            state: state.into(),
            valid_time,
        })
    }

    /// Define a material class.
    pub fn define_material_class(
        &mut self,
        name: &str,
        parent: Option<&str>,
    ) -> ClientResult<()> {
        self.expect_ok(&Request::DefineMaterialClass {
            name: name.into(),
            parent: parent.map(str::to_string),
        })
    }

    /// Define a step class.
    pub fn define_step_class(
        &mut self,
        name: &str,
        attrs: &[(&str, labbase::AttrType)],
    ) -> ClientResult<()> {
        self.expect_ok(&Request::DefineStepClass {
            name: name.into(),
            attrs: attrs.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        })
    }

    /// Create a material set.
    pub fn create_set(&mut self, set: &str) -> ClientResult<()> {
        self.expect_ok(&Request::CreateSet { set: set.into() })
    }

    /// Add a material to a set.
    pub fn add_to_set(&mut self, set: &str, material: u64) -> ClientResult<()> {
        self.expect_ok(&Request::AddToSet { set: set.into(), material })
    }

    /// A material's workflow state.
    pub fn state_of(&mut self, material: u64) -> ClientResult<Option<String>> {
        match self.call(&Request::StateOf { material })? {
            Response::State(s) => Ok(s),
            other => Err(unexpected("State", &other)),
        }
    }

    /// Most-recent value of `attr`: `(value, valid_time, step oid)`.
    pub fn recent(
        &mut self,
        material: u64,
        attr: &str,
    ) -> ClientResult<Option<(Value, i64, u64)>> {
        match self.call(&Request::Recent { material, attr: attr.into() })? {
            Response::RecentValue(v) => Ok(v),
            other => Err(unexpected("RecentValue", &other)),
        }
    }

    /// A material's history as `(step oid, valid_time)`, newest first.
    pub fn history(&mut self, material: u64) -> ClientResult<Vec<(u64, i64)>> {
        match self.call(&Request::History { material })? {
            Response::History(h) => Ok(h),
            other => Err(unexpected("History", &other)),
        }
    }

    /// Look up a material by external name.
    pub fn find_material(&mut self, name: &str) -> ClientResult<Option<u64>> {
        match self.call(&Request::FindMaterial { name: name.into() })? {
            Response::MaybeMaterial(m) => Ok(m),
            other => Err(unexpected("MaybeMaterial", &other)),
        }
    }

    /// Count materials in a workflow state.
    pub fn count_in_state(&mut self, state: &str) -> ClientResult<u64> {
        match self.call(&Request::CountInState { state: state.into() })? {
            Response::Count(n) => Ok(n),
            other => Err(unexpected("Count", &other)),
        }
    }

    /// Run an LQL query; rows are `(variable, rendered term)` pairs.
    pub fn query(&mut self, lql: &str) -> ClientResult<Vec<Vec<(String, String)>>> {
        match self.call(&Request::Query { lql: lql.into() })? {
            Response::Rows(rows) => Ok(rows),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Fetch the server's admission counters.
    pub fn admission_stats(&mut self) -> ClientResult<AdmissionSnapshot> {
        match self.call(&Request::AdmissionStats)? {
            Response::Admission(snap) => Ok(snap),
            other => Err(unexpected("Admission", &other)),
        }
    }

    /// Ask the server to drain and exit.
    pub fn shutdown_server(&mut self) -> ClientResult<()> {
        self.expect_ok(&Request::Shutdown)
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
