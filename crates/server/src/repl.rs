//! Primary-side replication bookkeeping.
//!
//! The primary does not push: followers pull WAL chunks with
//! `ReplSubscribe` and report durably applied offsets with `ReplAck`.
//! All the primary keeps is this ack table — follower id → highest
//! acked WAL offset — plus a condvar so commit handlers can wait for a
//! configured ack quorum ([`ServerConfig::ack_quorum`]) before
//! answering the client.
//!
//! The table is a leaf latch at rank [`lock_order::REPL_ACKS`], held
//! with the same explicit-token pattern as the WAL's group-commit state
//! (the guard is consumed and re-produced by the condvar wait, so the
//! rank token lives alongside it). It is never held across a storage or
//! socket call.
//!
//! [`ServerConfig::ack_quorum`]: crate::server::ServerConfig::ack_quorum

use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use labflow_storage::lock_order;

/// Per-follower acked LSNs plus the quorum condvar.
pub(crate) struct AckTable {
    acks: Mutex<HashMap<u64, u64>>,
    cv: Condvar,
}

impl AckTable {
    pub(crate) fn new() -> AckTable {
        AckTable { acks: Mutex::new(HashMap::new()), cv: Condvar::new() }
    }

    /// Register `follower` in the table (first subscribe), so status
    /// reports list it even before its first ack.
    pub(crate) fn subscribe(&self, follower: u64) {
        let _rank = lock_order::acquire(lock_order::REPL_ACKS);
        let mut g = self.acks.lock().unwrap_or_else(|e| e.into_inner());
        g.entry(follower).or_insert(0);
    }

    /// Record that `follower` has durably applied the WAL up to `lsn`.
    /// Acks only move forward: a stale or reordered ack never lowers
    /// the recorded offset.
    pub(crate) fn ack(&self, follower: u64, lsn: u64) {
        {
            let _rank = lock_order::acquire(lock_order::REPL_ACKS);
            let mut g = self.acks.lock().unwrap_or_else(|e| e.into_inner());
            let at = g.entry(follower).or_insert(0);
            *at = (*at).max(lsn);
        }
        self.cv.notify_all();
    }

    /// A point-in-time copy of the table, sorted by follower id.
    pub(crate) fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> = {
            let _rank = lock_order::acquire(lock_order::REPL_ACKS);
            let g = self.acks.lock().unwrap_or_else(|e| e.into_inner());
            g.iter().map(|(f, a)| (*f, *a)).collect()
        };
        rows.sort_unstable();
        rows
    }

    /// Block until at least `quorum` followers have acked `lsn` or
    /// `timeout` elapses; returns whether the quorum was reached. The
    /// commit this waits for is already durable locally — a timeout
    /// means replication lag, not data loss, and is reported as such.
    pub(crate) fn wait_quorum(&self, lsn: u64, quorum: u32, timeout: Duration) -> bool {
        let _rank = lock_order::acquire(lock_order::REPL_ACKS);
        let mut g = self.acks.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = Instant::now() + timeout;
        loop {
            let reached = g.values().filter(|acked| **acked >= lsn).count() as u32;
            if reached >= quorum {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (ng, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acks_never_move_backwards() {
        let t = AckTable::new();
        t.ack(1, 100);
        t.ack(1, 40); // reordered stale ack
        assert_eq!(t.snapshot(), vec![(1, 100)]);
    }

    #[test]
    fn subscribe_registers_at_zero() {
        let t = AckTable::new();
        t.subscribe(7);
        assert_eq!(t.snapshot(), vec![(7, 0)]);
    }

    #[test]
    fn quorum_wait_blocks_until_enough_acks() {
        let t = std::sync::Arc::new(AckTable::new());
        t.ack(1, 50);
        // One follower at 50: quorum of 2 at lsn 50 not reached yet.
        assert!(!t.wait_quorum(50, 2, Duration::from_millis(10)));
        let waiter = {
            let t = std::sync::Arc::clone(&t);
            std::thread::spawn(move || t.wait_quorum(50, 2, Duration::from_secs(5)))
        };
        t.ack(2, 60);
        assert!(waiter.join().unwrap_or(false), "second ack must release the quorum wait");
    }
}
