//! The length-prefixed binary frame layer.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! u32 LE   len       bytes that follow (header + body + checksum)
//! u16 LE   version   protocol version (PROTO_V1)
//! u16 LE   code      opcode (requests) / response tag (responses)
//! u64 LE   request id (echoed back in the response)
//! u32 LE   tenant id
//! ...      body      op-specific payload (labbase `enc` encoding)
//! u32 LE   checksum  FNV-1a over [version .. body] — the WAL's codec
//! ```
//!
//! Every way a frame can go wrong — truncation, an oversized length
//! prefix, a checksum mismatch, an unknown version, a mid-frame
//! disconnect or stall — is a *typed* [`WireError`], never a panic and
//! never a hung connection: reads and writes run against socket
//! timeouts and give up with [`WireError::Stalled`] after a bounded
//! number of mid-frame timeout ticks.

use std::io::{ErrorKind, Read, Write};

use labflow_storage::fnv1a;

/// Protocol version 1 (the only one).
pub const PROTO_V1: u16 = 1;

/// Hard bound on `len`: no frame exceeds 1 MiB on the wire.
pub const MAX_FRAME: usize = 1 << 20;

/// Fixed header past the length prefix: version + code + request id +
/// tenant id.
pub const HDR: usize = 2 + 2 + 8 + 4;

/// Trailing checksum width.
pub const CRC: usize = 4;

/// Mid-frame stall budget: consecutive socket-timeout ticks tolerated
/// once a frame has started arriving (or draining) before the peer is
/// declared stalled. With the default 50 ms socket timeout this is a
/// ~10 s patience window.
pub const MAX_STALL_TICKS: u32 = 200;

/// Everything that can go wrong at the frame layer.
#[derive(Debug)]
pub enum WireError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The peer disconnected mid-frame: `got` of `want` bytes arrived.
    Truncated {
        /// Bytes received before the disconnect.
        got: usize,
        /// Bytes the frame header promised.
        want: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`] (or is too short to hold
    /// the fixed header and checksum).
    BadLength(u32),
    /// The trailing FNV-1a checksum does not match the frame contents.
    BadChecksum {
        /// Checksum carried by the frame.
        got: u32,
        /// Checksum recomputed over the received bytes.
        want: u32,
    },
    /// The frame declares a protocol version this build does not speak.
    BadVersion(u16),
    /// The body failed to decode against the declared opcode.
    Decode(String),
    /// The peer stopped making progress mid-frame (send or receive) for
    /// longer than the stall budget.
    Stalled,
    /// A non-timeout I/O error from the socket.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Closed => write!(f, "connection closed"),
            WireError::Truncated { got, want } => {
                write!(f, "frame truncated: {got} of {want} bytes")
            }
            WireError::BadLength(n) => write!(f, "bad frame length {n}"),
            WireError::BadChecksum { got, want } => {
                write!(f, "frame checksum mismatch: got {got:#010x}, want {want:#010x}")
            }
            WireError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            WireError::Decode(msg) => write!(f, "frame body malformed: {msg}"),
            WireError::Stalled => write!(f, "peer stalled mid-frame"),
            WireError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Protocol version (always [`PROTO_V1`] after a successful read).
    pub version: u16,
    /// Opcode (requests) or response tag (responses).
    pub code: u16,
    /// Request id, echoed in the response.
    pub request_id: u64,
    /// Tenant the request bills to.
    pub tenant: u32,
    /// Op-specific payload.
    pub body: Vec<u8>,
}

/// Outcome of one read attempt at a frame boundary.
#[derive(Debug)]
pub enum Event {
    /// A complete, verified frame.
    Frame(Frame),
    /// The socket timed out while *idle* (no frame in progress): the
    /// caller should check its stop flags and try again.
    Idle,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Fill `buf` from `r`, tolerating up to [`MAX_STALL_TICKS`] timeout
/// ticks. `already` is how many bytes of the larger unit were received
/// before this call (for truncation reporting); `idle_ok` permits an
/// Ok(None) return when the very first byte times out.
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    already: usize,
    want: usize,
    idle_ok: bool,
) -> Result<Option<()>, WireError> {
    let mut got = 0usize;
    let mut stalls = 0u32;
    while got < buf.len() {
        match r.read(buf.get_mut(got..).unwrap_or(&mut [])) {
            Ok(0) => {
                if already + got == 0 {
                    return Err(WireError::Closed);
                }
                return Err(WireError::Truncated { got: already + got, want });
            }
            Ok(n) => {
                got += n;
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                if idle_ok && already + got == 0 {
                    return Ok(None);
                }
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(Some(()))
}

/// Read one frame. A timeout before any byte arrives returns
/// [`Event::Idle`]; every fault is a typed [`WireError`].
pub fn read_event(r: &mut impl Read) -> Result<Event, WireError> {
    let mut len4 = [0u8; 4];
    if read_full(r, &mut len4, 0, 4, true)?.is_none() {
        return Ok(Event::Idle);
    }
    let len = u32::from_le_bytes(len4);
    let lenu = len as usize;
    if !(HDR + CRC..=MAX_FRAME).contains(&lenu) {
        return Err(WireError::BadLength(len));
    }
    let mut payload = vec![0u8; lenu];
    read_full(r, &mut payload, 4, 4 + lenu, false)?;
    parse_payload(&payload)
}

/// Verify and split a received payload (everything after the length
/// prefix) into a [`Frame`].
fn parse_payload(payload: &[u8]) -> Result<Event, WireError> {
    let crc_at = payload.len().saturating_sub(CRC);
    let (content, crc_bytes) = payload.split_at(crc_at);
    let got = u32::from_le_bytes(crc_bytes.try_into().unwrap_or([0; 4]));
    let want = fnv1a(content);
    if got != want {
        return Err(WireError::BadChecksum { got, want });
    }
    let mut rd = labbase::enc::Reader::new(content);
    let version = read_u16(&mut rd)?;
    let code = read_u16(&mut rd)?;
    let request_id = rd.u64().map_err(|e| WireError::Decode(e.to_string()))?;
    let tenant = rd.u32().map_err(|e| WireError::Decode(e.to_string()))?;
    if version != PROTO_V1 {
        return Err(WireError::BadVersion(version));
    }
    let body = content.get(HDR..).unwrap_or(&[]).to_vec();
    Ok(Event::Frame(Frame { version, code, request_id, tenant, body }))
}

/// The `enc` reader has no u16 primitive; frames store u16s as two raw
/// little-endian bytes.
fn read_u16(rd: &mut labbase::enc::Reader<'_>) -> Result<u16, WireError> {
    let lo = rd.u8().map_err(|e| WireError::Decode(e.to_string()))?;
    let hi = rd.u8().map_err(|e| WireError::Decode(e.to_string()))?;
    Ok(u16::from_le_bytes([lo, hi]))
}

/// Serialize a frame to wire bytes (length prefix included). Fails with
/// [`WireError::BadLength`] if the body would exceed [`MAX_FRAME`].
pub fn encode_frame(frame: &Frame) -> Result<Vec<u8>, WireError> {
    let len = HDR + frame.body.len() + CRC;
    if len > MAX_FRAME {
        return Err(WireError::BadLength(len as u32));
    }
    let mut out = Vec::with_capacity(4 + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    out.extend_from_slice(&frame.version.to_le_bytes());
    out.extend_from_slice(&frame.code.to_le_bytes());
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&frame.tenant.to_le_bytes());
    out.extend_from_slice(&frame.body);
    let crc = fnv1a(out.get(4..).unwrap_or(&[]));
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Write pre-encoded wire bytes, tolerating up to [`MAX_STALL_TICKS`]
/// timeout ticks of backpressure before declaring the peer stalled.
pub fn write_all_bounded(w: &mut impl Write, mut bytes: &[u8]) -> Result<(), WireError> {
    let mut stalls = 0u32;
    while !bytes.is_empty() {
        match w.write(bytes) {
            Ok(0) => return Err(WireError::Io(ErrorKind::WriteZero.into())),
            Ok(n) => {
                bytes = bytes.get(n..).unwrap_or(&[]);
                stalls = 0;
            }
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > MAX_STALL_TICKS {
                    return Err(WireError::Stalled);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Encode and write one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), WireError> {
    let bytes = encode_frame(frame)?;
    write_all_bounded(w, &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> Frame {
        Frame {
            version: PROTO_V1,
            code: 7,
            request_id: 42,
            tenant: 3,
            body: b"payload".to_vec(),
        }
    }

    fn read_one(bytes: &[u8]) -> Result<Event, WireError> {
        read_event(&mut Cursor::new(bytes))
    }

    #[test]
    fn round_trip() {
        let bytes = encode_frame(&sample()).unwrap();
        match read_one(&bytes).unwrap() {
            Event::Frame(f) => assert_eq!(f, sample()),
            Event::Idle => panic!("unexpected idle"),
        }
    }

    #[test]
    fn clean_close_between_frames_is_typed() {
        assert!(matches!(read_one(&[]), Err(WireError::Closed)));
    }

    #[test]
    fn truncated_length_prefix_is_typed() {
        // Two of the four length bytes, then disconnect.
        let err = read_one(&[0x10, 0x00]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { got: 2, want: 4 }), "{err}");
    }

    #[test]
    fn mid_frame_disconnect_is_typed() {
        let bytes = encode_frame(&sample()).unwrap();
        // Cut the frame in half after the length prefix.
        let cut = 4 + (bytes.len() - 4) / 2;
        let err = read_one(&bytes[..cut]).unwrap_err();
        match err {
            WireError::Truncated { got, want } => {
                assert_eq!(got, cut);
                assert_eq!(want, bytes.len());
            }
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_typed() {
        let mut bytes = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        assert!(matches!(read_one(&bytes), Err(WireError::BadLength(_))));
    }

    #[test]
    fn undersized_length_prefix_is_typed() {
        // A frame too short to hold even the header and checksum.
        let bytes = 4u32.to_le_bytes().to_vec();
        assert!(matches!(read_one(&bytes), Err(WireError::BadLength(4))));
    }

    #[test]
    fn bad_checksum_is_typed() {
        let mut bytes = encode_frame(&sample()).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(matches!(read_one(&bytes), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn corrupt_body_fails_the_checksum_not_the_decoder() {
        let mut bytes = encode_frame(&sample()).unwrap();
        bytes[10] ^= 0x01;
        assert!(matches!(read_one(&bytes), Err(WireError::BadChecksum { .. })));
    }

    #[test]
    fn unknown_version_is_typed() {
        let mut f = sample();
        f.version = 9;
        let bytes = encode_frame(&f).unwrap();
        assert!(matches!(read_one(&bytes), Err(WireError::BadVersion(9))));
    }

    #[test]
    fn oversized_body_refused_at_encode() {
        let f = Frame { body: vec![0u8; MAX_FRAME], ..sample() };
        assert!(matches!(encode_frame(&f), Err(WireError::BadLength(_))));
    }

    #[test]
    fn empty_body_round_trips() {
        let f = Frame { body: Vec::new(), ..sample() };
        let bytes = encode_frame(&f).unwrap();
        match read_one(&bytes).unwrap() {
            Event::Frame(g) => assert_eq!(g, f),
            Event::Idle => panic!("unexpected idle"),
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let mut bytes = encode_frame(&sample()).unwrap();
        let second = Frame { request_id: 43, ..sample() };
        bytes.extend(encode_frame(&second).unwrap());
        let mut cur = Cursor::new(bytes.as_slice());
        match read_event(&mut cur).unwrap() {
            Event::Frame(f) => assert_eq!(f.request_id, 42),
            Event::Idle => panic!("unexpected idle"),
        }
        match read_event(&mut cur).unwrap() {
            Event::Frame(f) => assert_eq!(f.request_id, 43),
            Event::Idle => panic!("unexpected idle"),
        }
        assert!(matches!(read_event(&mut cur), Err(WireError::Closed)));
    }
}
