//! The `labflow-server` binary: serve a LabBase database over TCP.
//!
//! ```text
//! labflow-server --dir /var/lib/labflow --addr 127.0.0.1:7047
//! labflow-server --mem --addr 127.0.0.1:0   # ephemeral in-memory store
//! ```
//!
//! Prints `labflow-server listening on <addr>` once the listener is
//! bound (the CI smoke test and scripts parse this line for the port),
//! then runs until SIGTERM/kill or until a client sends the `Shutdown`
//! request, at which point it drains gracefully.

#![forbid(unsafe_code)]

use std::io::Write;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use labbase::LabBase;
use labflow_server::{Server, ServerConfig, TenantQuotas};
use labflow_storage::{MemStore, OStore, Options, StorageManager};

struct Args {
    addr: String,
    dir: Option<std::path::PathBuf>,
    mem: bool,
    max_conns: u32,
    max_sessions: u32,
    max_inflight: u32,
    bytes_per_sec: u64,
    buffer_pages: usize,
    ack_quorum: u32,
    ack_timeout_ms: u64,
}

const USAGE: &str = "usage: labflow-server [options]
  --addr HOST:PORT     bind address (default 127.0.0.1:7047; port 0 = ephemeral)
  --dir PATH           durable store directory (created or opened)
  --mem                in-memory store instead of --dir
  --max-conns N        connection cap, 0 = unlimited (default 256)
  --max-sessions N     per-tenant open-session cap, 0 = unlimited (default 64)
  --max-inflight N     per-tenant in-flight request cap, 0 = unlimited (default 256)
  --bytes-per-sec N    per-tenant wire bytes/s quota, 0 = unlimited (default 0)
  --buffer-pages N     store buffer pool size in pages (default 4096)
  --ack-quorum N       followers that must ack a commit before it is
                       answered, 0 = asynchronous replication (default 0)
  --ack-timeout-ms N   how long a commit waits for its ack quorum before
                       reporting the locally-durable commit as quorum-lagged
                       (default 2000)
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7047".into(),
        dir: None,
        mem: false,
        max_conns: 256,
        max_sessions: 64,
        max_inflight: 256,
        bytes_per_sec: 0,
        buffer_pages: 4096,
        ack_quorum: 0,
        ack_timeout_ms: 2000,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = val("--addr")?,
            "--dir" => args.dir = Some(val("--dir")?.into()),
            "--mem" => args.mem = true,
            "--max-conns" => {
                args.max_conns = val("--max-conns")?.parse().map_err(|e| format!("--max-conns: {e}"))?
            }
            "--max-sessions" => {
                args.max_sessions =
                    val("--max-sessions")?.parse().map_err(|e| format!("--max-sessions: {e}"))?
            }
            "--max-inflight" => {
                args.max_inflight =
                    val("--max-inflight")?.parse().map_err(|e| format!("--max-inflight: {e}"))?
            }
            "--bytes-per-sec" => {
                args.bytes_per_sec =
                    val("--bytes-per-sec")?.parse().map_err(|e| format!("--bytes-per-sec: {e}"))?
            }
            "--buffer-pages" => {
                args.buffer_pages =
                    val("--buffer-pages")?.parse().map_err(|e| format!("--buffer-pages: {e}"))?
            }
            "--ack-quorum" => {
                args.ack_quorum =
                    val("--ack-quorum")?.parse().map_err(|e| format!("--ack-quorum: {e}"))?
            }
            "--ack-timeout-ms" => {
                args.ack_timeout_ms = val("--ack-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--ack-timeout-ms: {e}"))?
            }
            "--help" | "-h" => return Err(USAGE.into()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if args.mem == args.dir.is_some() {
        return Err(format!("exactly one of --dir or --mem is required\n{USAGE}"));
    }
    Ok(args)
}

fn open_db(args: &Args) -> Result<Arc<LabBase>, String> {
    if args.mem {
        // In-memory stores are always fresh.
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        return LabBase::create(store).map(Arc::new).map_err(|e| format!("initialize database: {e}"));
    }
    let dir = match args.dir.as_ref() {
        Some(d) => d,
        None => return Err("--dir missing".into()),
    };
    // A networked server must not acknowledge commits that can vanish:
    // force the log on commit (the CI smoke test kills the process
    // mid-transaction and verifies committed-exactly recovery).
    let opts = Options { buffer_pages: args.buffer_pages, sync_commit: true, ..Options::default() };
    let fresh = !dir.join("store.meta").exists();
    let store: Arc<dyn StorageManager> = if fresh {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {dir:?}: {e}"))?;
        Arc::new(OStore::create(dir, opts).map_err(|e| format!("create store at {dir:?}: {e}"))?)
    } else {
        Arc::new(OStore::open(dir, opts).map_err(|e| format!("open store at {dir:?}: {e}"))?)
    };
    let db = if fresh { LabBase::create(store) } else { LabBase::open(store) };
    db.map(Arc::new).map_err(|e| format!("initialize database: {e}"))
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let db = open_db(&args)?;
    let config = ServerConfig {
        addr: args.addr.clone(),
        max_conns: args.max_conns,
        quotas: TenantQuotas {
            max_sessions: args.max_sessions,
            max_inflight: args.max_inflight,
            bytes_per_sec: args.bytes_per_sec,
        },
        ack_quorum: args.ack_quorum,
        ack_timeout: Duration::from_millis(args.ack_timeout_ms),
        ..ServerConfig::default()
    };
    let server = Server::start(db, config).map_err(|e| format!("start server: {e}"))?;
    println!("labflow-server listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("labflow-server: shutdown requested; draining");
    server.shutdown().map_err(|e| format!("drain: {e}"))?;
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
