//! Request/response bodies carried inside [`wire`](crate::wire) frames.
//!
//! Bodies reuse LabBase's own little-endian [`enc`](labbase::enc) codec
//! and the [`Value`]/[`AttrType`] encoders, so a value travels the wire
//! in exactly the bytes it is stored in. The frame's `code` field holds
//! the request opcode on the way in and the response tag on the way out.

use labbase::enc::{Reader, Writer};
use labbase::{AttrType, Value};

use crate::tenant::AdmissionSnapshot;
use crate::wire::WireError;

// ---- request opcodes -------------------------------------------------------

/// Liveness probe.
pub const OP_PING: u16 = 1;
/// Begin a transaction on this connection.
pub const OP_BEGIN: u16 = 2;
/// Commit the connection's open transaction.
pub const OP_COMMIT: u16 = 3;
/// Abort the connection's open transaction.
pub const OP_ABORT: u16 = 4;
/// Create a material.
pub const OP_CREATE_MATERIAL: u16 = 10;
/// Record a workflow step.
pub const OP_RECORD_STEP: u16 = 11;
/// Set a material's workflow state.
pub const OP_SET_STATE: u16 = 12;
/// Define a material class.
pub const OP_DEFINE_MATERIAL_CLASS: u16 = 13;
/// Define a step class.
pub const OP_DEFINE_STEP_CLASS: u16 = 14;
/// Create a material set.
pub const OP_CREATE_SET: u16 = 15;
/// Add a material to a set.
pub const OP_ADD_TO_SET: u16 = 16;
/// Read a material's workflow state.
pub const OP_STATE_OF: u16 = 20;
/// Read the most-recent value of an attribute.
pub const OP_RECENT: u16 = 21;
/// Read a material's history.
pub const OP_HISTORY: u16 = 22;
/// Look up a material by external name.
pub const OP_FIND_MATERIAL: u16 = 23;
/// Count materials in a workflow state.
pub const OP_COUNT_IN_STATE: u16 = 24;
/// Run an LQL query.
pub const OP_QUERY: u16 = 25;
/// Fetch the server's admission-control counters.
pub const OP_ADMISSION_STATS: u16 = 30;
/// Ask the server to drain and exit.
pub const OP_SHUTDOWN: u16 = 31;
/// Replication: stream WAL bytes from an offset (follower → primary).
pub const OP_REPL_SUBSCRIBE: u16 = 40;
/// Replication: acknowledge durably applied WAL bytes.
pub const OP_REPL_ACK: u16 = 41;
/// Replication: epoch, flushed LSN, and per-follower acked LSNs.
pub const OP_REPL_STATUS: u16 = 42;
/// Replication: promote this (follower) server to primary.
pub const OP_REPL_PROMOTE: u16 = 43;

// ---- response tags ---------------------------------------------------------

/// Generic success.
pub const RE_OK: u16 = 0;
/// Ping reply.
pub const RE_PONG: u16 = 1;
/// A material id.
pub const RE_MATERIAL: u16 = 2;
/// A step id.
pub const RE_STEP: u16 = 3;
/// An optional material id.
pub const RE_MAYBE_MATERIAL: u16 = 4;
/// An optional workflow state.
pub const RE_STATE: u16 = 5;
/// An optional most-recent value.
pub const RE_RECENT: u16 = 6;
/// A history listing.
pub const RE_HISTORY: u16 = 7;
/// A count.
pub const RE_COUNT: u16 = 8;
/// LQL result rows.
pub const RE_ROWS: u16 = 9;
/// Admission-control counters.
pub const RE_ADMISSION: u16 = 10;
/// A database error (typed code + rendered message).
pub const RE_ERROR: u16 = 11;
/// Transient contention: retry the same request.
pub const RE_RETRY: u16 = 12;
/// Admission control shed the request; back off.
pub const RE_OVERLOADED: u16 = 13;
/// A shipped WAL chunk (replication).
pub const RE_REPL_CHUNK: u16 = 14;
/// Replication status (epoch / LSN / follower acks).
pub const RE_REPL_STATUS: u16 = 15;

// ---- error codes carried by RE_ERROR ---------------------------------------

/// Storage-layer failure.
pub const EC_STORAGE: u16 = 1;
/// Record/body decode failure.
pub const EC_DECODE: u16 = 2;
/// Unknown class/material/step/set/attr or duplicate definition.
pub const EC_SCHEMA: u16 = 3;
/// The request needs an open transaction (or already has one).
pub const EC_TXN_STATE: u16 = 4;
/// LQL error.
pub const EC_QUERY: u16 = 5;
/// The opcode is not one this server understands.
pub const EC_BAD_OP: u16 = 6;
/// The server is draining and accepts no new work.
pub const EC_DRAINING: u16 = 7;
/// The database is a replication follower; writes refused until
/// promotion.
pub const EC_READ_ONLY: u16 = 8;
/// A replication-protocol failure (fenced epoch, quorum not reached,
/// not a follower, ...).
pub const EC_REPL: u16 = 9;
/// The primary's log was truncated behind the requested offset; the
/// follower must re-seed from a base copy.
pub const EC_REPL_REWOUND: u16 = 10;

/// A decoded request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Begin a transaction on this connection.
    Begin,
    /// Commit the open transaction.
    Commit,
    /// Abort the open transaction.
    Abort,
    /// Create a material.
    CreateMaterial {
        /// Material class name.
        class: String,
        /// External name.
        name: String,
        /// Valid time of creation.
        created: i64,
    },
    /// Record a workflow step.
    RecordStep {
        /// Step class name.
        class: String,
        /// Valid time of the event.
        valid_time: i64,
        /// Involved materials (raw oids).
        materials: Vec<u64>,
        /// Result attributes.
        attrs: Vec<(String, Value)>,
    },
    /// Set a material's workflow state (empty string clears it).
    SetState {
        /// The material (raw oid).
        material: u64,
        /// New state.
        state: String,
        /// Valid time of the transition.
        valid_time: i64,
    },
    /// Define a material class.
    DefineMaterialClass {
        /// Class name.
        name: String,
        /// Optional parent class.
        parent: Option<String>,
    },
    /// Define a step class (version 1).
    DefineStepClass {
        /// Class name.
        name: String,
        /// Attribute schema.
        attrs: Vec<(String, AttrType)>,
    },
    /// Create a material set.
    CreateSet {
        /// Set name.
        set: String,
    },
    /// Add a material to a set.
    AddToSet {
        /// Set name.
        set: String,
        /// The material (raw oid).
        material: u64,
    },
    /// Read a material's workflow state.
    StateOf {
        /// The material (raw oid).
        material: u64,
    },
    /// Most-recent value of an attribute.
    Recent {
        /// The material (raw oid).
        material: u64,
        /// Attribute name.
        attr: String,
    },
    /// A material's history, newest first.
    History {
        /// The material (raw oid).
        material: u64,
    },
    /// Look up a material by external name.
    FindMaterial {
        /// External name.
        name: String,
    },
    /// Count materials in a workflow state.
    CountInState {
        /// State name.
        state: String,
    },
    /// Run an LQL query.
    Query {
        /// LQL source text.
        lql: String,
    },
    /// Fetch admission-control counters.
    AdmissionStats,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Stream WAL bytes from `from` (a follower pulling from the
    /// primary). `follower` identifies the subscriber in the primary's
    /// ack table.
    ReplSubscribe {
        /// Follower id (chosen by the follower, stable per replica).
        follower: u64,
        /// WAL offset to stream from.
        from: u64,
        /// Upper bound on chunk size, in bytes.
        max_bytes: u32,
    },
    /// Acknowledge that `follower` has durably applied the WAL up to
    /// `lsn`; unblocks quorum-waiting commits.
    ReplAck {
        /// Follower id.
        follower: u64,
        /// Durably applied WAL offset.
        lsn: u64,
    },
    /// Fetch the replication status (epoch, LSN, follower acks).
    ReplStatus,
    /// Promote this server's database to primary (follower servers
    /// only; the primary refuses).
    ReplPromote,
}

/// A decoded response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Ping reply.
    Pong,
    /// A material id (raw oid).
    Material(u64),
    /// A step id (raw oid).
    Step(u64),
    /// An optional material id.
    MaybeMaterial(Option<u64>),
    /// An optional workflow state.
    State(Option<String>),
    /// Most-recent value: `(value, valid_time, step oid)`.
    RecentValue(Option<(Value, i64, u64)>),
    /// History entries `(step oid, valid_time)`, newest first.
    History(Vec<(u64, i64)>),
    /// A count.
    Count(u64),
    /// LQL rows: each a list of `(variable, rendered term)`.
    Rows(Vec<Vec<(String, String)>>),
    /// Admission-control counters.
    Admission(AdmissionSnapshot),
    /// A database error.
    Error {
        /// One of the `EC_*` codes.
        code: u16,
        /// Rendered message.
        message: String,
    },
    /// Transient contention (lock timeout / wound): retry the request.
    Retry {
        /// What collided.
        reason: String,
    },
    /// Admission control shed the request.
    Overloaded {
        /// Suggested backoff before retrying.
        retry_after_ms: u32,
    },
    /// A shipped WAL chunk: `bytes` is whole checksummed frames
    /// covering primary WAL offsets `[start, end)`, stamped with the
    /// primary's store epoch. Empty (`start == end`) means caught up.
    ReplChunk {
        /// The primary's sealed store epoch when the chunk was cut.
        epoch: u64,
        /// First WAL offset covered.
        start: u64,
        /// One past the last WAL offset covered.
        end: u64,
        /// The raw frame bytes (verify with `decode_shipped`).
        bytes: Vec<u8>,
    },
    /// Replication status.
    ReplState {
        /// The store's sealed epoch.
        epoch: u64,
        /// The WAL's flushed tail offset.
        lsn: u64,
        /// Per-follower acked LSNs, sorted by follower id.
        followers: Vec<(u64, u64)>,
    },
}

fn de(e: labbase::LabError) -> WireError {
    WireError::Decode(e.to_string())
}

fn opt_str(w: &mut Writer, v: Option<&str>) {
    match v {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            w.str(s);
        }
    }
}

fn read_opt_str(r: &mut Reader<'_>) -> Result<Option<String>, WireError> {
    Ok(match r.u8().map_err(de)? {
        0 => None,
        _ => Some(r.str().map_err(de)?),
    })
}

impl Request {
    /// The opcode this request travels under.
    pub fn opcode(&self) -> u16 {
        match self {
            Request::Ping => OP_PING,
            Request::Begin => OP_BEGIN,
            Request::Commit => OP_COMMIT,
            Request::Abort => OP_ABORT,
            Request::CreateMaterial { .. } => OP_CREATE_MATERIAL,
            Request::RecordStep { .. } => OP_RECORD_STEP,
            Request::SetState { .. } => OP_SET_STATE,
            Request::DefineMaterialClass { .. } => OP_DEFINE_MATERIAL_CLASS,
            Request::DefineStepClass { .. } => OP_DEFINE_STEP_CLASS,
            Request::CreateSet { .. } => OP_CREATE_SET,
            Request::AddToSet { .. } => OP_ADD_TO_SET,
            Request::StateOf { .. } => OP_STATE_OF,
            Request::Recent { .. } => OP_RECENT,
            Request::History { .. } => OP_HISTORY,
            Request::FindMaterial { .. } => OP_FIND_MATERIAL,
            Request::CountInState { .. } => OP_COUNT_IN_STATE,
            Request::Query { .. } => OP_QUERY,
            Request::AdmissionStats => OP_ADMISSION_STATS,
            Request::Shutdown => OP_SHUTDOWN,
            Request::ReplSubscribe { .. } => OP_REPL_SUBSCRIBE,
            Request::ReplAck { .. } => OP_REPL_ACK,
            Request::ReplStatus => OP_REPL_STATUS,
            Request::ReplPromote => OP_REPL_PROMOTE,
        }
    }

    /// Encode the body (opcode travels in the frame header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Ping
            | Request::Begin
            | Request::Commit
            | Request::Abort
            | Request::AdmissionStats
            | Request::Shutdown
            | Request::ReplStatus
            | Request::ReplPromote => {}
            Request::ReplSubscribe { follower, from, max_bytes } => {
                w.u64(*follower);
                w.u64(*from);
                w.u32(*max_bytes);
            }
            Request::ReplAck { follower, lsn } => {
                w.u64(*follower);
                w.u64(*lsn);
            }
            Request::CreateMaterial { class, name, created } => {
                w.str(class);
                w.str(name);
                w.i64(*created);
            }
            Request::RecordStep { class, valid_time, materials, attrs } => {
                w.str(class);
                w.i64(*valid_time);
                w.u32(materials.len() as u32);
                for m in materials {
                    w.u64(*m);
                }
                w.u32(attrs.len() as u32);
                for (name, value) in attrs {
                    w.str(name);
                    value.encode(&mut w);
                }
            }
            Request::SetState { material, state, valid_time } => {
                w.u64(*material);
                w.str(state);
                w.i64(*valid_time);
            }
            Request::DefineMaterialClass { name, parent } => {
                w.str(name);
                opt_str(&mut w, parent.as_deref());
            }
            Request::DefineStepClass { name, attrs } => {
                w.str(name);
                w.u32(attrs.len() as u32);
                for (attr, ty) in attrs {
                    w.str(attr);
                    ty.encode(&mut w);
                }
            }
            Request::CreateSet { set } => w.str(set),
            Request::AddToSet { set, material } => {
                w.str(set);
                w.u64(*material);
            }
            Request::StateOf { material } | Request::History { material } => w.u64(*material),
            Request::Recent { material, attr } => {
                w.u64(*material);
                w.str(attr);
            }
            Request::FindMaterial { name } => w.str(name),
            Request::CountInState { state } => w.str(state),
            Request::Query { lql } => w.str(lql),
        }
        w.finish()
    }

    /// Decode a request from its opcode and body bytes.
    pub fn decode(opcode: u16, body: &[u8]) -> Result<Request, WireError> {
        let mut r = Reader::new(body);
        let req = match opcode {
            OP_PING => Request::Ping,
            OP_BEGIN => Request::Begin,
            OP_COMMIT => Request::Commit,
            OP_ABORT => Request::Abort,
            OP_ADMISSION_STATS => Request::AdmissionStats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_REPL_STATUS => Request::ReplStatus,
            OP_REPL_PROMOTE => Request::ReplPromote,
            OP_REPL_SUBSCRIBE => Request::ReplSubscribe {
                follower: r.u64().map_err(de)?,
                from: r.u64().map_err(de)?,
                max_bytes: r.u32().map_err(de)?,
            },
            OP_REPL_ACK => Request::ReplAck {
                follower: r.u64().map_err(de)?,
                lsn: r.u64().map_err(de)?,
            },
            OP_CREATE_MATERIAL => Request::CreateMaterial {
                class: r.str().map_err(de)?,
                name: r.str().map_err(de)?,
                created: r.i64().map_err(de)?,
            },
            OP_RECORD_STEP => {
                let class = r.str().map_err(de)?;
                let valid_time = r.i64().map_err(de)?;
                let nmat = r.u32().map_err(de)? as usize;
                let mut materials = Vec::with_capacity(nmat.min(1024));
                for _ in 0..nmat {
                    materials.push(r.u64().map_err(de)?);
                }
                let nattr = r.u32().map_err(de)? as usize;
                let mut attrs = Vec::with_capacity(nattr.min(1024));
                for _ in 0..nattr {
                    let name = r.str().map_err(de)?;
                    let value = Value::decode(&mut r).map_err(de)?;
                    attrs.push((name, value));
                }
                Request::RecordStep { class, valid_time, materials, attrs }
            }
            OP_SET_STATE => Request::SetState {
                material: r.u64().map_err(de)?,
                state: r.str().map_err(de)?,
                valid_time: r.i64().map_err(de)?,
            },
            OP_DEFINE_MATERIAL_CLASS => Request::DefineMaterialClass {
                name: r.str().map_err(de)?,
                parent: read_opt_str(&mut r)?,
            },
            OP_DEFINE_STEP_CLASS => {
                let name = r.str().map_err(de)?;
                let n = r.u32().map_err(de)? as usize;
                let mut attrs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let attr = r.str().map_err(de)?;
                    let ty = AttrType::decode(&mut r).map_err(de)?;
                    attrs.push((attr, ty));
                }
                Request::DefineStepClass { name, attrs }
            }
            OP_CREATE_SET => Request::CreateSet { set: r.str().map_err(de)? },
            OP_ADD_TO_SET => Request::AddToSet {
                set: r.str().map_err(de)?,
                material: r.u64().map_err(de)?,
            },
            OP_STATE_OF => Request::StateOf { material: r.u64().map_err(de)? },
            OP_RECENT => Request::Recent {
                material: r.u64().map_err(de)?,
                attr: r.str().map_err(de)?,
            },
            OP_HISTORY => Request::History { material: r.u64().map_err(de)? },
            OP_FIND_MATERIAL => Request::FindMaterial { name: r.str().map_err(de)? },
            OP_COUNT_IN_STATE => Request::CountInState { state: r.str().map_err(de)? },
            OP_QUERY => Request::Query { lql: r.str().map_err(de)? },
            other => return Err(WireError::Decode(format!("unknown opcode {other}"))),
        };
        Ok(req)
    }
}

impl Response {
    /// The response tag this body travels under.
    pub fn tag(&self) -> u16 {
        match self {
            Response::Ok => RE_OK,
            Response::Pong => RE_PONG,
            Response::Material(_) => RE_MATERIAL,
            Response::Step(_) => RE_STEP,
            Response::MaybeMaterial(_) => RE_MAYBE_MATERIAL,
            Response::State(_) => RE_STATE,
            Response::RecentValue(_) => RE_RECENT,
            Response::History(_) => RE_HISTORY,
            Response::Count(_) => RE_COUNT,
            Response::Rows(_) => RE_ROWS,
            Response::Admission(_) => RE_ADMISSION,
            Response::Error { .. } => RE_ERROR,
            Response::Retry { .. } => RE_RETRY,
            Response::Overloaded { .. } => RE_OVERLOADED,
            Response::ReplChunk { .. } => RE_REPL_CHUNK,
            Response::ReplState { .. } => RE_REPL_STATUS,
        }
    }

    /// Encode the body (tag travels in the frame header).
    pub fn encode_body(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Ok | Response::Pong => {}
            Response::Material(oid) | Response::Step(oid) | Response::Count(oid) => {
                w.u64(*oid);
            }
            Response::MaybeMaterial(opt) => match opt {
                None => w.u8(0),
                Some(oid) => {
                    w.u8(1);
                    w.u64(*oid);
                }
            },
            Response::State(opt) => opt_str(&mut w, opt.as_deref()),
            Response::RecentValue(opt) => match opt {
                None => w.u8(0),
                Some((value, vt, step)) => {
                    w.u8(1);
                    value.encode(&mut w);
                    w.i64(*vt);
                    w.u64(*step);
                }
            },
            Response::History(entries) => {
                w.u32(entries.len() as u32);
                for (step, vt) in entries {
                    w.u64(*step);
                    w.i64(*vt);
                }
            }
            Response::Rows(rows) => {
                w.u32(rows.len() as u32);
                for row in rows {
                    w.u32(row.len() as u32);
                    for (var, term) in row {
                        w.str(var);
                        w.str(term);
                    }
                }
            }
            Response::Admission(snap) => snap.encode(&mut w),
            Response::Error { code, message } => {
                w.u32(u32::from(*code));
                w.str(message);
            }
            Response::Retry { reason } => w.str(reason),
            Response::Overloaded { retry_after_ms } => w.u32(*retry_after_ms),
            Response::ReplChunk { epoch, start, end, bytes } => {
                w.u64(*epoch);
                w.u64(*start);
                w.u64(*end);
                w.bytes(bytes);
            }
            Response::ReplState { epoch, lsn, followers } => {
                w.u64(*epoch);
                w.u64(*lsn);
                w.u32(followers.len() as u32);
                for (f, acked) in followers {
                    w.u64(*f);
                    w.u64(*acked);
                }
            }
        }
        w.finish()
    }

    /// Decode a response from its tag and body bytes.
    pub fn decode(tag: u16, body: &[u8]) -> Result<Response, WireError> {
        let mut r = Reader::new(body);
        let resp = match tag {
            RE_OK => Response::Ok,
            RE_PONG => Response::Pong,
            RE_MATERIAL => Response::Material(r.u64().map_err(de)?),
            RE_STEP => Response::Step(r.u64().map_err(de)?),
            RE_COUNT => Response::Count(r.u64().map_err(de)?),
            RE_MAYBE_MATERIAL => Response::MaybeMaterial(match r.u8().map_err(de)? {
                0 => None,
                _ => Some(r.u64().map_err(de)?),
            }),
            RE_STATE => Response::State(read_opt_str(&mut r)?),
            RE_RECENT => Response::RecentValue(match r.u8().map_err(de)? {
                0 => None,
                _ => {
                    let value = Value::decode(&mut r).map_err(de)?;
                    let vt = r.i64().map_err(de)?;
                    let step = r.u64().map_err(de)?;
                    Some((value, vt, step))
                }
            }),
            RE_HISTORY => {
                let n = r.u32().map_err(de)? as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let step = r.u64().map_err(de)?;
                    let vt = r.i64().map_err(de)?;
                    entries.push((step, vt));
                }
                Response::History(entries)
            }
            RE_ROWS => {
                let n = r.u32().map_err(de)? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let k = r.u32().map_err(de)? as usize;
                    let mut row = Vec::with_capacity(k.min(64));
                    for _ in 0..k {
                        let var = r.str().map_err(de)?;
                        let term = r.str().map_err(de)?;
                        row.push((var, term));
                    }
                    rows.push(row);
                }
                Response::Rows(rows)
            }
            RE_ADMISSION => Response::Admission(AdmissionSnapshot::decode(&mut r)?),
            RE_ERROR => {
                let code = r.u32().map_err(de)?;
                let message = r.str().map_err(de)?;
                Response::Error { code: code as u16, message }
            }
            RE_RETRY => Response::Retry { reason: r.str().map_err(de)? },
            RE_OVERLOADED => Response::Overloaded { retry_after_ms: r.u32().map_err(de)? },
            RE_REPL_CHUNK => Response::ReplChunk {
                epoch: r.u64().map_err(de)?,
                start: r.u64().map_err(de)?,
                end: r.u64().map_err(de)?,
                bytes: r.bytes().map_err(de)?.to_vec(),
            },
            RE_REPL_STATUS => {
                let epoch = r.u64().map_err(de)?;
                let lsn = r.u64().map_err(de)?;
                let n = r.u32().map_err(de)? as usize;
                let mut followers = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let f = r.u64().map_err(de)?;
                    let acked = r.u64().map_err(de)?;
                    followers.push((f, acked));
                }
                Response::ReplState { epoch, lsn, followers }
            }
            other => return Err(WireError::Decode(format!("unknown response tag {other}"))),
        };
        Ok(resp)
    }
}

/// Map a database error to the response that should travel back:
/// transient contention becomes [`Response::Retry`] so clients back off
/// and reissue; everything else is a typed [`Response::Error`].
pub fn response_for_error(e: &labbase::LabError) -> Response {
    use labflow_storage::StorageError;
    match e {
        labbase::LabError::Storage(StorageError::LockTimeout(oid)) => {
            Response::Retry { reason: format!("lock timeout on {oid}") }
        }
        labbase::LabError::Storage(se @ StorageError::WalRewound { .. }) => {
            Response::Error { code: EC_REPL_REWOUND, message: se.to_string() }
        }
        labbase::LabError::Storage(se @ StorageError::EpochFenced { .. }) => {
            Response::Error { code: EC_REPL, message: se.to_string() }
        }
        labbase::LabError::Storage(se) => {
            Response::Error { code: EC_STORAGE, message: se.to_string() }
        }
        labbase::LabError::Decode(msg) => {
            Response::Error { code: EC_DECODE, message: msg.clone() }
        }
        labbase::LabError::ReadOnly => {
            Response::Error { code: EC_READ_ONLY, message: e.to_string() }
        }
        other => Response::Error { code: EC_SCHEMA, message: other.to_string() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_req(req: Request) {
        let body = req.encode_body();
        let back = Request::decode(req.opcode(), &body).unwrap();
        assert_eq!(back, req);
    }

    fn round_trip_resp(resp: Response) {
        let body = resp.encode_body();
        let back = Response::decode(resp.tag(), &body).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_req(Request::Ping);
        round_trip_req(Request::Begin);
        round_trip_req(Request::Commit);
        round_trip_req(Request::Abort);
        round_trip_req(Request::AdmissionStats);
        round_trip_req(Request::Shutdown);
        round_trip_req(Request::CreateMaterial {
            class: "clone".into(),
            name: "c-001".into(),
            created: -5,
        });
        round_trip_req(Request::RecordStep {
            class: "determine_sequence".into(),
            valid_time: 99,
            materials: vec![3, 4, 5],
            attrs: vec![
                ("quality".into(), Value::Real(0.5)),
                ("lane".into(), Value::Int(7)),
            ],
        });
        round_trip_req(Request::SetState { material: 9, state: "queued".into(), valid_time: 2 });
        round_trip_req(Request::DefineMaterialClass { name: "gel".into(), parent: None });
        round_trip_req(Request::DefineMaterialClass {
            name: "gel".into(),
            parent: Some("material".into()),
        });
        round_trip_req(Request::DefineStepClass {
            name: "run_gel".into(),
            attrs: vec![("lane".into(), AttrType::Int), ("image".into(), AttrType::Str)],
        });
        round_trip_req(Request::CreateSet { set: "queue".into() });
        round_trip_req(Request::AddToSet { set: "queue".into(), material: 11 });
        round_trip_req(Request::StateOf { material: 4 });
        round_trip_req(Request::Recent { material: 4, attr: "quality".into() });
        round_trip_req(Request::History { material: 4 });
        round_trip_req(Request::FindMaterial { name: "c-001".into() });
        round_trip_req(Request::CountInState { state: "queued".into() });
        round_trip_req(Request::Query { lql: "state(M, queued)".into() });
        round_trip_req(Request::ReplSubscribe { follower: 2, from: 4096, max_bytes: 1 << 16 });
        round_trip_req(Request::ReplAck { follower: 2, lsn: 8192 });
        round_trip_req(Request::ReplStatus);
        round_trip_req(Request::ReplPromote);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_resp(Response::Ok);
        round_trip_resp(Response::Pong);
        round_trip_resp(Response::Material(8));
        round_trip_resp(Response::Step(9));
        round_trip_resp(Response::MaybeMaterial(None));
        round_trip_resp(Response::MaybeMaterial(Some(3)));
        round_trip_resp(Response::State(None));
        round_trip_resp(Response::State(Some("ready".into())));
        round_trip_resp(Response::RecentValue(None));
        round_trip_resp(Response::RecentValue(Some((Value::Real(0.25), 7, 12))));
        round_trip_resp(Response::History(vec![(10, 5), (8, 3)]));
        round_trip_resp(Response::Count(42));
        round_trip_resp(Response::Rows(vec![
            vec![("M".into(), "m3".into()), ("S".into(), "queued".into())],
            vec![("M".into(), "m4".into()), ("S".into(), "ready".into())],
        ]));
        round_trip_resp(Response::Error { code: EC_SCHEMA, message: "unknown class".into() });
        round_trip_resp(Response::Retry { reason: "lock timeout on o9".into() });
        round_trip_resp(Response::Overloaded { retry_after_ms: 250 });
        round_trip_resp(Response::ReplChunk {
            epoch: 3,
            start: 17,
            end: 60,
            bytes: vec![1, 2, 3, 4],
        });
        round_trip_resp(Response::ReplState {
            epoch: 3,
            lsn: 60,
            followers: vec![(1, 60), (2, 17)],
        });
    }

    #[test]
    fn replication_errors_map_to_typed_codes() {
        use labflow_storage::StorageError;
        let rewound =
            labbase::LabError::Storage(StorageError::WalRewound { requested: 9, tail: 4 });
        assert!(matches!(
            response_for_error(&rewound),
            Response::Error { code: EC_REPL_REWOUND, .. }
        ));
        let fenced = labbase::LabError::Storage(StorageError::EpochFenced { got: 2, fence: 5 });
        assert!(matches!(response_for_error(&fenced), Response::Error { code: EC_REPL, .. }));
        assert!(matches!(
            response_for_error(&labbase::LabError::ReadOnly),
            Response::Error { code: EC_READ_ONLY, .. }
        ));
    }

    #[test]
    fn unknown_opcode_is_typed() {
        assert!(matches!(Request::decode(999, &[]), Err(WireError::Decode(_))));
    }

    #[test]
    fn truncated_body_is_typed() {
        let body = Request::CreateMaterial {
            class: "clone".into(),
            name: "c".into(),
            created: 0,
        }
        .encode_body();
        let err = Request::decode(OP_CREATE_MATERIAL, &body[..body.len() - 4]);
        assert!(matches!(err, Err(WireError::Decode(_))));
    }

    #[test]
    fn lock_timeout_maps_to_retry() {
        use labflow_storage::{Oid, StorageError};
        let e = labbase::LabError::Storage(StorageError::LockTimeout(Oid::from_raw(4)));
        assert!(matches!(response_for_error(&e), Response::Retry { .. }));
    }
}
