//! The server: accept loop, connection table, and graceful drain.
//!
//! [`Server::start`] binds a listener, spawns an accept thread, and
//! hands each connection to its own handler thread running
//! [`conn::serve`]. Connections above the configured cap are refused
//! with a best-effort `Overloaded` frame before the socket closes —
//! admission control begins at accept.
//!
//! [`Server::shutdown`] drains gracefully: it flips the drain latch,
//! raises every handler's stop flag, waits for the connection table to
//! empty (each handler aborts its open transaction via the session's
//! selective footprint undo and releases its snapshot pin on the way
//! out), then joins the accept thread. After shutdown the database
//! reports zero open sessions and zero registered snapshots.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use labbase::LabBase;
use labflow_storage::lock_order;
use parking_lot::Mutex;

use crate::conn::{self, ConnShared};
use crate::proto::Response;
use crate::tenant::{AdmissionSnapshot, TenantQuotas, TenantRegistry};
use crate::wire::{self, Frame, PROTO_V1};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind (e.g. `127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Maximum concurrent connections; further accepts are refused with
    /// an `Overloaded` frame. Zero means unlimited.
    pub max_conns: u32,
    /// Per-tenant quotas.
    pub quotas: TenantQuotas,
    /// Per-connection write staging buffer cap, in bytes.
    pub write_buffer: usize,
    /// Replication ack quorum: a commit response waits until this many
    /// followers have acked the commit's WAL offset. Zero (the
    /// default) replicates asynchronously — commits answer as soon as
    /// they are locally durable.
    pub ack_quorum: u32,
    /// How long a commit waits for its ack quorum before reporting the
    /// (locally durable) commit as quorum-lagged.
    pub ack_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            max_conns: 256,
            quotas: TenantQuotas::default(),
            write_buffer: 256 * 1024,
            ack_quorum: 0,
            ack_timeout: Duration::from_secs(2),
        }
    }
}

/// Hook invoked by a `ReplPromote` request on a follower server: stops
/// the replication pump, promotes the store's epoch, and re-opens the
/// database for writes. `None` (a primary) refuses promotion.
pub type PromoteHook = Arc<dyn Fn() -> Result<(), String> + Send + Sync>;

/// The drain latch's state, guarded at rank
/// [`lock_order::SRV_DRAIN`].
#[derive(Default)]
struct DrainState {
    /// Set once; no new connections or transactions after.
    draining: bool,
    /// Set when the last handler has deregistered.
    drained: bool,
}

/// Shared server state: everything the accept loop, the handlers, and
/// the public [`Server`] handle agree on.
pub(crate) struct Core {
    db: Arc<LabBase>,
    program: lql::Program,
    registry: TenantRegistry,
    config: ServerConfig,
    /// Connection table: id → stop-flag handle. Guarded at rank
    /// [`lock_order::SRV_CONNS`].
    conns: Mutex<HashMap<u64, Arc<ConnShared>>>,
    /// Drain latch, rank [`lock_order::SRV_DRAIN`].
    drain: Mutex<DrainState>,
    /// Mirror of `drain.draining` readable without the latch (hot path).
    draining: AtomicBool,
    /// Set by a `Shutdown` request; the embedding binary polls it.
    shutdown_requested: AtomicBool,
    next_conn_id: AtomicU64,
    /// Per-follower replication acks (rank [`lock_order::REPL_ACKS`]).
    repl_acks: crate::repl::AckTable,
    /// Follower-mode promotion hook; `None` on a primary.
    promote: Option<PromoteHook>,
}

impl Core {
    pub(crate) fn db(&self) -> &LabBase {
        &self.db
    }

    pub(crate) fn program(&self) -> &lql::Program {
        &self.program
    }

    pub(crate) fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    pub(crate) fn config(&self) -> &ServerConfig {
        &self.config
    }

    pub(crate) fn draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    pub(crate) fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::Release);
    }

    pub(crate) fn repl_acks(&self) -> &crate::repl::AckTable {
        &self.repl_acks
    }

    pub(crate) fn promote_hook(&self) -> Option<&PromoteHook> {
        self.promote.as_ref()
    }

    fn register(&self, shared: Arc<ConnShared>) {
        let mut conns = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
        conns.insert(shared.id, shared);
    }

    fn deregister(&self, id: u64) {
        let mut conns = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
        conns.remove(&id);
    }

    fn conn_count(&self) -> usize {
        let conns = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
        conns.len()
    }

    fn stop_all_conns(&self) {
        let conns = lock_order::ranked(lock_order::SRV_CONNS, || self.conns.lock());
        for shared in conns.values() {
            shared.stop.store(true, Ordering::Release);
        }
    }
}

/// A running server. Dropping it without calling [`Server::shutdown`]
/// performs a best-effort drain.
pub struct Server {
    core: Arc<Core>,
    local_addr: SocketAddr,
    accept_stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handler_reaper: Option<JoinHandle<()>>,
    shut: bool,
}

impl Server {
    /// Bind, spawn the accept loop, and return the running server.
    pub fn start(db: Arc<LabBase>, config: ServerConfig) -> io::Result<Server> {
        Server::start_with(db, config, None)
    }

    /// [`Server::start`], with a promotion hook for follower servers:
    /// a `ReplPromote` request runs the hook (stop the pump, promote
    /// the epoch, re-open for writes). Primaries pass `None` and refuse
    /// promotion with a typed error.
    pub fn start_with(
        db: Arc<LabBase>,
        config: ServerConfig,
        promote: Option<PromoteHook>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let core = Arc::new(Core {
            db,
            program: lql::stdlib::labflow_program(),
            registry: TenantRegistry::new(config.quotas),
            config,
            conns: Mutex::new(HashMap::new()),
            drain: Mutex::new(DrainState::default()),
            draining: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            next_conn_id: AtomicU64::new(1),
            repl_acks: crate::repl::AckTable::new(),
            promote,
        });
        let accept_stop = Arc::new(AtomicBool::new(false));
        let (tx, rx) = std::sync::mpsc::channel::<JoinHandle<()>>();
        let accept_thread = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&accept_stop);
            std::thread::Builder::new()
                .name("labflow-accept".into())
                .spawn(move || accept_loop(&core, &listener, &stop, &tx))?
        };
        // Handler threads are detached from the accept loop's point of
        // view but joined at shutdown: a reaper collects their handles
        // so no thread outlives the server.
        let handler_reaper = {
            std::thread::Builder::new()
                .name("labflow-reaper".into())
                .spawn(move || {
                    for handle in rx {
                        let _ = handle.join();
                    }
                })?
        };
        Ok(Server {
            core,
            local_addr,
            accept_stop,
            accept_thread: Some(accept_thread),
            handler_reaper: Some(handler_reaper),
            shut: false,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether a client has sent a `Shutdown` request.
    pub fn shutdown_requested(&self) -> bool {
        self.core.shutdown_requested.load(Ordering::Acquire)
    }

    /// Open connections right now.
    pub fn open_conns(&self) -> usize {
        self.core.conn_count()
    }

    /// Open database sessions right now (across all connections).
    pub fn open_sessions(&self) -> u64 {
        self.core.db.open_sessions()
    }

    /// Snapshots still registered in the storage backend.
    pub fn open_snapshots(&self) -> usize {
        self.core.db.store().open_snapshots()
    }

    /// A point-in-time copy of the admission counters.
    pub fn admission(&self) -> AdmissionSnapshot {
        self.core.registry.snapshot()
    }

    /// Drain gracefully: refuse new connections, stop every handler
    /// (open transactions are aborted with selective footprint undo and
    /// their snapshots released), wait for the connection table to
    /// empty, and join all threads.
    pub fn shutdown(mut self) -> io::Result<()> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> io::Result<()> {
        if self.shut {
            return Ok(());
        }
        self.shut = true;
        {
            let mut drain = lock_order::ranked(lock_order::SRV_DRAIN, || self.core.drain.lock());
            drain.draining = true;
        }
        self.core.draining.store(true, Ordering::Release);
        self.accept_stop.store(true, Ordering::Release);
        self.core.stop_all_conns();
        // Handlers notice their stop flag within one socket tick; wait
        // for the connection table to empty. No condvar in the vendored
        // parking_lot, so this is a sleep-poll with a generous deadline.
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.core.conn_count() > 0 {
            if Instant::now() > deadline {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("drain timed out with {} connections open", self.core.conn_count()),
                ));
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        {
            let mut drain = lock_order::ranked(lock_order::SRV_DRAIN, || self.core.drain.lock());
            drain.drained = true;
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.handler_reaper.take() {
            let _ = t.join();
        }
        Ok(())
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.shutdown_inner();
    }
}

fn accept_loop(
    core: &Arc<Core>,
    listener: &TcpListener,
    stop: &AtomicBool,
    handles: &std::sync::mpsc::Sender<JoinHandle<()>>,
) {
    loop {
        if stop.load(Ordering::Acquire) {
            return;
        }
        let (stream, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Listener failure: nothing to accept on; drain what we
                // have and let shutdown() finish the job.
                return;
            }
        };
        let max = core.config.max_conns;
        if core.draining() || (max > 0 && core.conn_count() >= max as usize) {
            refuse(core, stream);
            continue;
        }
        let id = core.next_conn_id.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(ConnShared { id, stop: AtomicBool::new(false) });
        core.register(Arc::clone(&shared));
        let spawned = {
            let core = Arc::clone(core);
            std::thread::Builder::new()
                .name(format!("labflow-conn-{id}"))
                .spawn(move || {
                    conn::serve(&core, &shared, &stream);
                    drop(stream);
                    core.deregister(id);
                })
        };
        match spawned {
            Ok(handle) => {
                let _ = handles.send(handle);
            }
            Err(_) => {
                // Could not spawn a handler (thread exhaustion): treat
                // it as an overload shed.
                core.deregister(id);
                core.registry.note_shed_conn();
            }
        }
    }
}

/// Best-effort `Overloaded` frame, then close. A single bounded write —
/// never `write_all_bounded`, whose stall budget would let a refused
/// peer that stops draining (zero receive window) hold the one accept
/// thread for the full MAX_STALL_TICKS patience window, blocking every
/// new connection. The frame is a few dozen bytes, far below any socket
/// send buffer: one write either takes it whole or the peer was not
/// worth waiting for.
fn refuse(core: &Core, stream: TcpStream) {
    core.registry.note_shed_conn();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let resp = Response::Overloaded { retry_after_ms: 200 };
    let frame = Frame {
        version: PROTO_V1,
        code: resp.tag(),
        request_id: 0,
        tenant: 0,
        body: resp.encode_body(),
    };
    if let Ok(bytes) = wire::encode_frame(&frame) {
        let _ = io::Write::write(&mut &stream, &bytes);
    }
}
