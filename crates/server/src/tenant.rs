//! Per-tenant quotas and admission control.
//!
//! Every request names a tenant id in its frame header. The registry
//! tracks, per tenant: open sessions (capped), requests in flight
//! (capped), and a bytes-per-second token bucket fed by wire bytes in
//! both directions. A request that would exceed a cap is *shed* with a
//! typed `Overloaded` response carrying a backoff hint — the server
//! never queues unboundedly on behalf of a tenant.
//!
//! The registry's mutex is [`lock_order::SRV_TENANTS`] — a leaf latch
//! ranked above every storage lock, so holding it across any database
//! call is a rank inversion both checkers catch.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use labbase::enc::{Reader, Writer};
use labflow_storage::lock_order;
use parking_lot::Mutex;

use crate::wire::WireError;

/// Per-tenant resource caps. Zero means unlimited.
#[derive(Clone, Copy, Debug)]
pub struct TenantQuotas {
    /// Open sessions (begun, not yet committed/aborted) per tenant.
    pub max_sessions: u32,
    /// Requests in flight (admitted, response not yet written) per
    /// tenant.
    pub max_inflight: u32,
    /// Sustained wire bytes per second (both directions) per tenant.
    pub bytes_per_sec: u64,
}

impl Default for TenantQuotas {
    fn default() -> Self {
        TenantQuotas { max_sessions: 64, max_inflight: 256, bytes_per_sec: 0 }
    }
}

/// Burst headroom: the token bucket holds up to this many seconds of
/// quota, so a tenant idle for a while can burst briefly.
const BURST_SECS: f64 = 2.0;

/// Outcome of an admission check.
#[derive(Debug)]
pub enum Admit {
    /// Admitted; the caller must pair with `finish_request`.
    Ok,
    /// Shed: send `Overloaded { retry_after_ms }` and do no work.
    Overloaded {
        /// Suggested client backoff.
        retry_after_ms: u32,
    },
}

/// Per-tenant accounting (under the registry mutex).
struct TenantState {
    sessions: u32,
    inflight: u32,
    /// Token bucket for bytes/s; `None` when the quota is unlimited.
    bucket: Option<Bucket>,
    // Lifetime counters for the admission report.
    admitted: u64,
    shed_bytes: u64,
    shed_inflight: u64,
    shed_sessions: u64,
    bytes_in: u64,
    bytes_out: u64,
}

struct Bucket {
    tokens: f64,
    cap: f64,
    rate: f64,
    last_refill: Instant,
}

impl Bucket {
    fn new(rate: u64) -> Bucket {
        let cap = rate as f64 * BURST_SECS;
        Bucket { tokens: cap, cap, rate: rate as f64, last_refill: Instant::now() }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + dt * self.rate).min(self.cap);
    }

    /// Try to spend `n` tokens; on failure return a backoff estimate.
    fn spend(&mut self, n: f64, now: Instant) -> Result<(), u32> {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            return Ok(());
        }
        let deficit = n - self.tokens;
        let secs = if self.rate > 0.0 { deficit / self.rate } else { 1.0 };
        Err((secs * 1000.0).ceil().min(60_000.0) as u32)
    }
}

impl TenantState {
    fn new(quotas: &TenantQuotas) -> TenantState {
        TenantState {
            sessions: 0,
            inflight: 0,
            bucket: (quotas.bytes_per_sec > 0).then(|| Bucket::new(quotas.bytes_per_sec)),
            admitted: 0,
            shed_bytes: 0,
            shed_inflight: 0,
            shed_sessions: 0,
            bytes_in: 0,
            bytes_out: 0,
        }
    }
}

/// Server-wide admission counters (cheap atomics, read without locks).
#[derive(Default)]
pub struct AdmissionStats {
    /// Requests admitted.
    pub admitted: AtomicU64,
    /// Requests shed by the bytes/s bucket.
    pub shed_bytes: AtomicU64,
    /// Requests shed by the in-flight cap.
    pub shed_inflight: AtomicU64,
    /// Session begins refused by the session cap.
    pub shed_sessions: AtomicU64,
    /// Connections refused at accept (server connection cap).
    pub shed_conns: AtomicU64,
    /// Wire bytes received.
    pub bytes_in: AtomicU64,
    /// Wire bytes sent.
    pub bytes_out: AtomicU64,
}

/// One tenant's row in an [`AdmissionSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRow {
    /// Tenant id.
    pub tenant: u32,
    /// Requests admitted.
    pub admitted: u64,
    /// Requests shed by the bytes/s bucket.
    pub shed_bytes: u64,
    /// Requests shed by the in-flight cap.
    pub shed_inflight: u64,
    /// Session begins refused by the session cap.
    pub shed_sessions: u64,
    /// Wire bytes received from this tenant.
    pub bytes_in: u64,
    /// Wire bytes sent to this tenant.
    pub bytes_out: u64,
}

/// A point-in-time copy of the admission counters, wire-encodable for
/// the `AdmissionStats` request and the abl-server report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AdmissionSnapshot {
    /// Requests admitted (all tenants).
    pub admitted: u64,
    /// Requests shed by byte quotas.
    pub shed_bytes: u64,
    /// Requests shed by in-flight caps.
    pub shed_inflight: u64,
    /// Session begins refused by session caps.
    pub shed_sessions: u64,
    /// Connections refused at accept.
    pub shed_conns: u64,
    /// Wire bytes received.
    pub bytes_in: u64,
    /// Wire bytes sent.
    pub bytes_out: u64,
    /// Per-tenant rows, ordered by tenant id.
    pub tenants: Vec<TenantRow>,
}

impl AdmissionSnapshot {
    /// Counter deltas since `earlier` (per-tenant rows are not diffed;
    /// callers that need them take absolute snapshots).
    pub fn delta(&self, earlier: &AdmissionSnapshot) -> AdmissionSnapshot {
        AdmissionSnapshot {
            admitted: self.admitted.wrapping_sub(earlier.admitted),
            shed_bytes: self.shed_bytes.wrapping_sub(earlier.shed_bytes),
            shed_inflight: self.shed_inflight.wrapping_sub(earlier.shed_inflight),
            shed_sessions: self.shed_sessions.wrapping_sub(earlier.shed_sessions),
            shed_conns: self.shed_conns.wrapping_sub(earlier.shed_conns),
            bytes_in: self.bytes_in.wrapping_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.wrapping_sub(earlier.bytes_out),
            tenants: self.tenants.clone(),
        }
    }

    /// Total requests shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_bytes + self.shed_inflight + self.shed_sessions + self.shed_conns
    }

    /// Append the wire encoding to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u64(self.admitted);
        w.u64(self.shed_bytes);
        w.u64(self.shed_inflight);
        w.u64(self.shed_sessions);
        w.u64(self.shed_conns);
        w.u64(self.bytes_in);
        w.u64(self.bytes_out);
        w.u32(self.tenants.len() as u32);
        for t in &self.tenants {
            w.u32(t.tenant);
            w.u64(t.admitted);
            w.u64(t.shed_bytes);
            w.u64(t.shed_inflight);
            w.u64(t.shed_sessions);
            w.u64(t.bytes_in);
            w.u64(t.bytes_out);
        }
    }

    /// Decode from the wire.
    pub fn decode(r: &mut Reader<'_>) -> Result<AdmissionSnapshot, WireError> {
        let de = |e: labbase::LabError| WireError::Decode(e.to_string());
        let admitted = r.u64().map_err(de)?;
        let shed_bytes = r.u64().map_err(de)?;
        let shed_inflight = r.u64().map_err(de)?;
        let shed_sessions = r.u64().map_err(de)?;
        let shed_conns = r.u64().map_err(de)?;
        let bytes_in = r.u64().map_err(de)?;
        let bytes_out = r.u64().map_err(de)?;
        let n = r.u32().map_err(de)? as usize;
        let mut tenants = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            tenants.push(TenantRow {
                tenant: r.u32().map_err(de)?,
                admitted: r.u64().map_err(de)?,
                shed_bytes: r.u64().map_err(de)?,
                shed_inflight: r.u64().map_err(de)?,
                shed_sessions: r.u64().map_err(de)?,
                bytes_in: r.u64().map_err(de)?,
                bytes_out: r.u64().map_err(de)?,
            });
        }
        Ok(AdmissionSnapshot {
            admitted,
            shed_bytes,
            shed_inflight,
            shed_sessions,
            shed_conns,
            bytes_in,
            bytes_out,
            tenants,
        })
    }
}

/// The tenant registry: quota state for every tenant seen so far.
pub struct TenantRegistry {
    quotas: TenantQuotas,
    tenants: Mutex<HashMap<u32, TenantState>>,
    /// Server-wide counters (atomics: readable without the mutex).
    pub stats: AdmissionStats,
}

impl TenantRegistry {
    /// A registry applying `quotas` uniformly to every tenant.
    pub fn new(quotas: TenantQuotas) -> TenantRegistry {
        TenantRegistry { quotas, tenants: Mutex::new(HashMap::new()), stats: AdmissionStats::default() }
    }

    /// The quotas in force.
    pub fn quotas(&self) -> TenantQuotas {
        self.quotas
    }

    fn with_tenant<R>(&self, tenant: u32, f: impl FnOnce(&mut TenantState) -> R) -> R {
        let mut map = lock_order::ranked(lock_order::SRV_TENANTS, || self.tenants.lock());
        let state = map.entry(tenant).or_insert_with(|| TenantState::new(&self.quotas));
        f(state)
    }

    /// Admit or shed a request of `frame_bytes` wire bytes. On `Ok` the
    /// caller must later call [`TenantRegistry::finish_request`].
    pub fn admit_request(&self, tenant: u32, frame_bytes: usize) -> Admit {
        let now = Instant::now();
        let max_inflight = self.quotas.max_inflight;
        let outcome = self.with_tenant(tenant, |t| {
            if max_inflight > 0 && t.inflight >= max_inflight {
                t.shed_inflight += 1;
                return Admit::Overloaded { retry_after_ms: 50 };
            }
            if let Some(bucket) = t.bucket.as_mut() {
                if let Err(retry_after_ms) = bucket.spend(frame_bytes as f64, now) {
                    t.shed_bytes += 1;
                    return Admit::Overloaded { retry_after_ms };
                }
            }
            t.inflight += 1;
            t.admitted += 1;
            t.bytes_in += frame_bytes as u64;
            Admit::Ok
        });
        // Per-shed-kind counts live in the per-tenant rows (summed by
        // `snapshot`); only the hot server-wide totals are atomics.
        if matches!(outcome, Admit::Ok) {
            self.stats.admitted.fetch_add(1, Ordering::Relaxed);
            self.stats.bytes_in.fetch_add(frame_bytes as u64, Ordering::Relaxed);
        }
        outcome
    }

    /// Release an admitted request, charging `resp_bytes` of response
    /// traffic to the tenant's byte ledger (the bucket was charged at
    /// admission for the request; responses are accounted but do not
    /// block — the write path's bounded buffer is the backstop).
    pub fn finish_request(&self, tenant: u32, resp_bytes: usize) {
        self.with_tenant(tenant, |t| {
            t.inflight = t.inflight.saturating_sub(1);
            t.bytes_out += resp_bytes as u64;
        });
        self.stats.bytes_out.fetch_add(resp_bytes as u64, Ordering::Relaxed);
    }

    /// Try to open a session for `tenant` (counted against
    /// `max_sessions`). Returns false when the cap is hit.
    pub fn try_open_session(&self, tenant: u32) -> bool {
        let max_sessions = self.quotas.max_sessions;
        let ok = self.with_tenant(tenant, |t| {
            if max_sessions > 0 && t.sessions >= max_sessions {
                t.shed_sessions += 1;
                return false;
            }
            t.sessions += 1;
            true
        });
        if !ok {
            self.stats.shed_sessions.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Close a session previously opened with `try_open_session`.
    pub fn close_session(&self, tenant: u32) {
        self.with_tenant(tenant, |t| {
            t.sessions = t.sessions.saturating_sub(1);
        });
    }

    /// Record a connection refused at accept.
    pub fn note_shed_conn(&self) {
        self.stats.shed_conns.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of all counters, per-tenant rows included.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let mut tenants: Vec<TenantRow> = {
            let map = lock_order::ranked(lock_order::SRV_TENANTS, || self.tenants.lock());
            map.iter()
                .map(|(id, t)| TenantRow {
                    tenant: *id,
                    admitted: t.admitted,
                    shed_bytes: t.shed_bytes,
                    shed_inflight: t.shed_inflight,
                    shed_sessions: t.shed_sessions,
                    bytes_in: t.bytes_in,
                    bytes_out: t.bytes_out,
                })
                .collect()
        };
        tenants.sort_by_key(|t| t.tenant);
        let shed_bytes: u64 = tenants.iter().map(|t| t.shed_bytes).sum();
        let shed_inflight: u64 = tenants.iter().map(|t| t.shed_inflight).sum();
        AdmissionSnapshot {
            admitted: self.stats.admitted.load(Ordering::Relaxed),
            shed_bytes,
            shed_inflight,
            shed_sessions: self.stats.shed_sessions.load(Ordering::Relaxed),
            shed_conns: self.stats.shed_conns.load(Ordering::Relaxed),
            bytes_in: self.stats.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.stats.bytes_out.load(Ordering::Relaxed),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unlimited() -> TenantQuotas {
        TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 0 }
    }

    #[test]
    fn admit_and_finish_balance() {
        let reg = TenantRegistry::new(unlimited());
        assert!(matches!(reg.admit_request(1, 100), Admit::Ok));
        assert!(matches!(reg.admit_request(1, 100), Admit::Ok));
        reg.finish_request(1, 40);
        reg.finish_request(1, 40);
        let snap = reg.snapshot();
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.bytes_in, 200);
        assert_eq!(snap.bytes_out, 80);
        assert_eq!(snap.shed_total(), 0);
    }

    #[test]
    fn inflight_cap_sheds() {
        let reg = TenantRegistry::new(TenantQuotas { max_inflight: 2, ..unlimited() });
        assert!(matches!(reg.admit_request(1, 10), Admit::Ok));
        assert!(matches!(reg.admit_request(1, 10), Admit::Ok));
        assert!(matches!(reg.admit_request(1, 10), Admit::Overloaded { .. }));
        // A different tenant has its own budget.
        assert!(matches!(reg.admit_request(2, 10), Admit::Ok));
        // Finishing one readmits.
        reg.finish_request(1, 0);
        assert!(matches!(reg.admit_request(1, 10), Admit::Ok));
        let snap = reg.snapshot();
        assert_eq!(snap.shed_inflight, 1);
    }

    #[test]
    fn byte_bucket_sheds_with_backoff_hint() {
        // 100 B/s with a 2 s burst: the third 100-byte request in the
        // same instant must shed.
        let reg = TenantRegistry::new(TenantQuotas { bytes_per_sec: 100, ..unlimited() });
        assert!(matches!(reg.admit_request(1, 100), Admit::Ok));
        assert!(matches!(reg.admit_request(1, 100), Admit::Ok));
        match reg.admit_request(1, 100) {
            Admit::Overloaded { retry_after_ms } => assert!(retry_after_ms > 0),
            Admit::Ok => panic!("expected shed"),
        }
        assert_eq!(reg.snapshot().shed_bytes, 1);
    }

    #[test]
    fn session_cap_sheds() {
        let reg = TenantRegistry::new(TenantQuotas { max_sessions: 1, ..unlimited() });
        assert!(reg.try_open_session(7));
        assert!(!reg.try_open_session(7));
        reg.close_session(7);
        assert!(reg.try_open_session(7));
        let snap = reg.snapshot();
        assert_eq!(snap.shed_sessions, 1);
        assert_eq!(snap.tenants.len(), 1);
        assert_eq!(snap.tenants[0].shed_sessions, 1);
    }

    #[test]
    fn snapshot_round_trips_on_the_wire() {
        let reg = TenantRegistry::new(TenantQuotas { max_inflight: 1, ..unlimited() });
        let _ = reg.admit_request(3, 64);
        let _ = reg.admit_request(3, 64);
        let _ = reg.admit_request(9, 64);
        reg.note_shed_conn();
        let snap = reg.snapshot();
        let mut w = Writer::new();
        snap.encode(&mut w);
        let buf = w.finish();
        let back = AdmissionSnapshot::decode(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.tenants.len(), 2);
        assert_eq!(back.shed_conns, 1);
    }

    #[test]
    fn delta_subtracts_counters() {
        let reg = TenantRegistry::new(unlimited());
        let _ = reg.admit_request(1, 10);
        let before = reg.snapshot();
        let _ = reg.admit_request(1, 10);
        let _ = reg.admit_request(1, 10);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.admitted, 2);
        assert_eq!(d.bytes_in, 20);
    }
}
