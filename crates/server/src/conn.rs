//! Per-connection request handling.
//!
//! Each accepted connection gets one handler thread running
//! [`serve`]: a read-dispatch-respond loop over the framed wire
//! protocol. The handler owns at most one open [`Session`] (the
//! connection's transaction); responses drain through a
//! [`BoundedWriter`] whose staging buffer never exceeds its cap, so a
//! slow reader exerts backpressure on its own connection instead of
//! growing server memory — and a reader that stops draining entirely is
//! shed when the write stall budget runs out.
//!
//! No server lock is ever held across a database call, a socket
//! operation, or a sleep: the tenant registry and connection table are
//! leaf latches (ranks 70+), and the lock-order checkers enforce it.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use labbase::{LabError, MaterialId, Session};
use labflow_storage::Oid;

use crate::proto::{self, Request, Response};
use crate::server::Core;
use crate::tenant::Admit;
use crate::wire::{self, Event, Frame, WireError, PROTO_V1};

/// Socket read/write timeout: one backpressure tick. The stall budget
/// ([`wire::MAX_STALL_TICKS`]) counts these.
pub(crate) const TICK: Duration = Duration::from_millis(50);

/// Cap on LQL result rows returned over the wire; keeps response frames
/// under the frame size limit.
const QUERY_ROW_LIMIT: usize = 4096;

/// Cap on a shipped replication chunk: half the frame limit, leaving
/// ample headroom for the frame header and body framing.
const REPL_CHUNK_CAP: usize = 1 << 19;

/// Per-connection state shared with the server (stop signalling).
pub(crate) struct ConnShared {
    /// Connection id (key in the server's connection table).
    pub(crate) id: u64,
    /// Set by the server to ask this handler to wind down: the handler
    /// notices at the next idle tick or frame boundary, aborts its open
    /// transaction, and exits.
    pub(crate) stop: AtomicBool,
}

/// The connection's open transaction, tagged with the tenant whose
/// session quota it occupies.
struct OpenTxn<'a> {
    session: Session<'a>,
    tenant: u32,
}

/// A write path with a bounded staging buffer. Frames accumulate until
/// the cap, then drain to the socket under the wire layer's stall
/// budget; [`BoundedWriter::flush`] is called after every response so
/// the buffer only smooths bursts, never grows with a slow reader.
pub(crate) struct BoundedWriter<'a> {
    stream: &'a TcpStream,
    buf: Vec<u8>,
    cap: usize,
}

impl<'a> BoundedWriter<'a> {
    /// A writer over `stream` buffering at most `cap` bytes.
    pub(crate) fn new(stream: &'a TcpStream, cap: usize) -> BoundedWriter<'a> {
        BoundedWriter { stream, buf: Vec::new(), cap }
    }

    /// Stage `bytes`, draining to the socket when the cap is reached.
    pub(crate) fn push(&mut self, bytes: &[u8]) -> Result<(), WireError> {
        if self.buf.len() + bytes.len() > self.cap {
            self.flush()?;
        }
        if bytes.len() > self.cap {
            // Larger than the whole buffer: stream it directly.
            let mut s = self.stream;
            return wire::write_all_bounded(&mut s, bytes);
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Drain the staging buffer to the socket.
    pub(crate) fn flush(&mut self) -> Result<(), WireError> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let mut s = self.stream;
        wire::write_all_bounded(&mut s, &self.buf)?;
        self.buf.clear();
        Ok(())
    }
}

/// Run one connection to completion. Returns when the peer closes, a
/// wire fault or stall occurs, or the server asks the handler to stop.
/// Any open transaction is aborted (selective footprint undo) and its
/// snapshot released before returning; the caller deregisters the
/// connection afterwards.
pub(crate) fn serve(core: &Core, shared: &ConnShared, stream: &TcpStream) {
    // Nagle would delay each small response frame behind the peer's
    // delayed ACK, stretching transactions (and their lock footprints)
    // by ~40 ms per round trip.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TICK));
    let _ = stream.set_write_timeout(Some(TICK));
    let mut session: Option<OpenTxn<'_>> = None;
    let mut writer = BoundedWriter::new(stream, core.config().write_buffer);

    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let mut rs = stream;
        let frame = match wire::read_event(&mut rs) {
            Ok(Event::Idle) => continue,
            Ok(Event::Frame(f)) => f,
            Err(WireError::Closed) => break,
            Err(e @ (WireError::BadLength(_)
            | WireError::BadChecksum { .. }
            | WireError::BadVersion(_)
            | WireError::Decode(_))) => {
                // The stream itself is still healthy; tell the peer what
                // was wrong with its frame, then drop the connection —
                // after a framing error we cannot trust re-sync.
                let resp = Response::Error { code: proto::EC_BAD_OP, message: e.to_string() };
                let _ = respond(&mut writer, 0, 0, &resp);
                break;
            }
            Err(_) => break, // truncated / stalled / io: nothing to say
        };

        let wire_len = 4 + wire::HDR + frame.body.len() + wire::CRC;
        let tenant = frame.tenant;
        let request_id = frame.request_id;

        // `admitted` comes from admit_request's own outcome, never from
        // the response shape: dispatch can also answer `Overloaded`
        // (e.g. Begin hitting the session cap) for a request that *was*
        // admitted, and skipping finish_request for those would leak
        // the tenant's in-flight count one per shed until the cap
        // starves the tenant permanently.
        let (admitted, resp) = match core.registry().admit_request(tenant, wire_len) {
            Admit::Overloaded { retry_after_ms } => {
                (false, Response::Overloaded { retry_after_ms })
            }
            Admit::Ok => {
                let resp = match Request::decode(frame.code, &frame.body) {
                    Ok(req) => dispatch(core, &mut session, tenant, req),
                    Err(e) => Response::Error {
                        code: proto::EC_DECODE,
                        message: e.to_string(),
                    },
                };
                (true, resp)
            }
        };

        let sent = respond(&mut writer, request_id, tenant, &resp);
        if admitted {
            core.registry().finish_request(tenant, *sent.as_ref().unwrap_or(&0));
        }
        if sent.is_err() {
            break;
        }
    }

    if let Some(open) = session.take() {
        let _ = open.session.abort();
        core.registry().close_session(open.tenant);
    }
}

/// Encode and send one response; returns the wire bytes written. A
/// response that would exceed the frame limit degrades to a typed
/// error so the connection stays usable.
fn respond(
    writer: &mut BoundedWriter<'_>,
    request_id: u64,
    tenant: u32,
    resp: &Response,
) -> Result<usize, WireError> {
    let frame = Frame {
        version: PROTO_V1,
        code: resp.tag(),
        request_id,
        tenant,
        body: resp.encode_body(),
    };
    let bytes = match wire::encode_frame(&frame) {
        Ok(b) => b,
        Err(_) => {
            let fallback = Response::Error {
                code: proto::EC_QUERY,
                message: "response exceeds frame size limit".into(),
            };
            wire::encode_frame(&Frame {
                version: PROTO_V1,
                code: fallback.tag(),
                request_id,
                tenant,
                body: fallback.encode_body(),
            })?
        }
    };
    let n = bytes.len();
    writer.push(&bytes)?;
    writer.flush()?;
    Ok(n)
}

fn mat(raw: u64) -> MaterialId {
    MaterialId::from(Oid::from_raw(raw))
}

fn ok_or(r: Result<(), LabError>) -> Response {
    match r {
        Ok(()) => Response::Ok,
        Err(e) => proto::response_for_error(&e),
    }
}

/// Execute one request against the connection's state. `'db` is the
/// server's database borrow: the open session lives exactly as long as
/// the handler does.
fn dispatch<'db>(
    core: &'db Core,
    session: &mut Option<OpenTxn<'db>>,
    tenant: u32,
    req: Request,
) -> Response {
    let db = core.db();
    match req {
        Request::Ping => Response::Pong,

        Request::Begin => {
            if session.is_some() {
                return Response::Error {
                    code: proto::EC_TXN_STATE,
                    message: "transaction already open on this connection".into(),
                };
            }
            if core.draining() {
                return Response::Error {
                    code: proto::EC_DRAINING,
                    message: "server is draining; no new transactions".into(),
                };
            }
            if !core.registry().try_open_session(tenant) {
                return Response::Overloaded { retry_after_ms: 50 };
            }
            match db.session() {
                Ok(s) => {
                    *session = Some(OpenTxn { session: s, tenant });
                    Response::Ok
                }
                Err(e) => {
                    core.registry().close_session(tenant);
                    proto::response_for_error(&e)
                }
            }
        }

        Request::Commit => match session.take() {
            None => no_txn(),
            Some(open) => {
                let r = open.session.commit();
                core.registry().close_session(open.tenant);
                match r {
                    Ok(()) => committed(core),
                    Err(e) => proto::response_for_error(&e),
                }
            }
        },

        Request::Abort => match session.take() {
            None => no_txn(),
            Some(open) => {
                let r = open.session.abort();
                core.registry().close_session(open.tenant);
                ok_or(r)
            }
        },

        Request::CreateMaterial { class, name, created } => match session.as_mut() {
            None => no_txn(),
            Some(open) => match open.session.create_material(&class, &name, created) {
                Ok(m) => Response::Material(m.oid().raw()),
                Err(e) => proto::response_for_error(&e),
            },
        },

        Request::RecordStep { class, valid_time, materials, attrs } => match session.as_mut() {
            None => no_txn(),
            Some(open) => {
                let mats: Vec<MaterialId> = materials.iter().map(|m| mat(*m)).collect();
                match open.session.record_step(&class, valid_time, &mats, attrs) {
                    Ok(s) => Response::Step(s.oid().raw()),
                    Err(e) => proto::response_for_error(&e),
                }
            }
        },

        Request::SetState { material, state, valid_time } => match session.as_mut() {
            None => no_txn(),
            Some(open) => {
                let r = if state.is_empty() {
                    open.session.clear_state(mat(material), valid_time)
                } else {
                    open.session.set_state(mat(material), &state, valid_time)
                };
                ok_or(r)
            }
        },

        Request::DefineMaterialClass { name, parent } => match session.as_mut() {
            None => no_txn(),
            Some(open) => {
                match open.session.define_material_class(&name, parent.as_deref()) {
                    Ok(_) => Response::Ok,
                    Err(e) => proto::response_for_error(&e),
                }
            }
        },

        Request::DefineStepClass { name, attrs } => match session.as_mut() {
            None => no_txn(),
            Some(open) => {
                let specs: Vec<(&str, labbase::AttrType)> =
                    attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
                match open.session.define_step_class(&name, labbase::schema::attrs(&specs)) {
                    Ok(_) => Response::Ok,
                    Err(e) => proto::response_for_error(&e),
                }
            }
        },

        Request::CreateSet { set } => match session.as_mut() {
            None => no_txn(),
            Some(open) => ok_or(open.session.create_set(&set)),
        },

        Request::AddToSet { set, material } => match session.as_mut() {
            None => no_txn(),
            Some(open) => ok_or(open.session.add_to_set(&set, mat(material))),
        },

        // Reads go through the open transaction when there is one (the
        // connection sees its own uncommitted writes), and against the
        // latest committed state otherwise.
        Request::StateOf { material } => {
            let r = match session.as_ref() {
                Some(open) => open.session.state_of(mat(material)),
                None => db.state_of(mat(material)),
            };
            match r {
                Ok(state) => Response::State(state),
                Err(e) => proto::response_for_error(&e),
            }
        }

        Request::Recent { material, attr } => {
            let r = match session.as_ref() {
                Some(open) => open.session.recent(mat(material), &attr),
                None => db.recent(mat(material), &attr),
            };
            match r {
                Ok(v) => Response::RecentValue(
                    v.map(|rec| (rec.value, rec.valid_time, rec.step.oid().raw())),
                ),
                Err(e) => proto::response_for_error(&e),
            }
        }

        Request::History { material } => {
            let r = match session.as_ref() {
                Some(open) => open.session.history(mat(material)),
                None => db.history(mat(material)),
            };
            match r {
                Ok(entries) => Response::History(
                    entries.iter().map(|e| (e.step.oid().raw(), e.valid_time)).collect(),
                ),
                Err(e) => proto::response_for_error(&e),
            }
        }

        Request::FindMaterial { name } => match db.find_material(&name) {
            Ok(m) => Response::MaybeMaterial(m.map(|m| m.oid().raw())),
            Err(e) => proto::response_for_error(&e),
        },

        Request::CountInState { state } => match db.count_in_state(&state) {
            Ok(n) => Response::Count(n as u64),
            Err(e) => proto::response_for_error(&e),
        },

        Request::Query { lql } => {
            let qs = lql::Session::new(db, core.program());
            match qs.query_limit(&lql, QUERY_ROW_LIMIT) {
                Ok(rows) => Response::Rows(
                    rows.into_iter()
                        .map(|b| b.into_iter().map(|(v, t)| (v, t.to_string())).collect())
                        .collect(),
                ),
                Err(e) => Response::Error { code: proto::EC_QUERY, message: e.to_string() },
            }
        }

        Request::AdmissionStats => Response::Admission(core.registry().snapshot()),

        Request::Shutdown => {
            core.request_shutdown();
            Response::Ok
        }

        Request::ReplSubscribe { follower, from, max_bytes } => {
            core.repl_acks().subscribe(follower);
            let store = db.store();
            match store.wal_stream_from(from, (max_bytes as usize).min(REPL_CHUNK_CAP)) {
                Ok(chunk) => Response::ReplChunk {
                    epoch: store.store_epoch(),
                    start: chunk.start,
                    end: chunk.end,
                    bytes: chunk.bytes,
                },
                Err(e) => proto::response_for_error(&LabError::Storage(e)),
            }
        }

        Request::ReplAck { follower, lsn } => {
            core.repl_acks().ack(follower, lsn);
            Response::Ok
        }

        Request::ReplStatus => {
            let store = db.store();
            Response::ReplState {
                epoch: store.store_epoch(),
                lsn: store.replication_lsn().unwrap_or(0),
                followers: core.repl_acks().snapshot(),
            }
        }

        Request::ReplPromote => match core.promote_hook() {
            None => Response::Error {
                code: proto::EC_REPL,
                message: "not a follower: this server is already the primary".into(),
            },
            Some(hook) => match hook() {
                Ok(()) => Response::Ok,
                Err(msg) => Response::Error { code: proto::EC_REPL, message: msg },
            },
        },
    }
}

/// The response for a commit that succeeded locally. With an ack quorum
/// configured, hold the answer until enough followers have applied the
/// commit's WAL offset; a timeout reports the lag as a typed error —
/// the commit itself is durable on the primary either way.
fn committed(core: &Core) -> Response {
    let quorum = core.config().ack_quorum;
    if quorum == 0 {
        return Response::Ok;
    }
    let lsn = match core.db().store().replication_lsn() {
        Ok(lsn) => lsn,
        // In-memory profile: no log, nothing to ship, nothing to wait on.
        Err(_) => return Response::Ok,
    };
    if core.repl_acks().wait_quorum(lsn, quorum, core.config().ack_timeout) {
        Response::Ok
    } else {
        Response::Error {
            code: proto::EC_REPL,
            message: format!(
                "commit is durable on the primary but fewer than {quorum} followers \
                 acked it within the quorum window"
            ),
        }
    }
}

fn no_txn() -> Response {
    Response::Error {
        code: proto::EC_TXN_STATE,
        message: "no transaction open on this connection (send Begin first)".into(),
    }
}
