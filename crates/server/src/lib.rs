//! # labflow-server
//!
//! A networked multi-tenant front end for [`labbase`]: clients speak a
//! length-prefixed, checksummed binary protocol over TCP; the server
//! maps each connection onto a [`labbase::Session`] and applies
//! per-tenant admission control so one noisy tenant cannot starve the
//! rest.
//!
//! The crate splits into:
//!
//! * [`wire`] — the frame layer: length prefix, versioned header,
//!   request id, tenant id, FNV-1a checksum. Every fault (truncation,
//!   oversized length, bad checksum, unknown version, mid-frame
//!   disconnect, stall) is a typed error; nothing panics or hangs.
//! * [`proto`] — request/response bodies, reusing LabBase's own
//!   binary codec so values travel in their storage encoding.
//! * [`tenant`] — per-tenant quotas (open sessions, in-flight
//!   requests, bytes/s token bucket) and the shed counters behind the
//!   `AdmissionStats` report.
//! * [`server`] — the accept loop, connection table, and graceful
//!   drain: on shutdown every open transaction is aborted through the
//!   session's selective footprint undo and every snapshot pin is
//!   released, so the database ends with zero open sessions and zero
//!   registered snapshots.
//! * [`client`] — a blocking client with typed `Retry` / `Overloaded`
//!   errors, used by the `abl-server` experiment and the CI smoke test.
//!
//! Server-side locks (tenant registry, connection table, drain latch)
//! are leaf latches ranked *above* every storage lock
//! (`lock_order::SRV_*`), so holding one across any database call is a
//! rank inversion caught by the runtime checker and the static
//! analyzer alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod proto;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, ClientError, ClientResult};
pub use server::{Server, ServerConfig};
pub use tenant::{AdmissionSnapshot, TenantQuotas, TenantRow};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use labbase::{AttrType, LabBase, Value};
    use labflow_storage::{MemStore, StorageManager};

    use super::*;

    fn mem_db() -> Arc<LabBase> {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        Arc::new(LabBase::create(store).expect("create db"))
    }

    fn start(db: Arc<LabBase>, quotas: TenantQuotas) -> Server {
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            quotas,
            ..ServerConfig::default()
        };
        Server::start(db, config).expect("server starts")
    }

    fn unlimited() -> TenantQuotas {
        TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 0 }
    }

    #[test]
    fn end_to_end_workflow_over_loopback() {
        let db = mem_db();
        let server = start(Arc::clone(&db), unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();
        c.ping().unwrap();

        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        c.define_step_class(
            "determine_sequence",
            &[("sequence", AttrType::Dna), ("quality", AttrType::Real)],
        )
        .unwrap();
        let m = c.create_material("clone", "c-001", 0).unwrap();
        let s = c
            .record_step(
                "determine_sequence",
                10,
                &[m],
                vec![("quality".into(), Value::Real(0.75))],
            )
            .unwrap();
        c.set_state(m, "sequenced", 11).unwrap();
        // Own-writes visibility before commit.
        assert_eq!(c.state_of(m).unwrap().as_deref(), Some("sequenced"));
        c.commit().unwrap();

        // Visible after commit without a transaction.
        assert_eq!(c.find_material("c-001").unwrap(), Some(m));
        assert_eq!(c.count_in_state("sequenced").unwrap(), 1);
        let (v, vt, step) = c.recent(m, "quality").unwrap().unwrap();
        assert_eq!(v, Value::Real(0.75));
        assert_eq!(vt, 10);
        assert_eq!(step, s);
        assert_eq!(c.history(m).unwrap(), vec![(s, 10)]);

        let rows = c.query("state(M, sequenced)").unwrap();
        assert_eq!(rows.len(), 1);

        let snap = c.admission_stats().unwrap();
        assert!(snap.admitted > 0);
        assert_eq!(snap.shed_total(), 0);

        drop(c);
        server.shutdown().unwrap();
        assert_eq!(db.open_sessions(), 0);
        assert_eq!(db.store().open_snapshots(), 0);
    }

    #[test]
    fn abort_discards_and_drain_aborts_open_txns() {
        let db = mem_db();
        let server = start(Arc::clone(&db), unlimited());
        let addr = server.local_addr();

        let mut c = Client::connect(addr, 1).unwrap();
        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        c.commit().unwrap();

        // Abort rolls back.
        c.begin().unwrap();
        c.create_material("clone", "phantom", 0).unwrap();
        c.abort().unwrap();
        assert_eq!(c.find_material("phantom").unwrap(), None);

        // A transaction left open at shutdown is aborted by the drain.
        let mut dangling = Client::connect(addr, 2).unwrap();
        dangling.begin().unwrap();
        dangling.create_material("clone", "dangling", 0).unwrap();
        assert_eq!(db.open_sessions(), 1);

        server.shutdown().unwrap();
        assert_eq!(db.open_sessions(), 0, "drain must abort open transactions");
        assert_eq!(db.store().open_snapshots(), 0, "drain must release snapshot pins");

        let db2 = db;
        assert_eq!(db2.find_material("dangling").unwrap(), None);
    }

    #[test]
    fn txn_state_errors_are_typed() {
        let db = mem_db();
        let server = start(db, unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();
        // Mutation without Begin.
        match c.create_material("clone", "x", 0) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, proto::EC_TXN_STATE),
            other => panic!("expected typed txn-state error, got {other:?}"),
        }
        // Double begin.
        c.begin().unwrap();
        match c.call(&proto::Request::Begin) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, proto::EC_TXN_STATE),
            other => panic!("expected typed txn-state error, got {other:?}"),
        }
        c.abort().unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn session_quota_sheds_begin() {
        let db = mem_db();
        let server = start(
            db,
            TenantQuotas { max_sessions: 1, max_inflight: 0, bytes_per_sec: 0 },
        );
        let addr = server.local_addr();
        let mut a = Client::connect(addr, 7).unwrap();
        let mut b = Client::connect(addr, 7).unwrap();
        a.begin().unwrap();
        match b.begin() {
            Err(ClientError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // A different tenant is unaffected.
        let mut other = Client::connect(addr, 8).unwrap();
        other.begin().unwrap();
        other.abort().unwrap();
        // Releasing the session readmits tenant 7.
        a.abort().unwrap();
        b.begin().unwrap();
        b.abort().unwrap();
        let snap = a.admission_stats().unwrap();
        assert_eq!(snap.shed_sessions, 1);
        server.shutdown().unwrap();
    }

    /// Regression: a Begin shed by the *session* cap is still an
    /// admitted request — the response is `Overloaded`, but the
    /// tenant's in-flight slot must be released. Before the fix each
    /// such shed leaked one slot; once the leaks reached
    /// `max_inflight`, every request from the tenant shed forever.
    #[test]
    fn session_cap_sheds_do_not_leak_inflight_slots() {
        let db = mem_db();
        let server = start(
            db,
            TenantQuotas { max_sessions: 1, max_inflight: 2, bytes_per_sec: 0 },
        );
        let addr = server.local_addr();
        let mut a = Client::connect(addr, 5).unwrap();
        let mut b = Client::connect(addr, 5).unwrap();
        a.begin().unwrap();
        // More session-cap sheds than in-flight slots.
        for _ in 0..4 {
            match b.begin() {
                Err(ClientError::Overloaded { .. }) => {}
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        // A leak would have the in-flight cap shed everything now.
        b.ping().unwrap();
        a.abort().unwrap();
        b.begin().unwrap();
        b.abort().unwrap();
        let snap = server.admission();
        assert_eq!(snap.shed_sessions, 4);
        assert_eq!(
            snap.shed_inflight, 0,
            "session-cap sheds must not consume in-flight slots"
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn byte_quota_sheds_with_overloaded() {
        let db = mem_db();
        // Tiny byte budget: the first frames fit the burst allowance,
        // then requests shed.
        let server = start(
            db,
            TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 64 },
        );
        let mut c = Client::connect(server.local_addr(), 3).unwrap();
        let mut shed = 0;
        for _ in 0..64 {
            match c.ping() {
                Ok(()) => {}
                Err(ClientError::Overloaded { retry_after_ms }) => {
                    assert!(retry_after_ms > 0);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(shed > 0, "byte quota must shed under sustained load");
        let snap = server.admission();
        assert_eq!(snap.shed_bytes, shed as u64);
        server.shutdown().unwrap();
    }

    #[test]
    fn mid_frame_disconnect_leaves_server_healthy() {
        use std::io::Write;
        let db = mem_db();
        let server = start(db, unlimited());
        let addr = server.local_addr();

        // Write half a frame and slam the connection.
        {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            let frame = wire::Frame {
                version: wire::PROTO_V1,
                code: proto::OP_PING,
                request_id: 1,
                tenant: 1,
                body: Vec::new(),
            };
            let bytes = wire::encode_frame(&frame).unwrap();
            raw.write_all(&bytes[..bytes.len() / 2]).unwrap();
        }
        // And a frame with a corrupted checksum.
        {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            let frame = wire::Frame {
                version: wire::PROTO_V1,
                code: proto::OP_PING,
                request_id: 2,
                tenant: 1,
                body: Vec::new(),
            };
            let mut bytes = wire::encode_frame(&frame).unwrap();
            let n = bytes.len();
            bytes[n - 1] ^= 0xff;
            raw.write_all(&bytes).unwrap();
        }

        // The server survives both and still answers.
        let mut c = Client::connect(addr, 1).unwrap();
        c.ping().unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_request_sets_the_flag() {
        let db = mem_db();
        let server = start(db, unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();
        c.shutdown_server().unwrap();
        assert!(server.shutdown_requested());
        server.shutdown().unwrap();
    }
}
