//! # labflow-server
//!
//! A networked multi-tenant front end for [`labbase`]: clients speak a
//! length-prefixed, checksummed binary protocol over TCP; the server
//! maps each connection onto a [`labbase::Session`] and applies
//! per-tenant admission control so one noisy tenant cannot starve the
//! rest.
//!
//! The crate splits into:
//!
//! * [`wire`] — the frame layer: length prefix, versioned header,
//!   request id, tenant id, FNV-1a checksum. Every fault (truncation,
//!   oversized length, bad checksum, unknown version, mid-frame
//!   disconnect, stall) is a typed error; nothing panics or hangs.
//! * [`proto`] — request/response bodies, reusing LabBase's own
//!   binary codec so values travel in their storage encoding.
//! * [`tenant`] — per-tenant quotas (open sessions, in-flight
//!   requests, bytes/s token bucket) and the shed counters behind the
//!   `AdmissionStats` report.
//! * [`server`] — the accept loop, connection table, and graceful
//!   drain: on shutdown every open transaction is aborted through the
//!   session's selective footprint undo and every snapshot pin is
//!   released, so the database ends with zero open sessions and zero
//!   registered snapshots.
//! * [`client`] — a blocking client with typed `Retry` / `Overloaded`
//!   errors, used by the `abl-server` experiment and the CI smoke test.
//!
//! Server-side locks (tenant registry, connection table, drain latch)
//! are leaf latches ranked *above* every storage lock
//! (`lock_order::SRV_*`), so holding one across any database call is a
//! rank inversion caught by the runtime checker and the static
//! analyzer alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod proto;
pub(crate) mod repl;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, ClientError, ClientResult, ReplStatus, RetryPolicy, ShippedChunk};
pub use server::{PromoteHook, Server, ServerConfig};
pub use tenant::{AdmissionSnapshot, TenantQuotas, TenantRow};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use labbase::{AttrType, LabBase, Value};
    use labflow_storage::{MemStore, StorageManager};

    use super::*;

    fn mem_db() -> Arc<LabBase> {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        Arc::new(LabBase::create(store).expect("create db"))
    }

    fn start(db: Arc<LabBase>, quotas: TenantQuotas) -> Server {
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            quotas,
            ..ServerConfig::default()
        };
        Server::start(db, config).expect("server starts")
    }

    fn unlimited() -> TenantQuotas {
        TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 0 }
    }

    #[test]
    fn end_to_end_workflow_over_loopback() {
        let db = mem_db();
        let server = start(Arc::clone(&db), unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();
        c.ping().unwrap();

        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        c.define_step_class(
            "determine_sequence",
            &[("sequence", AttrType::Dna), ("quality", AttrType::Real)],
        )
        .unwrap();
        let m = c.create_material("clone", "c-001", 0).unwrap();
        let s = c
            .record_step(
                "determine_sequence",
                10,
                &[m],
                vec![("quality".into(), Value::Real(0.75))],
            )
            .unwrap();
        c.set_state(m, "sequenced", 11).unwrap();
        // Own-writes visibility before commit.
        assert_eq!(c.state_of(m).unwrap().as_deref(), Some("sequenced"));
        c.commit().unwrap();

        // Visible after commit without a transaction.
        assert_eq!(c.find_material("c-001").unwrap(), Some(m));
        assert_eq!(c.count_in_state("sequenced").unwrap(), 1);
        let (v, vt, step) = c.recent(m, "quality").unwrap().unwrap();
        assert_eq!(v, Value::Real(0.75));
        assert_eq!(vt, 10);
        assert_eq!(step, s);
        assert_eq!(c.history(m).unwrap(), vec![(s, 10)]);

        let rows = c.query("state(M, sequenced)").unwrap();
        assert_eq!(rows.len(), 1);

        let snap = c.admission_stats().unwrap();
        assert!(snap.admitted > 0);
        assert_eq!(snap.shed_total(), 0);

        drop(c);
        server.shutdown().unwrap();
        assert_eq!(db.open_sessions(), 0);
        assert_eq!(db.store().open_snapshots(), 0);
    }

    #[test]
    fn abort_discards_and_drain_aborts_open_txns() {
        let db = mem_db();
        let server = start(Arc::clone(&db), unlimited());
        let addr = server.local_addr();

        let mut c = Client::connect(addr, 1).unwrap();
        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        c.commit().unwrap();

        // Abort rolls back.
        c.begin().unwrap();
        c.create_material("clone", "phantom", 0).unwrap();
        c.abort().unwrap();
        assert_eq!(c.find_material("phantom").unwrap(), None);

        // A transaction left open at shutdown is aborted by the drain.
        let mut dangling = Client::connect(addr, 2).unwrap();
        dangling.begin().unwrap();
        dangling.create_material("clone", "dangling", 0).unwrap();
        assert_eq!(db.open_sessions(), 1);

        server.shutdown().unwrap();
        assert_eq!(db.open_sessions(), 0, "drain must abort open transactions");
        assert_eq!(db.store().open_snapshots(), 0, "drain must release snapshot pins");

        let db2 = db;
        assert_eq!(db2.find_material("dangling").unwrap(), None);
    }

    #[test]
    fn txn_state_errors_are_typed() {
        let db = mem_db();
        let server = start(db, unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();
        // Mutation without Begin.
        match c.create_material("clone", "x", 0) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, proto::EC_TXN_STATE),
            other => panic!("expected typed txn-state error, got {other:?}"),
        }
        // Double begin.
        c.begin().unwrap();
        match c.call(&proto::Request::Begin) {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, proto::EC_TXN_STATE),
            other => panic!("expected typed txn-state error, got {other:?}"),
        }
        c.abort().unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn session_quota_sheds_begin() {
        let db = mem_db();
        let server = start(
            db,
            TenantQuotas { max_sessions: 1, max_inflight: 0, bytes_per_sec: 0 },
        );
        let addr = server.local_addr();
        let mut a = Client::connect(addr, 7).unwrap();
        let mut b = Client::connect(addr, 7).unwrap();
        a.begin().unwrap();
        match b.begin() {
            Err(ClientError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // A different tenant is unaffected.
        let mut other = Client::connect(addr, 8).unwrap();
        other.begin().unwrap();
        other.abort().unwrap();
        // Releasing the session readmits tenant 7.
        a.abort().unwrap();
        b.begin().unwrap();
        b.abort().unwrap();
        let snap = a.admission_stats().unwrap();
        assert_eq!(snap.shed_sessions, 1);
        server.shutdown().unwrap();
    }

    /// Regression: a Begin shed by the *session* cap is still an
    /// admitted request — the response is `Overloaded`, but the
    /// tenant's in-flight slot must be released. Before the fix each
    /// such shed leaked one slot; once the leaks reached
    /// `max_inflight`, every request from the tenant shed forever.
    #[test]
    fn session_cap_sheds_do_not_leak_inflight_slots() {
        let db = mem_db();
        let server = start(
            db,
            TenantQuotas { max_sessions: 1, max_inflight: 2, bytes_per_sec: 0 },
        );
        let addr = server.local_addr();
        let mut a = Client::connect(addr, 5).unwrap();
        let mut b = Client::connect(addr, 5).unwrap();
        a.begin().unwrap();
        // More session-cap sheds than in-flight slots.
        for _ in 0..4 {
            match b.begin() {
                Err(ClientError::Overloaded { .. }) => {}
                other => panic!("expected Overloaded, got {other:?}"),
            }
        }
        // A leak would have the in-flight cap shed everything now.
        b.ping().unwrap();
        a.abort().unwrap();
        b.begin().unwrap();
        b.abort().unwrap();
        let snap = server.admission();
        assert_eq!(snap.shed_sessions, 4);
        assert_eq!(
            snap.shed_inflight, 0,
            "session-cap sheds must not consume in-flight slots"
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn byte_quota_sheds_with_overloaded() {
        let db = mem_db();
        // Tiny byte budget: the first frames fit the burst allowance,
        // then requests shed.
        let server = start(
            db,
            TenantQuotas { max_sessions: 0, max_inflight: 0, bytes_per_sec: 64 },
        );
        let mut c = Client::connect(server.local_addr(), 3).unwrap();
        let mut shed = 0;
        for _ in 0..64 {
            match c.ping() {
                Ok(()) => {}
                Err(ClientError::Overloaded { retry_after_ms }) => {
                    assert!(retry_after_ms > 0);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(shed > 0, "byte quota must shed under sustained load");
        let snap = server.admission();
        assert_eq!(snap.shed_bytes, shed as u64);
        server.shutdown().unwrap();
    }

    #[test]
    fn mid_frame_disconnect_leaves_server_healthy() {
        use std::io::Write;
        let db = mem_db();
        let server = start(db, unlimited());
        let addr = server.local_addr();

        // Write half a frame and slam the connection.
        {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            let frame = wire::Frame {
                version: wire::PROTO_V1,
                code: proto::OP_PING,
                request_id: 1,
                tenant: 1,
                body: Vec::new(),
            };
            let bytes = wire::encode_frame(&frame).unwrap();
            raw.write_all(&bytes[..bytes.len() / 2]).unwrap();
        }
        // And a frame with a corrupted checksum.
        {
            let mut raw = std::net::TcpStream::connect(addr).unwrap();
            let frame = wire::Frame {
                version: wire::PROTO_V1,
                code: proto::OP_PING,
                request_id: 2,
                tenant: 1,
                body: Vec::new(),
            };
            let mut bytes = wire::encode_frame(&frame).unwrap();
            let n = bytes.len();
            bytes[n - 1] ^= 0xff;
            raw.write_all(&bytes).unwrap();
        }

        // The server survives both and still answers.
        let mut c = Client::connect(addr, 1).unwrap();
        c.ping().unwrap();
        server.shutdown().unwrap();
    }

    fn fast_retry(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_backoff: std::time::Duration::from_millis(1),
            max_backoff: std::time::Duration::from_millis(5),
            jitter_seed: 42,
        }
    }

    /// Satellite: the opt-in retry policy rides out `Overloaded` sheds
    /// with bounded attempts — it keeps reissuing while the quota is
    /// held, and returns the typed error once attempts are exhausted.
    #[test]
    fn retry_policy_is_bounded_and_reissues_on_overloaded() {
        let db = mem_db();
        let server = start(
            db,
            TenantQuotas { max_sessions: 1, max_inflight: 0, bytes_per_sec: 0 },
        );
        let addr = server.local_addr();
        let mut a = Client::connect(addr, 9).unwrap();
        let mut b = Client::connect(addr, 9).unwrap();
        b.set_retry_policy(Some(fast_retry(3)));

        a.begin().unwrap();
        // All three attempts shed; the typed error survives the policy.
        match b.begin() {
            Err(ClientError::Overloaded { retry_after_ms }) => assert!(retry_after_ms > 0),
            other => panic!("expected Overloaded after retries, got {other:?}"),
        }
        assert_eq!(
            server.admission().shed_sessions,
            3,
            "a capped retrier must have reissued exactly max_attempts times"
        );

        // If the quota frees up mid-backoff, the retry succeeds where a
        // fail-fast client would have surfaced the shed.
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(3));
            a.abort().unwrap();
            a
        });
        b.set_retry_policy(Some(fast_retry(200)));
        b.begin().unwrap();
        b.abort().unwrap();
        let _a = releaser.join().unwrap();
        server.shutdown().unwrap();
    }

    /// Satellite: a dropped connection is transparently reattempted
    /// exactly once for idempotent requests — and never when the
    /// request could mutate state or a transaction is open.
    #[test]
    fn reconnect_is_transparent_for_idempotent_requests_only() {
        let db = mem_db();
        let server = start(Arc::clone(&db), unlimited());
        let addr = server.local_addr();

        let mut c = Client::connect(addr, 1).unwrap();
        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        let m = c.create_material("clone", "m-1", 0).unwrap();
        c.commit().unwrap();

        // Reads and pings survive a severed socket.
        c.sever();
        c.ping().unwrap();
        c.sever();
        assert_eq!(c.find_material("m-1").unwrap(), Some(m));

        // A mutation on a severed socket is never reissued.
        c.begin().unwrap();
        c.sever();
        match c.create_material("clone", "m-2", 1) {
            Err(ClientError::Wire(_)) => {}
            other => panic!("mutations must not reconnect, got {other:?}"),
        }

        // Even an idempotent request is not reissued while this
        // connection believes a transaction is open: the reconnected
        // session would silently lack the transaction.
        assert!(c.in_txn());
        match c.ping() {
            Err(ClientError::Wire(_)) => {}
            other => panic!("no reconnect mid-transaction, got {other:?}"),
        }

        // A fresh client confirms the server aborted the orphan.
        let mut c2 = Client::connect(addr, 1).unwrap();
        assert_eq!(c2.find_material("m-2").unwrap(), None);
        server.shutdown().unwrap();
        assert_eq!(db.open_sessions(), 0);
    }

    /// Replication surface over loopback: subscribe streams real WAL
    /// bytes on a durable store, acks show up in status, and promote on
    /// a primary (no hook installed) is a typed error.
    #[test]
    fn replication_requests_round_trip_over_loopback() {
        use labflow_storage::{decode_shipped, OStore, Options, SimVfs, Vfs};
        let sim: Arc<dyn Vfs> = Arc::new(SimVfs::new(7));
        let store: Arc<dyn StorageManager> = Arc::new(
            OStore::create_with(sim, &std::path::PathBuf::from("/sim/db"), Options::default())
                .unwrap(),
        );
        let from = store.replication_lsn().unwrap();
        let db = Arc::new(LabBase::create(store).unwrap());
        let server = start(Arc::clone(&db), unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();

        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        c.create_material("clone", "m-1", 0).unwrap();
        c.commit().unwrap();

        let chunk = c.repl_subscribe(11, from, 1 << 18).unwrap();
        assert_eq!(chunk.start, from);
        assert!(chunk.end > chunk.start, "commits must be visible in the stream");
        let recs = decode_shipped(chunk.start, &chunk.bytes).unwrap();
        assert!(!recs.is_empty());

        c.repl_ack(11, chunk.end).unwrap();
        let status = c.repl_status().unwrap();
        assert!(status.lsn >= chunk.end);
        assert_eq!(status.followers, vec![(11, chunk.end)]);

        match c.repl_promote() {
            Err(ClientError::Server { code, .. }) => assert_eq!(code, proto::EC_REPL),
            other => panic!("promote on a primary must be typed, got {other:?}"),
        }
        server.shutdown().unwrap();
    }

    /// With `ack_quorum` set, a commit answers only after enough
    /// followers ack its WAL offset; a lagging quorum is a typed error
    /// that names the gap (the commit itself is already durable).
    #[test]
    fn commit_waits_for_ack_quorum() {
        use labflow_storage::{OStore, Options, SimVfs, Vfs};
        let sim: Arc<dyn Vfs> = Arc::new(SimVfs::new(9));
        let store: Arc<dyn StorageManager> = Arc::new(
            OStore::create_with(sim, &std::path::PathBuf::from("/sim/db"), Options::default())
                .unwrap(),
        );
        let db = Arc::new(LabBase::create(store).unwrap());
        let config = ServerConfig {
            addr: "127.0.0.1:0".into(),
            quotas: unlimited(),
            ack_quorum: 1,
            ack_timeout: std::time::Duration::from_millis(50),
            ..ServerConfig::default()
        };
        let server = Server::start(Arc::clone(&db), config).unwrap();
        let addr = server.local_addr();
        let mut c = Client::connect(addr, 1).unwrap();

        // No follower has acked anything: the quorum window lapses.
        c.begin().unwrap();
        c.define_material_class("clone", None).unwrap();
        match c.commit() {
            Err(ClientError::Server { code, message }) => {
                assert_eq!(code, proto::EC_REPL);
                assert!(message.contains("durable"), "message should say the commit is durable: {message}");
            }
            other => panic!("expected quorum-lag error, got {other:?}"),
        }
        // ...but the commit itself landed.
        let mut reader = Client::connect(addr, 1).unwrap();
        reader.begin().unwrap();
        reader.create_material("clone", "m-1", 0).unwrap();

        // A follower acking at the tail un-blocks subsequent commits.
        let mut follower = Client::connect(addr, 2).unwrap();
        let lsn = follower.repl_status().unwrap().lsn;
        // Ack generously past the tail: every commit below it is covered.
        follower.repl_ack(21, lsn + (1 << 20)).unwrap();
        reader.commit().unwrap();
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_request_sets_the_flag() {
        let db = mem_db();
        let server = start(db, unlimited());
        let mut c = Client::connect(server.local_addr(), 1).unwrap();
        c.shutdown_server().unwrap();
        assert!(server.shutdown_requested());
        server.shutdown().unwrap();
    }
}
