//! `labflow-harness` — regenerate every table and figure of the
//! LabFlow-1 paper in one run.
//!
//! ```text
//! labflow-harness [OPTIONS] [EXPERIMENT...]
//! ```
//!
//! See `--help` for the experiment list and options.

use std::path::PathBuf;
use std::process::ExitCode;

use labflow_core::{experiments, BenchConfig};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("labflow-harness: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut cfg = BenchConfig::default();
    let mut out_dir = PathBuf::from("results");
    let mut work_dir =
        std::env::temp_dir().join(format!("labflow-harness-{}", std::process::id()));
    let mut ids: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--clones" => {
                cfg.base_clones =
                    value("--clones")?.parse().map_err(|e| format!("--clones: {e}"))?
            }
            "--buffer-pages" => {
                cfg.buffer_pages = value("--buffer-pages")?
                    .parse()
                    .map_err(|e| format!("--buffer-pages: {e}"))?
            }
            "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--smoke" => {
                cfg = BenchConfig { seed: cfg.seed, ..BenchConfig::smoke() };
            }
            "--out" => out_dir = PathBuf::from(value("--out")?),
            "--work" => work_dir = PathBuf::from(value("--work")?),
            "--help" | "-h" => {
                println!("{HELP}");
                return Ok(());
            }
            id if !id.starts_with('-') => ids.push(id.to_string()),
            other => return Err(format!("unknown option '{other}' (try --help)")),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = experiments::ALL_IDS.iter().map(|s| s.to_string()).collect();
    }

    std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir:?}: {e}"))?;
    std::fs::create_dir_all(&work_dir).map_err(|e| format!("creating {work_dir:?}: {e}"))?;

    println!(
        "LabFlow-1 harness: {} experiment(s), 1X = {} clones, pool = {} pages, seed = {:#x}\n",
        ids.len(),
        cfg.base_clones,
        cfg.buffer_pages,
        cfg.seed
    );

    for id in &ids {
        let started = std::time::Instant::now();
        let report = experiments::run(id, &cfg, &work_dir).map_err(|e| format!("{id}: {e}"))?;
        println!(
            "==== {} — {} ({:.1}s)\n",
            report.id,
            report.title,
            started.elapsed().as_secs_f64()
        );
        println!("{}", report.text);
        let txt = out_dir.join(format!("{id}.txt"));
        std::fs::write(&txt, &report.text).map_err(|e| format!("writing {txt:?}: {e}"))?;
        let json = out_dir.join(format!("{id}.json"));
        let body = serde_json::to_string_pretty(&report.json)
            .map_err(|e| format!("serializing {id}: {e}"))?;
        std::fs::write(&json, body).map_err(|e| format!("writing {json:?}: {e}"))?;
        if id == "abl-replication" {
            write_bench_replication(&out_dir, &cfg, &report.json)?;
        }
        if id == "abl-multiclient" {
            write_bench_commit(&out_dir, &cfg, &report.json)?;
        }
    }
    println!("results written to {}", out_dir.display());
    std::fs::remove_dir_all(&work_dir).ok();
    Ok(())
}

/// The replication perf-trajectory file: a flat, machine-readable
/// `BENCH_replication.json` (one object per follower count, stable key
/// names) that CI and trend tooling can diff across commits without
/// parsing the experiment's richer per-run artifact.
fn write_bench_replication(
    out_dir: &std::path::Path,
    cfg: &BenchConfig,
    points: &serde_json::Value,
) -> Result<(), String> {
    use serde_json::Value;
    // The trajectory keys, in trend-tool order; everything else in the
    // experiment artifact is run detail, not trajectory.
    const KEYS: [&str; 9] = [
        "followers",
        "ack_quorum",
        "txns_per_sec",
        "lag_p50_us",
        "lag_p99_us",
        "catchup_ms",
        "commit_p50_us",
        "quorum_p50_us",
        "quorum_p99_us",
    ];
    let rows: Vec<Value> = match points {
        Value::Seq(items) => items
            .iter()
            .map(|p| {
                let picked = match p {
                    Value::Map(entries) => KEYS
                        .iter()
                        .filter_map(|k| {
                            entries.iter().find(|(name, _)| name == k).cloned()
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Value::Map(picked)
            })
            .collect(),
        _ => Vec::new(),
    };
    let config = Value::Map(vec![
        ("seed".to_string(), Value::UInt(cfg.seed)),
        ("buffer_pages".to_string(), Value::UInt(cfg.buffer_pages as u64)),
    ]);
    let body = Value::Map(vec![
        ("bench".to_string(), Value::Str("replication".to_string())),
        ("config".to_string(), config),
        ("points".to_string(), Value::Seq(rows)),
    ]);
    let path = out_dir.join("BENCH_replication.json");
    let text = serde_json::to_string_pretty(&body)
        .map_err(|e| format!("serializing BENCH_replication: {e}"))?;
    std::fs::write(&path, text).map_err(|e| format!("writing {path:?}: {e}"))?;
    println!("replication perf trajectory written to {}", path.display());
    Ok(())
}

/// The commit-path perf-trajectory file: a flat `BENCH_commit.json`
/// (one object per multi-client point, stable key names) tracking
/// group-commit throughput and batching across commits — the numbers
/// the pipelined log-writer is on the hook for.
fn write_bench_commit(
    out_dir: &std::path::Path,
    cfg: &BenchConfig,
    points: &serde_json::Value,
) -> Result<(), String> {
    use serde_json::Value;
    const KEYS: [&str; 7] =
        ["version", "clients", "supported", "steps_per_sec", "commits", "retries", "wal_syncs"];
    let rows: Vec<Value> = match points {
        Value::Seq(items) => items
            .iter()
            .map(|p| {
                let picked = match p {
                    Value::Map(entries) => KEYS
                        .iter()
                        .filter_map(|k| {
                            entries.iter().find(|(name, _)| name == k).cloned()
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Value::Map(picked)
            })
            .collect(),
        _ => Vec::new(),
    };
    let config = Value::Map(vec![
        ("seed".to_string(), Value::UInt(cfg.seed)),
        ("buffer_pages".to_string(), Value::UInt(cfg.buffer_pages as u64)),
    ]);
    let body = Value::Map(vec![
        ("bench".to_string(), Value::Str("commit".to_string())),
        ("config".to_string(), config),
        ("points".to_string(), Value::Seq(rows)),
    ]);
    let path = out_dir.join("BENCH_commit.json");
    let text = serde_json::to_string_pretty(&body)
        .map_err(|e| format!("serializing BENCH_commit: {e}"))?;
    std::fs::write(&path, text).map_err(|e| format!("writing {path:?}: {e}"))?;
    println!("commit perf trajectory written to {}", path.display());
    Ok(())
}

const HELP: &str = "\
labflow-harness — regenerate the LabFlow-1 paper's tables and figures

USAGE: labflow-harness [OPTIONS] [EXPERIMENT...]

EXPERIMENTS (default: all)
  fig1-schema          Figure 1: two-level EER schema (structural)
  tab1-storage-schema  Table 1: fixed storage schema (structural)
  figB-workflow-graph  Appendix B: the genome workflow graph
  tab-build            Section 10: build cost per version & interval
  fig-throughput       throughput vs database size
  tab-query-mix        Section 8 query families per version
  tab-evolution        schema evolution mid-stream
  abl-clustering       clustering control vs cache size (ablation)
  abl-concurrency      reader threads during the build (ablation)
  abl-recovery         crash recovery per durability design (ablation)
  abl-multiclient      writer clients vs throughput, group commit (ablation);
                       also emits the BENCH_commit.json trajectory file
  abl-scrub            offline scrub of a recovered store image (ablation)
  abl-snapshot         snapshot scans vs writer throughput (ablation)
  abl-server           networked front end: closed-loop tails + admission (ablation)
  abl-replication      WAL shipping: apply lag + ack-quorum commits (ablation);
                       also emits the BENCH_replication.json trajectory file

OPTIONS
  --clones N         clones at scale 1X (default 1000)
  --buffer-pages N   buffer-pool pages (default 2048 = 8 MiB)
  --seed N           workload seed
  --smoke            tiny configuration (fast sanity pass)
  --out DIR          results directory (default ./results)
  --work DIR         scratch directory for store files
";
