//! # labflow-bench
//!
//! Criterion benches and the `labflow-harness` binary for the LabFlow-1
//! benchmark. Each Criterion group corresponds to one paper artifact
//! (see DESIGN.md's experiment index):
//!
//! | bench target | artifact |
//! |---|---|
//! | `bench_build` | Section-10 build tables (`tab-build-*`) |
//! | `bench_queries` | query-mix table (`tab-query-mix`) |
//! | `bench_evolution` | schema-evolution table (`tab-evolution`) |
//! | `bench_clustering` | clustering ablation (`abl-clustering`) |
//! | `bench_storage` | storage-manager micro-operations |
//!
//! The full paper-shaped runs (all intervals, all versions, the printed
//! tables) live in the `labflow-harness` binary; the Criterion benches
//! measure the same code paths at a size that keeps `cargo bench`
//! turnaround reasonable.

/// Shared helpers for the Criterion benches.
pub mod support {
    use std::path::PathBuf;
    use std::sync::Arc;

    use labbase::LabBase;
    use labflow_core::{BenchConfig, LabSim, ServerVersion};
    use labflow_storage::StorageManager;

    /// A small-but-not-trivial config for Criterion runs.
    pub fn bench_config() -> BenchConfig {
        BenchConfig {
            base_clones: 60,
            buffer_pages: 256,
            checkpoint_every: 500,
            evolution_every: 400,
            ..BenchConfig::default()
        }
    }

    /// Fresh scratch dir for one bench invocation.
    pub fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("labflow-bench-{}-{}", std::process::id(), name));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Build a 1X database for `version` under `dir`; returns the sim
    /// (for its sampling pool), the db, and the store handle.
    pub fn built_db(
        version: ServerVersion,
        cfg: &BenchConfig,
        dir: &std::path::Path,
    ) -> (LabSim, LabBase, Arc<dyn StorageManager>) {
        let vdir = dir.join(version.name().replace('+', "_"));
        std::fs::remove_dir_all(&vdir).ok();
        std::fs::create_dir_all(&vdir).unwrap();
        let store = version.make_store(&vdir, cfg.buffer_pages).unwrap();
        let db = LabBase::create(store.clone()).unwrap();
        let mut sim = LabSim::new(cfg.clone());
        sim.setup(&db).unwrap();
        sim.run_until_clones(&db, cfg.clones_at(1.0) as u64).unwrap();
        db.checkpoint().unwrap();
        (sim, db, store)
    }
}
