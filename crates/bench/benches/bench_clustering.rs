//! Criterion bench for the clustering ablation (`abl-clustering`):
//! cold history walks per storage personality under a small cache —
//! the paper's headline, "the critical importance of being able to
//! control locality of reference to persistent data".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use labflow_bench::support;
use labflow_core::ServerVersion;

fn bench_clustering(c: &mut Criterion) {
    let cfg = labflow_core::BenchConfig {
        buffer_pages: 96, // deliberately starved: DB >> cache
        ..support::bench_config()
    };
    let dir = support::scratch("clustering");

    let mut group = c.benchmark_group("abl-clustering/cold-history-walk");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for version in ServerVersion::PERSISTENT {
        let (mut sim, db, store) = support::built_db(version, &cfg, &dir);
        let mats = sim.sample_materials(64);
        group.bench_with_input(
            BenchmarkId::from_parameter(version.name()),
            &version,
            |b, _| {
                b.iter(|| {
                    store.drop_caches().unwrap();
                    let mut touched = 0usize;
                    for &m in &mats {
                        let _ = db.recent_all(m).unwrap();
                        for entry in db.history(m).unwrap() {
                            let _ = db.step(entry.step).unwrap();
                            touched += 1;
                        }
                    }
                    touched
                });
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_clustering);
criterion_main!(benches);
