//! Criterion micro-benches for the storage managers themselves:
//! allocate / read / update across the backends, hot and cold. These are
//! not a paper artifact — they calibrate the substrate underneath the
//! Section-10 numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use labflow_bench::support;
use labflow_core::ServerVersion;
use labflow_storage::{ClusterHint, Oid, SegmentId, StorageManager};

fn stores() -> Vec<(ServerVersion, std::sync::Arc<dyn StorageManager>, std::path::PathBuf)> {
    let dir = support::scratch("storage-micro");
    ServerVersion::ALL
        .iter()
        .map(|&v| {
            let vdir = dir.join(v.name().replace('+', "_"));
            std::fs::create_dir_all(&vdir).unwrap();
            (v, v.make_store(&vdir, 512).unwrap(), vdir)
        })
        .collect()
}

fn bench_alloc(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/alloc-100B");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Bytes(100));
    for (version, store, _dir) in stores() {
        group.bench_with_input(
            BenchmarkId::from_parameter(version.name()),
            &store,
            |b, store| {
                let payload = [7u8; 100];
                b.iter(|| {
                    let t = store.begin().unwrap();
                    let oid = store
                        .allocate(t, SegmentId::DEFAULT, ClusterHint::NONE, &payload)
                        .unwrap();
                    store.commit(t).unwrap();
                    oid
                });
            },
        );
    }
    group.finish();
}

fn bench_read_hot(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/read-hot");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (version, store, _dir) in stores() {
        // Preload 1000 objects.
        let t = store.begin().unwrap();
        let oids: Vec<Oid> = (0..1000u32)
            .map(|i| {
                store
                    .allocate(t, SegmentId::DEFAULT, ClusterHint::NONE, &i.to_le_bytes())
                    .unwrap()
            })
            .collect();
        store.commit(t).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(version.name()),
            &(store, oids),
            |b, (store, oids)| {
                let mut i = 0usize;
                b.iter(|| {
                    let oid = oids[i % oids.len()];
                    i += 1;
                    store.read(oid).unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/update-in-place");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (version, store, _dir) in stores() {
        let t = store.begin().unwrap();
        let oid = store
            .allocate(t, SegmentId::DEFAULT, ClusterHint::NONE, &[0u8; 64])
            .unwrap();
        store.commit(t).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(version.name()),
            &(store, oid),
            |b, (store, oid)| {
                let mut v = 0u8;
                b.iter(|| {
                    v = v.wrapping_add(1);
                    let t = store.begin().unwrap();
                    store.update(t, *oid, &[v; 64]).unwrap();
                    store.commit(t).unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_checkpoint(c: &mut Criterion) {
    let mut group = c.benchmark_group("storage/checkpoint-after-1k-allocs");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for (version, store, _dir) in stores() {
        group.bench_with_input(
            BenchmarkId::from_parameter(version.name()),
            &store,
            |b, store| {
                b.iter(|| {
                    let t = store.begin().unwrap();
                    for i in 0..1000u32 {
                        store
                            .allocate(t, SegmentId::DEFAULT, ClusterHint::NONE, &i.to_le_bytes())
                            .unwrap();
                    }
                    store.commit(t).unwrap();
                    store.checkpoint().unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_alloc, bench_read_hot, bench_update, bench_checkpoint);
criterion_main!(benches);
