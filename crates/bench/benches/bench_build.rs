//! Criterion bench for the Section-10 build tables (`tab-build-*`):
//! the database-build workload per server version.
//!
//! Measures the full graph-driven insert stream (steps + interleaved
//! queries) at a Criterion-friendly scale; the paper-shaped interval
//! tables come from `labflow-harness tab-build`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use labbase::LabBase;
use labflow_bench::support;
use labflow_core::{LabSim, ServerVersion};

fn bench_build(c: &mut Criterion) {
    let dir = support::scratch("build");
    let mut group = c.benchmark_group("tab-build/database-build");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for version in ServerVersion::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(version.name()),
            &version,
            |b, &version| {
                b.iter_with_large_drop(|| {
                    let cfg = labflow_core::BenchConfig {
                        base_clones: 20,
                        buffer_pages: 128,
                        ..support::bench_config()
                    };
                    let vdir = dir.join(format!("iter-{}", version.name().replace('+', "_")));
                    std::fs::remove_dir_all(&vdir).ok();
                    std::fs::create_dir_all(&vdir).unwrap();
                    let store = version.make_store(&vdir, cfg.buffer_pages).unwrap();
                    let db = LabBase::create(store).unwrap();
                    let mut sim = LabSim::new(cfg.clone());
                    sim.setup(&db).unwrap();
                    sim.run_until_clones(&db, cfg.clones_at(1.0) as u64).unwrap();
                    db.checkpoint().unwrap();
                    db
                });
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
