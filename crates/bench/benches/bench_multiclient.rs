//! Criterion bench for the multi-client ablation (`abl-multiclient`):
//! concurrent writer sessions against every backend (single-user ones
//! report unsupported and cost nothing).
//!
//! Measures the full prefill + N-client step-recording run at a
//! Criterion-friendly scale; the paper-shaped sweep (clients 1/2/4/8
//! across every version, with the group-commit table) comes from
//! `labflow-harness abl-multiclient`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use labflow_bench::support;
use labflow_core::runner;

fn bench_multiclient(c: &mut Criterion) {
    let dir = support::scratch("multiclient");
    let mut group = c.benchmark_group("abl-multiclient/writer-clients");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for clients in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(clients),
            &clients,
            |b, &clients| {
                b.iter(|| {
                    let cfg = labflow_core::BenchConfig {
                        base_clones: 64,
                        buffer_pages: 128,
                        ..support::bench_config()
                    };
                    let points = runner::run_multiclient(&cfg, &[clients], &dir).unwrap();
                    assert!(points.iter().any(|p| p.supported && p.steps > 0));
                    points
                });
            },
        );
    }
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_multiclient);
criterion_main!(benches);
