//! Criterion bench for the query-mix table (`tab-query-mix`): the
//! Section-8 query families against a pre-built database, per version.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use labflow_bench::support;
use labflow_core::ServerVersion;
use labflow_workflow::genome;

fn bench_queries(c: &mut Criterion) {
    let cfg = support::bench_config();
    let dir = support::scratch("queries");

    for version in [ServerVersion::OStore, ServerVersion::Texas, ServerVersion::OStoreMm] {
        let (mut sim, db, store) = support::built_db(version, &cfg, &dir);
        let mats = sim.sample_materials(256);

        let mut group = c.benchmark_group(format!("tab-query-mix/{}", version.name()));
        group.measurement_time(std::time::Duration::from_secs(2));
        group.warm_up_time(std::time::Duration::from_millis(500));

        group.bench_function(BenchmarkId::from_parameter("recent-lookup"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let m = mats[i % mats.len()];
                i += 1;
                db.recent(m, "quality").unwrap()
            });
        });

        group.bench_function(BenchmarkId::from_parameter("recent-lookup-cold"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                if i.is_multiple_of(64) {
                    store.drop_caches().unwrap();
                }
                let m = mats[i % mats.len()];
                i += 1;
                db.recent(m, "quality").unwrap()
            });
        });

        group.bench_function(BenchmarkId::from_parameter("tracking"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let m = mats[i % mats.len()];
                i += 1;
                (db.state_of(m).unwrap(), db.history_len(m).unwrap())
            });
        });

        group.bench_function(BenchmarkId::from_parameter("as-of"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let m = mats[i % mats.len()];
                i += 1;
                db.as_of(m, "quality", 50).unwrap()
            });
        });

        group.bench_function(BenchmarkId::from_parameter("state-count"), |b| {
            b.iter(|| db.count_in_state(genome::WAITING_FOR_SEQUENCING).unwrap());
        });

        group.bench_function(BenchmarkId::from_parameter("report-sequences"), |b| {
            b.iter(|| db.collect_attr("clone", "sequence").unwrap());
        });

        group.bench_function(BenchmarkId::from_parameter("counting-scan"), |b| {
            b.iter(|| db.count_class_scan("tclone").unwrap());
        });

        group.finish();
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_lql(c: &mut Criterion) {
    let cfg = support::bench_config();
    let dir = support::scratch("lql");
    let (_sim, db, _store) = support::built_db(ServerVersion::OStoreMm, &cfg, &dir);
    let program = lql::stdlib::labflow_program();

    let mut group = c.benchmark_group("tab-query-mix/LQL");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("count-in-state", |b| {
        let session = lql::Session::new(&db, &program);
        b.iter(|| session.query("count_in_state(clone, finished, N)").unwrap());
    });
    group.bench_function("good-quality-scan", |b| {
        let session = lql::Session::new(&db, &program);
        b.iter(|| session.query_limit("good_quality(M, Q)", 25).unwrap());
    });
    group.bench_function("parse-only", |b| {
        b.iter(|| {
            lql::parse_query(
                "state(M, waiting_for_sequencing), recent(M, quality, Q), Q >= 0.9",
            )
            .unwrap()
        });
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_queries, bench_lql);
criterion_main!(benches);
