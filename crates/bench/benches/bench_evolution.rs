//! Criterion bench for the schema-evolution table (`tab-evolution`):
//! the cost of redefining a step class mid-stream, versus recording a
//! step — the paper's claim is that evolution is constant-time and never
//! migrates instances.

use criterion::{criterion_group, criterion_main, Criterion};

use labbase::schema::AttrDef;
use labbase::AttrType;
use labflow_bench::support;
use labflow_core::ServerVersion;

fn bench_evolution(c: &mut Criterion) {
    let cfg = support::bench_config();
    let dir = support::scratch("evolution");
    let (_sim, db, _store) = support::built_db(ServerVersion::OStoreMm, &cfg, &dir);

    let mut group = c.benchmark_group("tab-evolution");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("redefine-step-class", |b| {
        let mut rev = 0u64;
        b.iter(|| {
            rev += 1;
            let attrs = vec![
                AttrDef { name: "sequence".into(), ty: AttrType::Dna },
                AttrDef { name: "quality".into(), ty: AttrType::Real },
                AttrDef { name: "read_length".into(), ty: AttrType::Int },
                AttrDef { name: "machine".into(), ty: AttrType::Str },
                AttrDef { name: "outcome".into(), ty: AttrType::Str },
                AttrDef { name: format!("rev_{rev}"), ty: AttrType::Str },
            ];
            let txn = db.begin().unwrap();
            db.redefine_step_class(txn, "determine_sequence", attrs).unwrap();
            db.commit(txn).unwrap();
        });
    });

    group.bench_function("record-step-baseline", |b| {
        // One fresh material so histories do not balloon across samples.
        let txn = db.begin().unwrap();
        let m = db.create_material(txn, "tclone", "bench-subject", 0).unwrap();
        db.commit(txn).unwrap();
        let mut t = 1i64;
        b.iter(|| {
            t += 1;
            let txn = db.begin().unwrap();
            db.record_step(
                txn,
                "prep_tclone",
                t,
                &[m],
                vec![
                    ("yield_ng".into(), labbase::Value::Real(300.0)),
                    ("gel_lane".into(), labbase::Value::Int(4)),
                ],
            )
            .unwrap();
            db.commit(txn).unwrap();
        });
    });

    group.bench_function("old-version-decode", |b| {
        // Reading a step recorded under an old class version must not be
        // slower than reading a current one: versions are just data.
        let txn = db.begin().unwrap();
        let m = db.create_material(txn, "tclone", "old-version-subject", 0).unwrap();
        let s = db
            .record_step(
                txn,
                "prep_tclone",
                1,
                &[m],
                vec![("gel_lane".into(), labbase::Value::Int(1))],
            )
            .unwrap();
        db.redefine_step_class(
            txn,
            "prep_tclone",
            vec![
                AttrDef { name: "yield_ng".into(), ty: AttrType::Real },
                AttrDef { name: "gel_lane".into(), ty: AttrType::Int },
                AttrDef { name: "outcome".into(), ty: AttrType::Str },
                AttrDef { name: "robot_id".into(), ty: AttrType::Str },
            ],
        )
        .unwrap();
        db.commit(txn).unwrap();
        b.iter(|| db.step_schema(s).unwrap());
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_evolution);
criterion_main!(benches);
