//! Property-based tests for the workflow engine: outcome selection is
//! weight-faithful, state discipline is never violated, and random
//! graph mutations are caught by validation.

use std::sync::Arc;

use proptest::prelude::*;

use labbase::LabBase;
use labflow_storage::{MemStore, StorageManager};
use labflow_workflow::{genome, WorkflowEngine, WorkflowError};

fn db_with_schema() -> LabBase {
    let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
    let db = LabBase::create(store).unwrap();
    let graph = genome::genome_workflow();
    let engine = WorkflowEngine::new(&graph).unwrap();
    let t = db.begin().unwrap();
    engine.setup(&db, t).unwrap();
    db.commit(t).unwrap();
    db
}

proptest! {
    /// choose_outcome always returns a declared outcome label, for any
    /// sample in [0, 1] and any step of the genome graph.
    #[test]
    fn choose_outcome_always_valid(sample in 0.0f64..=1.0, step_idx in 0usize..7) {
        let graph = genome::genome_workflow();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let step = &graph.steps[step_idx % graph.steps.len()];
        let label = engine.choose_outcome(&step.name, sample).unwrap();
        prop_assert!(step.outcomes.iter().any(|o| o.label == label));
    }

    /// Empirical outcome frequencies converge to the declared weights.
    #[test]
    fn choose_outcome_frequencies_track_weights(seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let graph = genome::genome_workflow();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let step = graph.step("determine_sequence").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 4000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            let label = engine.choose_outcome("determine_sequence", rng.gen()).unwrap();
            *counts.entry(label.to_string()).or_insert(0usize) += 1;
        }
        let total: f64 = step.outcomes.iter().map(|o| o.weight).sum();
        for o in &step.outcomes {
            let expected = o.weight / total;
            let got = *counts.get(&o.label).unwrap_or(&0) as f64 / n as f64;
            prop_assert!(
                (got - expected).abs() < 0.04,
                "outcome {} frequency {:.3} vs weight {:.3}", o.label, got, expected
            );
        }
    }

    /// A random walk of execute() calls never leaves a material in a
    /// state its class does not declare, and never accepts a step from
    /// the wrong state.
    #[test]
    fn state_discipline_holds_under_random_driving(
        choices in proptest::collection::vec((0usize..7, 0.0f64..1.0), 1..60)
    ) {
        let db = db_with_schema();
        let graph = genome::genome_workflow();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        let tc = engine.inject(&db, t, "tclone", "t0", genome::PICKED, 0).unwrap();
        for (vt, (step_idx, sample)) in (1i64..).zip(choices.iter()) {
            let step = &graph.steps[step_idx % graph.steps.len()];
            let outcome = engine.choose_outcome(&step.name, *sample).unwrap().to_string();
            match engine.execute(&db, t, &step.name, &[tc], &outcome, vec![], &[], vt) {
                Ok(_) => {
                    // Accepted: tc must now be in the declared outcome
                    // state. All of this is uncommitted, so read the
                    // transaction's own view.
                    let now = db.state_of_in(t, tc).unwrap().unwrap();
                    let declared = step.outcomes.iter().find(|o| o.label == outcome).unwrap();
                    prop_assert_eq!(&now, &declared.to);
                    prop_assert!(graph.state(&now).is_some());
                    prop_assert_eq!(&graph.state(&now).unwrap().class, "tclone");
                }
                Err(WorkflowError::WrongState { expected, actual, .. }) => {
                    // Rejected: the engine must be telling the truth.
                    prop_assert_eq!(actual, db.state_of_in(t, tc).unwrap());
                    prop_assert_eq!(&expected, &step.from);
                }
                Err(other) => return Err(TestCaseError::fail(format!("unexpected: {other}"))),
            }
        }
        db.commit(t).unwrap();
    }

    /// Randomly corrupting the genome graph is caught by validate().
    #[test]
    fn random_corruptions_fail_validation(which in 0usize..5, idx in any::<usize>()) {
        let mut g = genome::genome_workflow();
        match which {
            0 => {
                // Break an outcome target.
                let s = idx % g.steps.len();
                if let Some(o) = g.steps[s].outcomes.first_mut() {
                    o.to = "no_such_state".into();
                }
            }
            1 => {
                // Rename a state out from under its steps.
                let s = idx % g.states.len();
                g.states[s].name = "renamed_away".into();
            }
            2 => {
                // Negative weight.
                let s = idx % g.steps.len();
                if let Some(o) = g.steps[s].outcomes.first_mut() {
                    o.weight = -1.0;
                }
            }
            3 => {
                // Duplicate step name.
                let s = idx % g.steps.len();
                let dup = g.steps[s].clone();
                g.steps.push(dup);
            }
            _ => {
                // Zero batch.
                let s = idx % g.steps.len();
                g.steps[s].batch = 0;
            }
        }
        prop_assert!(!g.validate().is_empty(), "corruption {} slipped through", which);
    }
}
