//! # labflow-workflow
//!
//! Workflow graphs for the LabFlow-1 benchmark (Bonner, Shrufi & Rozen,
//! EDBT 1996): states, weighted step outcomes, spawns, validation, a
//! text renderer for the paper's Appendix-B figure, and an execution
//! engine that applies graph steps to a LabBase database.
//!
//! "The workflow graph largely determines the workload for the DBMS.
//! Appendix B gives an example of a workflow graph, one that forms the
//! basis of the workload for the LabFlow-1 benchmark." —
//! [`genome::genome_workflow`] reconstructs that graph.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use labbase::LabBase;
//! use labflow_storage::{MemStore, StorageManager};
//! use labflow_workflow::{genome, WorkflowEngine};
//!
//! let graph = genome::genome_workflow();
//! assert!(graph.validate().is_empty());
//!
//! let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
//! let db = LabBase::create(store).unwrap();
//! let engine = WorkflowEngine::new(&graph).unwrap();
//! let t = db.begin().unwrap();
//! engine.setup(&db, t).unwrap();
//! let c = engine.inject(&db, t, "clone", "clone-1", genome::RECEIVED, 0).unwrap();
//! engine.execute(&db, t, "prep_clone", &[c], "ok", vec![], &[], 1).unwrap();
//! db.commit(t).unwrap();
//! assert_eq!(db.state_of(c).unwrap().as_deref(), Some(genome::READY_FOR_TRANSPOSITION));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod genome;
mod graph;

pub use engine::{CoInvolved, Result, WorkflowEngine, WorkflowError};
pub use graph::{Outcome, Spawn, StateDef, StepDef, WorkflowGraph};
