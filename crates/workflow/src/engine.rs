//! The workflow execution engine: applies graph-declared steps to a
//! LabBase database, enforcing state discipline.
//!
//! The engine is the glue the paper leaves implicit: "the ordering of
//! workflow steps is made explicit in workflow graphs, while data
//! dependencies are implicit in application programs." Here the
//! application program (the benchmark workload) calls
//! [`WorkflowEngine::execute`], and the engine enforces the graph.

use std::fmt;

use labbase::{LabBase, LabError, MaterialId, StepId, ValidTime, Value};
use labflow_storage::TxnId;

use crate::graph::{StepDef, WorkflowGraph};

/// Errors from the workflow engine.
#[derive(Debug)]
pub enum WorkflowError {
    /// The graph failed validation.
    InvalidGraph(Vec<String>),
    /// No such step kind in the graph.
    UnknownStep(String),
    /// No such outcome label on the step.
    UnknownOutcome {
        /// Step name.
        step: String,
        /// Offending label.
        outcome: String,
    },
    /// A material was not in the step's source state.
    WrongState {
        /// The material.
        material: MaterialId,
        /// State required by the step.
        expected: String,
        /// State the material is actually in.
        actual: Option<String>,
    },
    /// An error from LabBase.
    Lab(LabError),
}

impl fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkflowError::InvalidGraph(problems) => {
                write!(f, "invalid workflow graph: {}", problems.join("; "))
            }
            WorkflowError::UnknownStep(s) => write!(f, "unknown workflow step '{s}'"),
            WorkflowError::UnknownOutcome { step, outcome } => {
                write!(f, "step '{step}' has no outcome '{outcome}'")
            }
            WorkflowError::WrongState { material, expected, actual } => write!(
                f,
                "material {material} must be in state '{expected}' but is in {actual:?}"
            ),
            WorkflowError::Lab(e) => write!(f, "labbase: {e}"),
        }
    }
}

impl std::error::Error for WorkflowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkflowError::Lab(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LabError> for WorkflowError {
    fn from(e: LabError) -> Self {
        WorkflowError::Lab(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, WorkflowError>;

/// Secondary materials involved in a step execution, each with an
/// optional state transition (e.g. `assemble_sequence` involves the
/// clone's incorporated tclones and moves them to `incorporated`).
#[derive(Clone, Debug)]
pub struct CoInvolved {
    /// The material.
    pub material: MaterialId,
    /// New state, if the step moves it.
    pub to_state: Option<String>,
}

/// The execution engine. Cheap to construct; borrows the graph.
pub struct WorkflowEngine<'g> {
    graph: &'g WorkflowGraph,
}

impl<'g> WorkflowEngine<'g> {
    /// Create an engine over a **validated** graph.
    pub fn new(graph: &'g WorkflowGraph) -> Result<WorkflowEngine<'g>> {
        let problems = graph.validate();
        if problems.is_empty() {
            Ok(WorkflowEngine { graph })
        } else {
            Err(WorkflowError::InvalidGraph(problems))
        }
    }

    /// The graph driving this engine.
    pub fn graph(&self) -> &WorkflowGraph {
        self.graph
    }

    /// Register the graph's schema into `db` (classes and step classes).
    pub fn setup(&self, db: &LabBase, txn: TxnId) -> Result<()> {
        self.graph.register(db, txn)?;
        Ok(())
    }

    fn step_def(&self, name: &str) -> Result<&StepDef> {
        self.graph.step(name).ok_or_else(|| WorkflowError::UnknownStep(name.to_string()))
    }

    /// Materials currently waiting for `step`, up to its batch size.
    pub fn pick_batch(&self, db: &LabBase, step: &str) -> Result<Vec<MaterialId>> {
        let def = self.step_def(step)?;
        Ok(db.in_state(&def.from, def.batch)?)
    }

    /// Materials waiting for `step`, up to `limit`.
    pub fn pick(&self, db: &LabBase, step: &str, limit: usize) -> Result<Vec<MaterialId>> {
        let def = self.step_def(step)?;
        Ok(db.in_state(&def.from, limit)?)
    }

    /// Create a material and place it in `state` — used both for
    /// workflow arrivals (initial states) and step spawns.
    pub fn inject(
        &self,
        db: &LabBase,
        txn: TxnId,
        class: &str,
        name: &str,
        state: &str,
        vt: ValidTime,
    ) -> Result<MaterialId> {
        if self.graph.state(state).is_none() {
            return Err(WorkflowError::UnknownStep(format!("state '{state}'")));
        }
        let m = db.create_material(txn, class, name, vt)?;
        db.set_state(txn, m, state, vt)?;
        Ok(m)
    }

    /// Execute one step: verify every primary material is in the step's
    /// source state, record the event (with the outcome label as an
    /// attribute), and transition primaries to the outcome's target
    /// state and co-involved materials to their given states.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &self,
        db: &LabBase,
        txn: TxnId,
        step: &str,
        materials: &[MaterialId],
        outcome: &str,
        mut attrs: Vec<(String, Value)>,
        co_involved: &[CoInvolved],
        vt: ValidTime,
    ) -> Result<StepId> {
        let def = self.step_def(step)?;
        let out = def
            .outcomes
            .iter()
            .find(|o| o.label == outcome)
            .ok_or_else(|| WorkflowError::UnknownOutcome {
                step: step.to_string(),
                outcome: outcome.to_string(),
            })?;
        for &m in materials {
            // Prior transitions inside this same transaction (e.g. from
            // `inject`) are still pending, so check through the txn view.
            let actual = db.state_of_in(txn, m)?;
            if actual.as_deref() != Some(def.from.as_str()) {
                return Err(WorkflowError::WrongState {
                    material: m,
                    expected: def.from.clone(),
                    actual,
                });
            }
        }
        attrs.push(("outcome".to_string(), Value::Str(outcome.to_string())));
        let mut involved: Vec<MaterialId> = materials.to_vec();
        involved.extend(co_involved.iter().map(|c| c.material));
        let sid = db.record_step(txn, step, vt, &involved, attrs)?;
        for &m in materials {
            db.set_state(txn, m, &out.to, vt)?;
        }
        for c in co_involved {
            if let Some(to) = &c.to_state {
                db.set_state(txn, c.material, to, vt)?;
            }
        }
        Ok(sid)
    }

    /// Weighted outcome choice for `step` given a uniform sample in
    /// `[0, 1)`. Deterministic for a given sample — the workload drives
    /// this from its seeded RNG.
    pub fn choose_outcome(&self, step: &str, sample: f64) -> Result<&str> {
        let def = self.step_def(step)?;
        let total: f64 = def.outcomes.iter().map(|o| o.weight).sum();
        let mut x = sample.clamp(0.0, 0.999_999) * total;
        for o in &def.outcomes {
            if x < o.weight {
                return Ok(&o.label);
            }
            x -= o.weight;
        }
        // Graph validation rejects steps with no outcomes, so this is
        // only reachable through float rounding on the last weight.
        let last = def.outcomes.last().ok_or_else(|| WorkflowError::InvalidGraph(
            vec![format!("step `{step}` has no outcomes")],
        ))?;
        Ok(&last.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::{self, genome_workflow};
    use labflow_storage::{MemStore, StorageManager};
    use std::sync::Arc;

    fn setup() -> (LabBase, WorkflowGraph) {
        let store: Arc<dyn StorageManager> = Arc::new(MemStore::ostore_mm());
        let db = LabBase::create(store).unwrap();
        let graph = genome_workflow();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        engine.setup(&db, t).unwrap();
        db.commit(t).unwrap();
        (db, graph)
    }

    #[test]
    fn invalid_graph_rejected() {
        let mut g = genome_workflow();
        g.steps[0].outcomes.clear();
        assert!(matches!(WorkflowEngine::new(&g), Err(WorkflowError::InvalidGraph(_))));
    }

    #[test]
    fn inject_execute_transition_cycle() {
        let (db, graph) = setup();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        let c = engine.inject(&db, t, "clone", "clone-1", genome::RECEIVED, 0).unwrap();
        db.commit(t).unwrap();

        assert_eq!(engine.pick_batch(&db, "prep_clone").unwrap(), vec![c]);

        let t = db.begin().unwrap();
        let sid = engine
            .execute(
                &db,
                t,
                "prep_clone",
                &[c],
                "ok",
                vec![("concentration".into(), Value::Real(120.0))],
                &[],
                5,
            )
            .unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.state_of(c).unwrap().as_deref(), Some(genome::READY_FOR_TRANSPOSITION));
        let info = db.step(sid).unwrap();
        assert_eq!(info.class, "prep_clone");
        assert_eq!(
            info.attrs.iter().find(|(n, _)| n == "outcome").unwrap().1,
            Value::Str("ok".into())
        );
        // Batch for prep_clone is now empty.
        assert!(engine.pick_batch(&db, "prep_clone").unwrap().is_empty());
    }

    #[test]
    fn wrong_state_is_rejected() {
        let (db, graph) = setup();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        let c = engine.inject(&db, t, "clone", "c", genome::RECEIVED, 0).unwrap();
        let err = engine
            .execute(&db, t, "determine_sequence", &[c], "ok", vec![], &[], 1)
            .unwrap_err();
        assert!(matches!(err, WorkflowError::WrongState { .. }));
        db.commit(t).unwrap();
    }

    #[test]
    fn unknown_step_and_outcome_rejected() {
        let (db, graph) = setup();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        let c = engine.inject(&db, t, "clone", "c", genome::RECEIVED, 0).unwrap();
        assert!(matches!(
            engine.execute(&db, t, "no_step", &[c], "ok", vec![], &[], 1),
            Err(WorkflowError::UnknownStep(_))
        ));
        assert!(matches!(
            engine.execute(&db, t, "prep_clone", &[c], "no_outcome", vec![], &[], 1),
            Err(WorkflowError::UnknownOutcome { .. })
        ));
        db.commit(t).unwrap();
    }

    #[test]
    fn co_involved_materials_transition_too() {
        let (db, graph) = setup();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        let clone =
            engine.inject(&db, t, "clone", "c", genome::WAITING_FOR_ASSEMBLY, 0).unwrap();
        let tc1 = engine
            .inject(&db, t, "tclone", "t1", genome::WAITING_FOR_INCORPORATION, 0)
            .unwrap();
        let tc2 = engine
            .inject(&db, t, "tclone", "t2", genome::WAITING_FOR_INCORPORATION, 0)
            .unwrap();
        let sid = engine
            .execute(
                &db,
                t,
                "assemble_sequence",
                &[clone],
                "complete",
                vec![("n_reads".into(), Value::Int(2))],
                &[
                    CoInvolved { material: tc1, to_state: Some(genome::INCORPORATED.into()) },
                    CoInvolved { material: tc2, to_state: Some(genome::INCORPORATED.into()) },
                ],
                9,
            )
            .unwrap();
        db.commit(t).unwrap();
        assert_eq!(db.state_of(clone).unwrap().as_deref(), Some(genome::WAITING_FOR_BLAST));
        assert_eq!(db.state_of(tc1).unwrap().as_deref(), Some(genome::INCORPORATED));
        // The step appears in every involved material's history.
        assert_eq!(db.history(tc2).unwrap()[0].step, sid);
        assert_eq!(db.step(sid).unwrap().materials.len(), 3);
    }

    #[test]
    fn choose_outcome_is_weight_proportional() {
        let (_db, graph) = setup();
        let engine = WorkflowEngine::new(&graph).unwrap();
        // determine_sequence: ok 0.80, fail 0.15, off_target 0.05.
        assert_eq!(engine.choose_outcome("determine_sequence", 0.0).unwrap(), "ok");
        assert_eq!(engine.choose_outcome("determine_sequence", 0.79).unwrap(), "ok");
        assert_eq!(engine.choose_outcome("determine_sequence", 0.81).unwrap(), "fail");
        assert_eq!(engine.choose_outcome("determine_sequence", 0.96).unwrap(), "off_target");
        assert_eq!(engine.choose_outcome("determine_sequence", 1.0).unwrap(), "off_target");
    }

    #[test]
    fn full_tclone_lifecycle() {
        let (db, graph) = setup();
        let engine = WorkflowEngine::new(&graph).unwrap();
        let t = db.begin().unwrap();
        let clone = engine.inject(&db, t, "clone", "c", genome::WAITING_FOR_ASSEMBLY, 0).unwrap();
        let tc = engine.inject(&db, t, "tclone", "t", genome::PICKED, 0).unwrap();
        engine
            .execute(
                &db,
                t,
                "associate_tclone",
                &[tc],
                "ok",
                vec![("parent".into(), Value::Ref(clone.oid()))],
                &[],
                1,
            )
            .unwrap();
        engine
            .execute(&db, t, "prep_tclone", &[tc], "ok", vec![("gel_lane".into(), 3i64.into())], &[], 2)
            .unwrap();
        engine
            .execute(
                &db,
                t,
                "determine_sequence",
                &[tc],
                "fail",
                vec![("quality".into(), Value::Real(0.1))],
                &[],
                3,
            )
            .unwrap();
        // Retry succeeds.
        engine
            .execute(
                &db,
                t,
                "determine_sequence",
                &[tc],
                "ok",
                vec![
                    ("sequence".into(), Value::dna("ACGTAACC").unwrap()),
                    ("quality".into(), Value::Real(0.93)),
                ],
                &[],
                4,
            )
            .unwrap();
        db.commit(t).unwrap();
        assert_eq!(
            db.state_of(tc).unwrap().as_deref(),
            Some(genome::WAITING_FOR_INCORPORATION)
        );
        assert_eq!(db.history_len(tc).unwrap(), 4);
        // Most-recent quality reflects the retry, not the failure.
        assert_eq!(db.recent(tc, "quality").unwrap().unwrap().value, Value::Real(0.93));
    }
}
