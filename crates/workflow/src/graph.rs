//! Workflow graphs (paper Section 2.2 and Appendix B).
//!
//! "Workflow graphs are based on the idea that each material has a
//! workflow state, and as the material is processed, it moves from one
//! state to another." A graph declares, per material class, the states a
//! material can occupy and the steps that move materials between states.
//! Step outcomes are weighted: real lab steps fail, get retried, or
//! branch — which is what makes the benchmark's event stream realistic.

use std::collections::{HashMap, HashSet};

use labbase::schema::AttrDef;
use labbase::{AttrType, LabBase, Result as LabResult};
use labflow_storage::TxnId;

/// One weighted outcome of a step.
#[derive(Clone, Debug, PartialEq)]
pub struct Outcome {
    /// Outcome label, e.g. `"ok"` or `"fail"`.
    pub label: String,
    /// Relative weight (probability mass) of this outcome.
    pub weight: f64,
    /// State the processed material moves to.
    pub to: String,
}

/// Materials a step creates as a side effect (e.g. transposon insertion
/// creating tclones from a clone).
#[derive(Clone, Debug, PartialEq)]
pub struct Spawn {
    /// Class of the created materials.
    pub class: String,
    /// Their initial workflow state.
    pub initial: String,
    /// Minimum created per execution.
    pub min: usize,
    /// Maximum created per execution.
    pub max: usize,
}

/// A secondary transition a step applies to co-involved materials of
/// another class (e.g. `assemble_sequence` processes a clone but also
/// moves its `waiting_for_incorporation` tclones to `incorporated`).
#[derive(Clone, Debug, PartialEq)]
pub struct CoTransition {
    /// Class of the co-involved materials.
    pub class: String,
    /// State they are drawn from.
    pub from: String,
    /// State they move to.
    pub to: String,
}

/// A step kind: which materials it processes, what it records, and where
/// the materials go next.
#[derive(Clone, Debug, PartialEq)]
pub struct StepDef {
    /// Step-class name (becomes a LabBase step class).
    pub name: String,
    /// Material class the step processes.
    pub class: String,
    /// State it picks materials from.
    pub from: String,
    /// Weighted outcomes.
    pub outcomes: Vec<Outcome>,
    /// Result attribute schema (version 1 of the step class).
    pub attrs: Vec<AttrDef>,
    /// Typical lab batch size (materials per execution).
    pub batch: usize,
    /// Materials created as a side effect.
    pub spawns: Option<Spawn>,
    /// Secondary transitions applied to co-involved materials.
    pub co_transitions: Vec<CoTransition>,
}

/// A workflow state of a material class.
#[derive(Clone, Debug, PartialEq)]
pub struct StateDef {
    /// State name (atoms like `waiting_for_sequencing`).
    pub name: String,
    /// Material class the state belongs to.
    pub class: String,
    /// Whether materials enter the workflow in this state.
    pub initial: bool,
    /// Whether materials in this state are finished.
    pub terminal: bool,
}

/// A complete workflow graph.
#[derive(Clone, Debug, Default)]
pub struct WorkflowGraph {
    /// Graph name.
    pub name: String,
    /// Material classes `(name, parent)`, topologically ordered.
    pub classes: Vec<(String, Option<String>)>,
    /// States.
    pub states: Vec<StateDef>,
    /// Step kinds.
    pub steps: Vec<StepDef>,
}

impl WorkflowGraph {
    /// Look up a state.
    pub fn state(&self, name: &str) -> Option<&StateDef> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Look up a step kind.
    pub fn step(&self, name: &str) -> Option<&StepDef> {
        self.steps.iter().find(|s| s.name == name)
    }

    /// Step kinds that pick from `state`.
    pub fn steps_from(&self, state: &str) -> Vec<&StepDef> {
        self.steps.iter().filter(|s| s.from == state).collect()
    }

    /// Validate the graph; returns the list of problems (empty = valid).
    ///
    /// Checks: unique names; steps reference states of their own class;
    /// outcome weights positive; initial states exist per class; every
    /// state is reachable from an initial or spawn state; non-terminal
    /// states have an outgoing step; terminal states have none.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut seen_classes = HashSet::new();
        for (c, parent) in &self.classes {
            if !seen_classes.insert(c.as_str()) {
                problems.push(format!("duplicate class '{c}'"));
            }
            if let Some(p) = parent {
                if !self.classes.iter().any(|(n, _)| n == p) {
                    problems.push(format!("class '{c}' has unknown parent '{p}'"));
                }
            }
        }
        let mut state_class: HashMap<&str, &str> = HashMap::new();
        for s in &self.states {
            if state_class.insert(&s.name, &s.class).is_some() {
                problems.push(format!("duplicate state '{}'", s.name));
            }
            if !seen_classes.contains(s.class.as_str()) {
                problems.push(format!("state '{}' references unknown class '{}'", s.name, s.class));
            }
            if s.initial && s.terminal {
                problems.push(format!("state '{}' is both initial and terminal", s.name));
            }
        }
        let mut step_names = HashSet::new();
        for step in &self.steps {
            if !step_names.insert(step.name.as_str()) {
                problems.push(format!("duplicate step '{}'", step.name));
            }
            if seen_classes.contains(step.name.as_str()) {
                problems.push(format!("step '{}' collides with a class name", step.name));
            }
            match state_class.get(step.from.as_str()) {
                None => problems.push(format!(
                    "step '{}' picks from unknown state '{}'",
                    step.name, step.from
                )),
                Some(c) if *c != step.class => problems.push(format!(
                    "step '{}' processes class '{}' but picks from a '{c}' state",
                    step.name, step.class
                )),
                _ => {}
            }
            if step.outcomes.is_empty() {
                problems.push(format!("step '{}' has no outcomes", step.name));
            }
            for o in &step.outcomes {
                if o.weight <= 0.0 {
                    problems.push(format!(
                        "step '{}' outcome '{}' has non-positive weight",
                        step.name, o.label
                    ));
                }
                match state_class.get(o.to.as_str()) {
                    None => problems.push(format!(
                        "step '{}' outcome '{}' targets unknown state '{}'",
                        step.name, o.label, o.to
                    )),
                    Some(c) if *c != step.class => problems.push(format!(
                        "step '{}' outcome '{}' crosses classes into '{}'",
                        step.name, o.label, o.to
                    )),
                    _ => {}
                }
            }
            if step.batch == 0 {
                problems.push(format!("step '{}' has batch size 0", step.name));
            }
            for ct in &step.co_transitions {
                for (role, st) in [("from", &ct.from), ("to", &ct.to)] {
                    match state_class.get(st.as_str()) {
                        None => problems.push(format!(
                            "step '{}' co-transition {role} state '{st}' is unknown",
                            step.name
                        )),
                        Some(c) if *c != ct.class => problems.push(format!(
                            "step '{}' co-transition {role} state '{st}' is not a '{}' state",
                            step.name, ct.class
                        )),
                        _ => {}
                    }
                }
            }
            if let Some(spawn) = &step.spawns {
                if !seen_classes.contains(spawn.class.as_str()) {
                    problems.push(format!(
                        "step '{}' spawns unknown class '{}'",
                        step.name, spawn.class
                    ));
                }
                match state_class.get(spawn.initial.as_str()) {
                    None => problems.push(format!(
                        "step '{}' spawns into unknown state '{}'",
                        step.name, spawn.initial
                    )),
                    Some(c) if *c != spawn.class => problems.push(format!(
                        "step '{}' spawns class '{}' into a '{c}' state",
                        step.name, spawn.class
                    )),
                    _ => {}
                }
                if spawn.min > spawn.max || spawn.max == 0 {
                    problems.push(format!("step '{}' has an empty spawn range", step.name));
                }
            }
        }

        // Reachability per class from initial + spawn-target states.
        let mut reachable: HashSet<&str> = HashSet::new();
        let mut frontier: Vec<&str> = self
            .states
            .iter()
            .filter(|s| s.initial)
            .map(|s| s.name.as_str())
            .collect();
        for step in &self.steps {
            if let Some(spawn) = &step.spawns {
                frontier.push(spawn.initial.as_str());
            }
        }
        while let Some(state) = frontier.pop() {
            if !reachable.insert(state) {
                continue;
            }
            for step in &self.steps {
                if step.from == state {
                    for o in &step.outcomes {
                        frontier.push(o.to.as_str());
                    }
                }
                for ct in &step.co_transitions {
                    if ct.from == state {
                        frontier.push(ct.to.as_str());
                    }
                }
            }
        }
        for s in &self.states {
            if !reachable.contains(s.name.as_str()) {
                problems.push(format!("state '{}' is unreachable", s.name));
            }
            let outgoing = self.steps.iter().any(|st| {
                st.from == s.name || st.co_transitions.iter().any(|ct| ct.from == s.name)
            });
            if s.terminal && outgoing {
                problems.push(format!("terminal state '{}' has outgoing steps", s.name));
            }
            if !s.terminal && !outgoing {
                problems.push(format!("non-terminal state '{}' is a dead end", s.name));
            }
        }
        for (class, _) in &self.classes {
            // Abstract classes (no states) need no entry point.
            if !self.states.iter().any(|s| &s.class == class) {
                continue;
            }
            let has_entry = self.states.iter().any(|s| &s.class == class && s.initial)
                || self
                    .steps
                    .iter()
                    .any(|st| st.spawns.as_ref().is_some_and(|sp| &sp.class == class));
            if !has_entry {
                problems.push(format!("class '{class}' has no entry point"));
            }
        }
        problems
    }

    /// Register the graph's schema in a LabBase database: material
    /// classes and step classes (with a `state`-ful attribute set).
    pub fn register(&self, db: &LabBase, txn: TxnId) -> LabResult<()> {
        for (class, parent) in &self.classes {
            db.define_material_class(txn, class, parent.as_deref())?;
        }
        for step in &self.steps {
            let mut attrs = step.attrs.clone();
            // Every step records its outcome label.
            attrs.push(AttrDef { name: "outcome".into(), ty: AttrType::Str });
            db.define_step_class(txn, &step.name, attrs)?;
        }
        Ok(())
    }

    /// Render the graph as fixed-width text — the reproduction of the
    /// paper's Appendix-B figure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("workflow graph: {}\n", self.name));
        for (class, parent) in &self.classes {
            match parent {
                Some(p) => out.push_str(&format!("\nmaterial class {class} (is-a {p})\n")),
                None => out.push_str(&format!("\nmaterial class {class}\n")),
            }
            for s in self.states.iter().filter(|s| &s.class == class) {
                let mut flags = Vec::new();
                if s.initial {
                    flags.push("initial");
                }
                if s.terminal {
                    flags.push("terminal");
                }
                let flags =
                    if flags.is_empty() { String::new() } else { format!(" [{}]", flags.join(",")) };
                out.push_str(&format!("  state {}{}\n", s.name, flags));
                for step in self.steps_from(&s.name) {
                    let arms: Vec<String> = step
                        .outcomes
                        .iter()
                        .map(|o| format!("{} {:.0}% -> {}", o.label, o.weight * 100.0, o.to))
                        .collect();
                    out.push_str(&format!(
                        "    --{}(batch {})--> {}\n",
                        step.name,
                        step.batch,
                        arms.join(" | ")
                    ));
                    if let Some(spawn) = &step.spawns {
                        out.push_str(&format!(
                            "      spawns {}..{} {} into {}\n",
                            spawn.min, spawn.max, spawn.class, spawn.initial
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use labbase::schema::attrs;

    fn tiny() -> WorkflowGraph {
        WorkflowGraph {
            name: "tiny".into(),
            classes: vec![("widget".into(), None)],
            states: vec![
                StateDef { name: "raw".into(), class: "widget".into(), initial: true, terminal: false },
                StateDef {
                    name: "done".into(),
                    class: "widget".into(),
                    initial: false,
                    terminal: true,
                },
            ],
            steps: vec![StepDef {
                name: "polish".into(),
                class: "widget".into(),
                from: "raw".into(),
                outcomes: vec![
                    Outcome { label: "ok".into(), weight: 0.9, to: "done".into() },
                    Outcome { label: "redo".into(), weight: 0.1, to: "raw".into() },
                ],
                attrs: attrs(&[("gloss", AttrType::Real)]),
                batch: 4,
                spawns: None,
                co_transitions: vec![],
            }],
        }
    }

    #[test]
    fn tiny_graph_is_valid() {
        assert_eq!(tiny().validate(), Vec::<String>::new());
    }

    #[test]
    fn lookups() {
        let g = tiny();
        assert!(g.state("raw").unwrap().initial);
        assert_eq!(g.step("polish").unwrap().batch, 4);
        assert_eq!(g.steps_from("raw").len(), 1);
        assert!(g.steps_from("done").is_empty());
    }

    #[test]
    fn validation_catches_unknown_state() {
        let mut g = tiny();
        g.steps[0].from = "nowhere".into();
        let problems = g.validate();
        assert!(problems.iter().any(|p| p.contains("unknown state")));
    }

    #[test]
    fn validation_catches_dead_end_and_unreachable() {
        let mut g = tiny();
        g.states.push(StateDef {
            name: "limbo".into(),
            class: "widget".into(),
            initial: false,
            terminal: false,
        });
        let problems = g.validate();
        assert!(problems.iter().any(|p| p.contains("unreachable")));
        assert!(problems.iter().any(|p| p.contains("dead end")));
    }

    #[test]
    fn validation_catches_terminal_with_outgoing() {
        let mut g = tiny();
        g.steps.push(StepDef {
            name: "unpolish".into(),
            class: "widget".into(),
            from: "done".into(),
            outcomes: vec![Outcome { label: "ok".into(), weight: 1.0, to: "raw".into() }],
            attrs: vec![],
            batch: 1,
            spawns: None,
            co_transitions: vec![],
        });
        let problems = g.validate();
        assert!(problems.iter().any(|p| p.contains("terminal state")));
    }

    #[test]
    fn validation_catches_bad_weights_and_empty_outcomes() {
        let mut g = tiny();
        g.steps[0].outcomes[0].weight = 0.0;
        assert!(g.validate().iter().any(|p| p.contains("non-positive weight")));
        let mut g = tiny();
        g.steps[0].outcomes.clear();
        assert!(g.validate().iter().any(|p| p.contains("no outcomes")));
    }

    #[test]
    fn validation_catches_cross_class_transition() {
        let mut g = tiny();
        g.classes.push(("gadget".into(), None));
        g.states.push(StateDef {
            name: "g_init".into(),
            class: "gadget".into(),
            initial: true,
            terminal: false,
        });
        g.steps[0].outcomes[0].to = "g_init".into();
        let problems = g.validate();
        assert!(problems.iter().any(|p| p.contains("crosses classes")));
    }

    #[test]
    fn render_mentions_everything() {
        let text = tiny().render();
        assert!(text.contains("material class widget"));
        assert!(text.contains("state raw [initial]"));
        assert!(text.contains("polish"));
        assert!(text.contains("redo 10% -> raw"));
    }
}
