//! The genome-mapping workflow of the paper's Appendix B
//! **\[reconstructed\]** — transposon-facilitated sequencing at the
//! Whitehead/MIT Center for Genome Research.
//!
//! The capture preserves the essentials: material classes `clone` and
//! `tclone`; step classes `associate_tclone`, `determine_sequence`, and
//! `assemble_sequence`; and the states `waiting_for_sequencing` and
//! `waiting_for_incorporation` with the transition quoted in Section 8.
//! The remaining states and steps are reconstructed from the
//! transposon-sequencing protocol the paper cites (\[5\] Berg et al.,
//! \[55\] Strathmann et al.): a clone receives transposon insertions, the
//! resulting tclones are prepped, mapped, and sequenced, and reads are
//! assembled back onto the clone, which is finally BLAST-searched.

use labbase::schema::attrs;
use labbase::AttrType;

use crate::graph::{CoTransition, Outcome, Spawn, StateDef, StepDef, WorkflowGraph};

/// Clone state: just arrived at the lab.
pub const RECEIVED: &str = "received";
/// Clone state: DNA prepped, ready for transposon insertion.
pub const READY_FOR_TRANSPOSITION: &str = "ready_for_transposition";
/// Clone state: tclones exist; waiting for enough sequenced reads.
pub const WAITING_FOR_ASSEMBLY: &str = "waiting_for_assembly";
/// Clone state: assembled; waiting for the homology search.
pub const WAITING_FOR_BLAST: &str = "waiting_for_blast";
/// Clone state: finished (terminal).
pub const FINISHED: &str = "finished";

/// Tclone state: picked from the transposition plate.
pub const PICKED: &str = "picked";
/// Tclone state: grown and prepped; waiting for insertion mapping.
pub const WAITING_FOR_MAPPING: &str = "waiting_for_mapping";
/// Tclone state: insertion mapped in the target; waiting for sequencing.
/// (The paper's `waiting_for_sequencing`.)
pub const WAITING_FOR_SEQUENCING: &str = "waiting_for_sequencing";
/// Tclone state: sequenced ok; waiting to be incorporated into the
/// clone assembly. (The paper's `waiting_for_incorporation`.)
pub const WAITING_FOR_INCORPORATION: &str = "waiting_for_incorporation";
/// Tclone state: read incorporated into an assembly (terminal).
pub const INCORPORATED: &str = "incorporated";
/// Tclone state: failed prep (terminal).
pub const FAILED: &str = "failed";
/// Tclone state: insertion mapped outside the target region (terminal).
pub const DISCARDED: &str = "discarded";

/// Build the Appendix-B workflow graph.
pub fn genome_workflow() -> WorkflowGraph {
    let state = |name: &str, class: &str, initial: bool, terminal: bool| StateDef {
        name: name.into(),
        class: class.into(),
        initial,
        terminal,
    };
    WorkflowGraph {
        name: "LabFlow-1 genome-mapping workflow (Appendix B)".into(),
        classes: vec![
            ("material".into(), None),
            ("clone".into(), Some("material".into())),
            ("tclone".into(), Some("material".into())),
        ],
        states: vec![
            state(RECEIVED, "clone", true, false),
            state(READY_FOR_TRANSPOSITION, "clone", false, false),
            state(WAITING_FOR_ASSEMBLY, "clone", false, false),
            state(WAITING_FOR_BLAST, "clone", false, false),
            state(FINISHED, "clone", false, true),
            state(PICKED, "tclone", false, false),
            state(WAITING_FOR_MAPPING, "tclone", false, false),
            state(WAITING_FOR_SEQUENCING, "tclone", false, false),
            state(WAITING_FOR_INCORPORATION, "tclone", false, false),
            state(INCORPORATED, "tclone", false, true),
            state(FAILED, "tclone", false, true),
            state(DISCARDED, "tclone", false, true),
        ],
        steps: vec![
            StepDef {
                name: "prep_clone".into(),
                class: "clone".into(),
                from: RECEIVED.into(),
                outcomes: vec![
                    Outcome { label: "ok".into(), weight: 0.95, to: READY_FOR_TRANSPOSITION.into() },
                    Outcome { label: "fail".into(), weight: 0.05, to: RECEIVED.into() },
                ],
                attrs: attrs(&[
                    ("concentration", AttrType::Real),
                    ("volume_ul", AttrType::Real),
                    ("operator", AttrType::Str),
                ]),
                batch: 8,
                spawns: None,
                co_transitions: vec![],
            },
            StepDef {
                name: "transposon_insertion".into(),
                class: "clone".into(),
                from: READY_FOR_TRANSPOSITION.into(),
                outcomes: vec![Outcome {
                    label: "ok".into(),
                    weight: 1.0,
                    to: WAITING_FOR_ASSEMBLY.into(),
                }],
                attrs: attrs(&[("transposon", AttrType::Str), ("plate", AttrType::Str)]),
                batch: 4,
                spawns: Some(Spawn {
                    class: "tclone".into(),
                    initial: PICKED.into(),
                    min: 4,
                    max: 12,
                }),
                co_transitions: vec![],
            },
            // Associates a spawned tclone with its parent clone: the step
            // class the capture names explicitly. Recorded per tclone,
            // involving [tclone, clone].
            StepDef {
                name: "associate_tclone".into(),
                class: "tclone".into(),
                from: PICKED.into(),
                outcomes: vec![Outcome {
                    label: "ok".into(),
                    weight: 1.0,
                    to: WAITING_FOR_MAPPING.into(),
                }],
                attrs: attrs(&[("parent", AttrType::Ref), ("well", AttrType::Str)]),
                batch: 12,
                spawns: None,
                co_transitions: vec![],
            },
            StepDef {
                name: "prep_tclone".into(),
                class: "tclone".into(),
                from: WAITING_FOR_MAPPING.into(),
                outcomes: vec![
                    Outcome { label: "ok".into(), weight: 0.9, to: WAITING_FOR_SEQUENCING.into() },
                    Outcome { label: "fail".into(), weight: 0.1, to: FAILED.into() },
                ],
                attrs: attrs(&[("yield_ng", AttrType::Real), ("gel_lane", AttrType::Int)]),
                batch: 12,
                spawns: None,
                co_transitions: vec![],
            },
            // The paper's transition: waiting_for_sequencing ->
            // waiting_for_incorporation when sequencing is ok; retried on
            // failure; discarded if the insertion maps outside the target.
            StepDef {
                name: "determine_sequence".into(),
                class: "tclone".into(),
                from: WAITING_FOR_SEQUENCING.into(),
                outcomes: vec![
                    Outcome {
                        label: "ok".into(),
                        weight: 0.80,
                        to: WAITING_FOR_INCORPORATION.into(),
                    },
                    Outcome { label: "fail".into(), weight: 0.15, to: WAITING_FOR_SEQUENCING.into() },
                    Outcome { label: "off_target".into(), weight: 0.05, to: DISCARDED.into() },
                ],
                attrs: attrs(&[
                    ("sequence", AttrType::Dna),
                    ("quality", AttrType::Real),
                    ("read_length", AttrType::Int),
                    ("machine", AttrType::Str),
                ]),
                batch: 16,
                spawns: None,
                co_transitions: vec![],
            },
            // Moves the *clone*; the workload additionally involves the
            // incorporated tclones and transitions them to INCORPORATED.
            StepDef {
                name: "assemble_sequence".into(),
                class: "clone".into(),
                from: WAITING_FOR_ASSEMBLY.into(),
                outcomes: vec![
                    Outcome { label: "complete".into(), weight: 0.6, to: WAITING_FOR_BLAST.into() },
                    Outcome {
                        label: "incomplete".into(),
                        weight: 0.4,
                        to: WAITING_FOR_ASSEMBLY.into(),
                    },
                ],
                attrs: attrs(&[
                    ("sequence", AttrType::Dna),
                    ("coverage", AttrType::Real),
                    ("n_reads", AttrType::Int),
                ]),
                batch: 2,
                spawns: None,
                // Incorporates the clone's sequenced reads: the tclones
                // leave the workflow when their read is assembled in.
                co_transitions: vec![CoTransition {
                    class: "tclone".into(),
                    from: WAITING_FOR_INCORPORATION.into(),
                    to: INCORPORATED.into(),
                }],
            },
            StepDef {
                name: "blast_search".into(),
                class: "clone".into(),
                from: WAITING_FOR_BLAST.into(),
                outcomes: vec![Outcome { label: "ok".into(), weight: 1.0, to: FINISHED.into() }],
                attrs: attrs(&[
                    ("hits", AttrType::List),
                    ("top_score", AttrType::Real),
                    ("db_version", AttrType::Str),
                ]),
                batch: 4,
                spawns: None,
                co_transitions: vec![],
            },
        ],
    }
}

/// Extra tclone transition performed by `assemble_sequence` in the
/// workload: incorporated reads leave the workflow. Not a graph step —
/// it is the secondary involvement of a clone-class step.
pub const INCORPORATION_SOURCE: &str = WAITING_FOR_INCORPORATION;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genome_graph_is_valid() {
        let g = genome_workflow();
        let problems = g.validate();
        assert!(problems.is_empty(), "problems: {problems:?}");
    }

    #[test]
    fn paper_named_entities_present() {
        let g = genome_workflow();
        // Named in the capture's reference contexts:
        assert!(g.classes.iter().any(|(c, _)| c == "clone"));
        assert!(g.classes.iter().any(|(c, _)| c == "tclone"));
        for step in ["associate_tclone", "determine_sequence", "assemble_sequence"] {
            assert!(g.step(step).is_some(), "missing paper step {step}");
        }
        assert!(g.state(WAITING_FOR_SEQUENCING).is_some());
        assert!(g.state(WAITING_FOR_INCORPORATION).is_some());
        // The quoted transition exists: determine_sequence ok moves
        // waiting_for_sequencing -> waiting_for_incorporation.
        let ds = g.step("determine_sequence").unwrap();
        assert_eq!(ds.from, WAITING_FOR_SEQUENCING);
        assert!(ds
            .outcomes
            .iter()
            .any(|o| o.label == "ok" && o.to == WAITING_FOR_INCORPORATION));
    }

    #[test]
    fn sequencing_failures_retry() {
        let g = genome_workflow();
        let ds = g.step("determine_sequence").unwrap();
        assert!(ds.outcomes.iter().any(|o| o.label == "fail" && o.to == WAITING_FOR_SEQUENCING));
    }

    #[test]
    fn transposition_spawns_tclones() {
        let g = genome_workflow();
        let ti = g.step("transposon_insertion").unwrap();
        let spawn = ti.spawns.as_ref().unwrap();
        assert_eq!(spawn.class, "tclone");
        assert_eq!(spawn.initial, PICKED);
        assert!(spawn.min >= 1 && spawn.max >= spawn.min);
    }

    #[test]
    fn render_contains_appendix_b_shape() {
        let text = genome_workflow().render();
        assert!(text.contains("waiting_for_sequencing"));
        assert!(text.contains("determine_sequence"));
        assert!(text.contains("spawns 4..12 tclone"));
    }
}
